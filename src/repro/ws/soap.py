"""SOAP 1.1-style message envelopes.

The paper's toolkit speaks SOAP between Triana and every data-mining service
("interaction between the workflow engine and each Web Service instance is
supported through pre-defined SOAP messages").  This module implements the
document shapes those interactions need: request envelopes carrying one
operation element with typed parameter children, response envelopes carrying
one ``<operation>Response`` element, and fault envelopes.

Typing uses XML-Schema primitives (``xsd:string``/``int``/``double``/
``boolean``), ``xsd:base64Binary`` for byte payloads and a toolkit extension
type ``repro:json`` for structured values (option lists, tree graphs), which
the 2005 toolkit would have modelled as nested complex types.
"""

from __future__ import annotations

import base64
import json
import re as _re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any

from repro.errors import DeadlineExceeded, OverloadedError, ServiceError
from repro.ws import payload
from repro.ws.payload import PayloadMissError, PayloadRef

#: Fault code carried by a SOAP fault caused by an expired time budget;
#: :func:`decode_response` resurfaces it as :class:`DeadlineExceeded`.
DEADLINE_FAULTCODE = "repro:DeadlineExceeded"

#: Fault code for a call shed by admission control before dispatch;
#: :func:`decode_response` resurfaces it as
#: :class:`~repro.errors.OverloadedError` (with the server's
#: retry-after hint, when given, carried in the fault detail).
OVERLOAD_FAULTCODE = "repro:Overloaded"

#: Reserved operation name for the batched-invocation envelope: one
#: ``<repro:Multicall>`` body element carries an ordered list of
#: sub-invocations against the same service (mixed operations allowed),
#: so one parse/serialize and one wire exchange covers many calls.
MULTICALL_OP = "Multicall"

ENVELOPE_NS = "http://schemas.xmlsoap.org/soap/envelope/"
XSD_NS = "http://www.w3.org/2001/XMLSchema"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
REPRO_NS = "http://repro.example.org/faehim"

ET.register_namespace("soapenv", ENVELOPE_NS)
ET.register_namespace("xsd", XSD_NS)
ET.register_namespace("xsi", XSI_NS)
ET.register_namespace("repro", REPRO_NS)


def _qname(ns: str, local: str) -> str:
    return f"{{{ns}}}{local}"


_NAME_OK = _re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")
# characters XML 1.0 cannot carry verbatim (plus \r, which parsers
# normalise to \n) and lone surrogates
_XML_UNSAFE = _re.compile(
    "[\x00-\x08\x0b-\x1f\x7f\r\ud800-\udfff]")


def _check_name(name: str, what: str) -> str:
    """Operation/parameter names become XML element names; they originate
    from Python identifiers, so enforce that shape up front."""
    if not _NAME_OK.match(name):
        raise ServiceError(f"invalid {what} name {name!r} "
                           f"(must be an identifier)")
    return name


def _encode_value(parent: ET.Element, name: str, value: Any) -> None:
    el = ET.SubElement(parent, name)
    type_attr = _qname(XSI_NS, "type")
    import numbers
    if isinstance(value, PayloadRef):
        # by-reference transfer (see repro.ws.payload): the receiving
        # side resolves the digest against its local payload store, or
        # maps the named shared-memory segment when via="shm"
        el.set(type_attr, "repro:payloadRef")
        el.set("digest", value.digest)
        el.set("size", str(value.size))
        el.set("kind", value.kind)
        if value.via:
            el.set("via", value.via)
    elif value is None:
        el.set(_qname(XSI_NS, "nil"), "true")
    elif isinstance(value, bool):
        el.set(type_attr, "xsd:boolean")
        el.text = "true" if value else "false"
    elif isinstance(value, numbers.Integral):
        # covers int and numpy integer scalars alike
        el.set(type_attr, "xsd:int")
        el.text = str(int(value))
    elif isinstance(value, numbers.Real):
        el.set(type_attr, "xsd:double")
        el.text = repr(float(value))
    elif isinstance(value, str):
        if _XML_UNSAFE.search(value):
            # XML 1.0 cannot carry control characters, and parsers
            # normalise \r; ship such strings base64-encoded instead
            el.set(type_attr, "repro:stringb64")
            el.text = base64.b64encode(
                value.encode("utf-8", "surrogatepass")).decode("ascii")
        else:
            el.set(type_attr, "xsd:string")
            el.text = value
    elif isinstance(value, (bytes, memoryview)):
        # memoryview: a shm-mapped payload being re-encoded (e.g. a
        # relay hop) — b64encode reads any buffer without copying first
        el.set(type_attr, "xsd:base64Binary")
        el.text = base64.b64encode(value).decode("ascii")
    elif isinstance(value, (dict, list, tuple)):
        el.set(type_attr, "repro:json")
        el.text = json.dumps(value)
    else:
        raise ServiceError(
            f"cannot encode value of type {type(value).__name__} "
            f"for parameter {name!r}")


def _decode_value(el: ET.Element) -> Any:
    if el.get(_qname(XSI_NS, "nil")) == "true":
        return None
    type_attr = el.get(_qname(XSI_NS, "type"), "xsd:string")
    text = el.text or ""
    if type_attr.endswith("boolean"):
        return text.strip().lower() == "true"
    if type_attr.endswith("int"):
        return int(text)
    if type_attr.endswith("double"):
        return float(text)
    if type_attr.endswith("base64Binary"):
        return base64.b64decode(text)
    if type_attr.endswith("stringb64"):
        return base64.b64decode(text).decode("utf-8", "surrogatepass")
    if type_attr.endswith("json"):
        return json.loads(text) if text else None
    if type_attr.endswith("payloadRef"):
        return payload.resolve(el.get("digest", ""),
                               el.get("kind", "str"),
                               el.get("via", ""))
    return text


@dataclass
class SoapFault(ServiceError):
    """A SOAP fault (also raised client-side when a response carries one)."""

    faultcode: str = "soapenv:Server"
    faultstring: str = "internal error"
    detail: str = ""

    def __post_init__(self) -> None:
        super().__init__(f"{self.faultcode}: {self.faultstring}")


@dataclass
class SoapRequest:
    """One operation invocation.

    ``trace_id``/``parent_span_id`` carry the observability trace context
    (see :mod:`repro.obs`); when set they travel in a SOAP header element
    ``<repro:TraceContext>`` so server-side spans join the client's trace.

    ``deadline_s`` is the remaining time budget at send time (see
    :mod:`repro.ws.deadline`); when set it travels in a
    ``<repro:Deadline remainingMs="..."/>`` header so the callee — and
    every call *it* makes — stays bounded by the caller's budget.
    """

    service: str
    operation: str
    params: dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""
    parent_span_id: str = ""
    deadline_s: float | None = None
    #: Admission identity/weight (see :mod:`repro.ws.admission`): when
    #: set they travel in a ``<repro:Caller>`` header so per-principal
    #: rate limits and priority shedding apply across hops.  The HTTP
    #: transports mirror them into ``X-Repro-Principal`` /
    #: ``X-Repro-Priority`` headers so a front door can shed without
    #: parsing XML.
    principal: str = ""
    priority: int = 0


@dataclass
class SoapResponse:
    """The result of one invocation."""

    service: str
    operation: str
    result: Any = None


@dataclass
class SubCall:
    """One item of a multicall batch: an operation plus its parameters."""

    operation: str
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class CallOutcome:
    """Per-item outcome of a multicall: a result or a captured fault.

    Item faults are *carried*, not raised — one malformed sub-call must
    not fail its siblings.  :meth:`unwrap` raises the stored exception
    for callers that want single-call semantics back.
    """

    result: Any = None
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def fault(self) -> SoapFault | None:
        return self.error if isinstance(self.error, SoapFault) else None

    def unwrap(self) -> Any:
        """The result, or raise the stored per-item error."""
        if self.error is not None:
            raise self.error
        return self.result


def multicall_request(service: str, calls: list[SubCall], *,
                      trace_id: str = "", parent_span_id: str = "",
                      deadline_s: float | None = None,
                      principal: str = "", priority: int = 0
                      ) -> SoapRequest:
    """Build the batch request; it flows through the ordinary interceptor
    chains as one :class:`SoapRequest` whose operation is
    :data:`MULTICALL_OP`, so deadlines, breaker state, tracing, gzip,
    payload-refs and admission control all apply to the batch as a
    unit."""
    return SoapRequest(service=service, operation=MULTICALL_OP,
                       params={"calls": list(calls)}, trace_id=trace_id,
                       parent_span_id=parent_span_id, deadline_s=deadline_s,
                       principal=principal, priority=priority)


def is_multicall(request: SoapRequest) -> bool:
    """True when *request* is a batched-invocation envelope."""
    return (request.operation == MULTICALL_OP
            and isinstance(request.params.get("calls"), list))


def calls_of(request: SoapRequest) -> list[SubCall]:
    """The ordered sub-calls of a multicall request."""
    calls = request.params.get("calls")
    if not isinstance(calls, list) or not all(
            isinstance(item, SubCall) for item in calls):
        raise ServiceError("multicall request carries no sub-call list")
    return calls


def batch_size_of(request: SoapRequest) -> int | None:
    """Number of sub-calls if *request* is a multicall, else ``None``."""
    if not is_multicall(request):
        return None
    return len(request.params["calls"])


_TRACE_ID_OK = _re.compile(r"^[0-9a-f]{1,64}$")


def encode_request(request: SoapRequest) -> bytes:
    """Serialise a SoapRequest as an envelope."""
    envelope = ET.Element(_qname(ENVELOPE_NS, "Envelope"))
    if request.trace_id or request.deadline_s is not None \
            or request.principal or request.priority:
        header = ET.SubElement(envelope, _qname(ENVELOPE_NS, "Header"))
        if request.trace_id:
            ctx = ET.SubElement(header, _qname(REPRO_NS, "TraceContext"))
            ctx.set("traceId", request.trace_id)
            if request.parent_span_id:
                ctx.set("parentSpanId", request.parent_span_id)
        if request.deadline_s is not None:
            dl = ET.SubElement(header, _qname(REPRO_NS, "Deadline"))
            dl.set("remainingMs",
                   f"{max(0.0, request.deadline_s) * 1000.0:.3f}")
        if request.principal or request.priority:
            caller = ET.SubElement(header, _qname(REPRO_NS, "Caller"))
            if request.principal:
                caller.set("principal", request.principal)
            if request.priority:
                caller.set("priority", str(int(request.priority)))
    body = ET.SubElement(envelope, _qname(ENVELOPE_NS, "Body"))
    if is_multicall(request):
        batch = ET.SubElement(body, _qname(REPRO_NS, MULTICALL_OP))
        batch.set("service", request.service)
        for sub in calls_of(request):
            call = ET.SubElement(batch, _qname(REPRO_NS, "Call"))
            call.set("operation", _check_name(sub.operation, "operation"))
            for name, value in sub.params.items():
                _encode_value(call, _check_name(name, "parameter"), value)
        return ET.tostring(envelope, encoding="utf-8",
                           xml_declaration=True)
    op = ET.SubElement(body, _qname(
        REPRO_NS, _check_name(request.operation, "operation")))
    op.set("service", request.service)
    for name, value in request.params.items():
        _encode_value(op, _check_name(name, "parameter"), value)
    return ET.tostring(envelope, encoding="utf-8",
                       xml_declaration=True)


def decode_request(document: bytes) -> SoapRequest:
    """Parse a request envelope into a SoapRequest."""
    envelope = _envelope_of(document)
    body = _body_in(envelope)
    op = _single_child(body, "request")
    local = op.tag.rsplit("}", 1)[-1]
    service = op.get("service", "")
    if local == MULTICALL_OP:
        calls = []
        for call_el in op:
            if call_el.tag.rsplit("}", 1)[-1] != "Call":
                raise ServiceError(
                    "multicall body may only carry <repro:Call> items")
            sub_params = {child.tag.rsplit("}", 1)[-1]: _decode_value(child)
                          for child in call_el}
            payload.absorb_params(sub_params)
            calls.append(SubCall(call_el.get("operation", ""), sub_params))
        trace_id, parent_span_id = _decode_trace_header(envelope)
        principal, priority = _decode_caller_header(envelope)
        return SoapRequest(service=service, operation=MULTICALL_OP,
                           params={"calls": calls}, trace_id=trace_id,
                           parent_span_id=parent_span_id,
                           deadline_s=_decode_deadline_header(envelope),
                           principal=principal, priority=priority)
    params = {child.tag.rsplit("}", 1)[-1]: _decode_value(child)
              for child in op}
    # remember large inline payloads so the peer's next send of the
    # same content can travel as a <repro:payloadRef> element
    payload.absorb_params(params)
    trace_id, parent_span_id = _decode_trace_header(envelope)
    principal, priority = _decode_caller_header(envelope)
    return SoapRequest(service=service, operation=local, params=params,
                       trace_id=trace_id, parent_span_id=parent_span_id,
                       deadline_s=_decode_deadline_header(envelope),
                       principal=principal, priority=priority)


def _decode_trace_header(envelope: ET.Element) -> tuple[str, str]:
    """Extract (trace id, parent span id) from the envelope header.

    Ill-formed ids are dropped rather than faulted: trace context is
    advisory metadata and must never break an invocation.
    """
    header = envelope.find(_qname(ENVELOPE_NS, "Header"))
    if header is None:
        return "", ""
    ctx = header.find(_qname(REPRO_NS, "TraceContext"))
    if ctx is None:
        return "", ""
    trace_id = ctx.get("traceId", "")
    parent = ctx.get("parentSpanId", "")
    if not _TRACE_ID_OK.match(trace_id):
        return "", ""
    if parent and not _TRACE_ID_OK.match(parent):
        parent = ""
    return trace_id, parent


def _decode_deadline_header(envelope: ET.Element) -> float | None:
    """Extract the remaining-budget header as seconds, if present.

    A malformed value is dropped (treated as "no deadline") rather than
    faulted: a broken header must not take down an otherwise valid call,
    and the caller still has its own client-side expiry.
    """
    header = envelope.find(_qname(ENVELOPE_NS, "Header"))
    if header is None:
        return None
    dl = header.find(_qname(REPRO_NS, "Deadline"))
    if dl is None:
        return None
    try:
        remaining_ms = float(dl.get("remainingMs", ""))
    except ValueError:
        return None
    if remaining_ms < 0:
        remaining_ms = 0.0
    return remaining_ms / 1000.0


def _decode_caller_header(envelope: ET.Element) -> tuple[str, int]:
    """Extract (principal, priority) from the envelope header.

    Like the trace context, caller identity is advisory: a malformed
    priority is dropped (treated as 0) rather than faulted.
    """
    header = envelope.find(_qname(ENVELOPE_NS, "Header"))
    if header is None:
        return "", 0
    caller = header.find(_qname(REPRO_NS, "Caller"))
    if caller is None:
        return "", 0
    principal = caller.get("principal", "")
    try:
        priority = int(caller.get("priority", "0"))
    except ValueError:
        priority = 0
    return principal, priority


def _fault_fields(error: Exception) -> tuple[str, str, str]:
    """(faultcode, faultstring, detail) for a per-item multicall fault."""
    if isinstance(error, SoapFault):
        return error.faultcode, error.faultstring, error.detail
    if isinstance(error, DeadlineExceeded):
        return DEADLINE_FAULTCODE, str(error), ""
    if isinstance(error, OverloadedError):
        detail = "" if error.retry_after_s is None \
            else f"{error.retry_after_s:.3f}"
        return OVERLOAD_FAULTCODE, str(error), detail
    return "soapenv:Server", str(error) or type(error).__name__, ""


def fault_for(error: Exception) -> SoapFault:
    """The :class:`SoapFault` a server answers with for *error*.

    Maps the dedicated non-retriable exceptions (deadline expiry,
    admission sheds) onto their reserved fault codes so
    :func:`decode_response` resurfaces the same exception type
    client-side; anything else becomes a generic server fault.
    """
    if isinstance(error, SoapFault):
        return error
    code, string, detail = _fault_fields(error)
    return SoapFault(code, string, detail)


def _fault_to_exception(code: str, string: str, detail: str) -> Exception:
    """Map fault fields back to the exception a single call would raise."""
    if code == DEADLINE_FAULTCODE:
        # the dedicated (non-retriable) exception so clients do not
        # burn retries on an already-spent budget
        return DeadlineExceeded(string)
    if code == OVERLOAD_FAULTCODE:
        # the dedicated back-off exception: not a ServiceError, so the
        # transient-retry set and circuit breakers leave it alone
        try:
            retry_after = float(detail)
        except ValueError:
            retry_after = None
        return OverloadedError(string, retry_after_s=retry_after)
    if code == payload.MISS_FAULTCODE:
        # the peer does not hold a referenced payload: transports
        # catch this and fall back to a full inline resend
        return PayloadMissError(detail, string)
    return SoapFault(code, string, detail)


def encode_response(response: SoapResponse) -> bytes:
    """Serialise a SoapResponse as an envelope."""
    envelope = ET.Element(_qname(ENVELOPE_NS, "Envelope"))
    body = ET.SubElement(envelope, _qname(ENVELOPE_NS, "Body"))
    op = ET.SubElement(body,
                       _qname(REPRO_NS, f"{response.operation}Response"))
    op.set("service", response.service)
    if response.operation == MULTICALL_OP:
        outcomes = response.result or []
        if not all(isinstance(o, CallOutcome) for o in outcomes):
            raise ServiceError(
                "multicall response result must be CallOutcome items")
        for outcome in outcomes:
            if outcome.ok:
                item = ET.SubElement(op, _qname(REPRO_NS, "Result"))
                _encode_value(item, "return", outcome.result)
            else:
                item = ET.SubElement(op, _qname(REPRO_NS, "Fault"))
                code, string, detail = _fault_fields(outcome.error)
                ET.SubElement(item, "faultcode").text = code
                ET.SubElement(item, "faultstring").text = string
                if detail:
                    ET.SubElement(item, "detail").text = detail
        return ET.tostring(envelope, encoding="utf-8",
                           xml_declaration=True)
    _encode_value(op, "return", response.result)
    return ET.tostring(envelope, encoding="utf-8", xml_declaration=True)


def encode_fault(fault: SoapFault) -> bytes:
    """Serialise a SoapFault as a fault envelope."""
    envelope = ET.Element(_qname(ENVELOPE_NS, "Envelope"))
    body = ET.SubElement(envelope, _qname(ENVELOPE_NS, "Body"))
    el = ET.SubElement(body, _qname(ENVELOPE_NS, "Fault"))
    code = ET.SubElement(el, "faultcode")
    code.text = fault.faultcode
    string = ET.SubElement(el, "faultstring")
    string.text = fault.faultstring
    if fault.detail:
        detail = ET.SubElement(el, "detail")
        detail.text = fault.detail
    return ET.tostring(envelope, encoding="utf-8", xml_declaration=True)


def decode_response(document: bytes) -> SoapResponse:
    """Decode a response envelope, raising :class:`SoapFault` on faults."""
    body = _body_of(document)
    child = _single_child(body, "response")
    local = child.tag.rsplit("}", 1)[-1]
    if local == "Fault":
        code = child.findtext("faultcode", "soapenv:Server")
        string = child.findtext("faultstring", "unknown fault")
        detail = child.findtext("detail", "") or ""
        raise _fault_to_exception(code, string, detail)
    if not local.endswith("Response"):
        raise ServiceError(f"unexpected response element {local!r}")
    if local == f"{MULTICALL_OP}Response":
        outcomes: list[CallOutcome] = []
        for item in child:
            kind = item.tag.rsplit("}", 1)[-1]
            if kind == "Result":
                result_el = item.find("return")
                outcomes.append(CallOutcome(
                    result=_decode_value(result_el)
                    if result_el is not None else None))
            elif kind == "Fault":
                outcomes.append(CallOutcome(error=_fault_to_exception(
                    item.findtext("faultcode", "soapenv:Server"),
                    item.findtext("faultstring", "unknown fault"),
                    item.findtext("detail", "") or "")))
            else:
                raise ServiceError(
                    f"unexpected multicall item element {kind!r}")
        return SoapResponse(service=child.get("service", ""),
                            operation=MULTICALL_OP, result=outcomes)
    result_el = child.find("return")
    result = _decode_value(result_el) if result_el is not None else None
    return SoapResponse(service=child.get("service", ""),
                        operation=local[:-len("Response")],
                        result=result)


def _body_of(document: bytes) -> ET.Element:
    return _body_in(_envelope_of(document))


def _envelope_of(document: bytes) -> ET.Element:
    try:
        envelope = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ServiceError(f"malformed SOAP document: {exc}") from exc
    if envelope.tag != _qname(ENVELOPE_NS, "Envelope"):
        raise ServiceError(f"not a SOAP envelope: {envelope.tag}")
    return envelope


def _body_in(envelope: ET.Element) -> ET.Element:
    body = envelope.find(_qname(ENVELOPE_NS, "Body"))
    if body is None:
        raise ServiceError("SOAP envelope has no Body")
    return body


def _single_child(body: ET.Element, what: str) -> ET.Element:
    children = list(body)
    if len(children) != 1:
        raise ServiceError(
            f"SOAP {what} body must carry exactly one element, "
            f"got {len(children)}")
    return children[0]
