"""Metrics: counters and latency/byte histograms for every hop.

The paper's §3 monitoring requirement asks that "users ... monitor the
progress of their jobs as they are executed on distributed resources"; the
§4.5/§5 overhead analysis additionally needs per-operation accounting
(message counts, payload bytes, invocation latency).  This module is the
numeric half of the observability spine: a process-global
:class:`MetricsRegistry` holding named, labelled :class:`Counter` and
:class:`Histogram` instruments that the WS transports, the service
container, the per-operation dispatcher and the workflow engine all feed.

Everything is thread-safe (transports and the engine call in from pool and
HTTP handler threads) and cheap enough to stay always-on; tests reset the
global registry between cases via the ``tests/conftest.py`` fixture.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Iterable

#: Histograms keep at most this many observations; beyond it they switch to
#: reservoir sampling so long-running servers stay bounded in memory.
RESERVOIR_SIZE = 8192

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: LabelKey) -> str:
    """Render one series id, prometheus-style: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing (float-friendly) counter."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (breaker states, queue depths)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Observation store with nearest-rank percentiles.

    Keeps every observation up to :data:`RESERVOIR_SIZE`, then degrades to
    uniform reservoir sampling (seeded, so runs stay reproducible).  The
    count and sum always remain exact.
    """

    def __init__(self) -> None:
        self._values: list[float] = []
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()
        self._rng = random.Random(0)

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.count += 1
            self.sum += value
            if len(self._values) < RESERVOIR_SIZE:
                self._values.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < RESERVOIR_SIZE:
                    self._values[slot] = value

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile *p* (0..100) of the observations."""
        with self._lock:
            values = sorted(self._values)
        if not values:
            return 0.0
        rank = max(1, -(-len(values) * p // 100))  # ceil without math
        return values[min(len(values), int(rank)) - 1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """count/sum/mean plus the p50/p95/p99 quantiles."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named, labelled instruments behind one lock.

    ``registry.counter("ws.transport.bytes_sent", transport="http")``
    returns the same :class:`Counter` on every call with the same name and
    labels, so instrumentation sites never need registration ceremony.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for (*name*, *labels*), created on first use."""
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for (*name*, *labels*), created on first use."""
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for (*name*, *labels*), created on first use."""
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram()
        return instrument

    def clear(self) -> None:
        """Drop every instrument (tests call this between cases)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def counters(self) -> Iterable[tuple[str, LabelKey, Counter]]:
        """All registered counters as (name, labels, instrument) rows."""
        with self._lock:
            items = list(self._counters.items())
        return [(name, labels, c) for (name, labels), c in items]

    def gauges(self) -> Iterable[tuple[str, LabelKey, Gauge]]:
        """All registered gauges as (name, labels, instrument) rows."""
        with self._lock:
            items = list(self._gauges.items())
        return [(name, labels, g) for (name, labels), g in items]

    def histograms(self) -> Iterable[tuple[str, LabelKey, Histogram]]:
        """All registered histograms as (name, labels, instrument) rows."""
        with self._lock:
            items = list(self._histograms.items())
        return [(name, labels, h) for (name, labels), h in items]

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: series id -> value / quantile summary."""
        return {
            "counters": {format_series(name, labels): counter.value
                         for name, labels, counter in self.counters()},
            "gauges": {format_series(name, labels): gauge.value
                       for name, labels, gauge in self.gauges()},
            "histograms": {format_series(name, labels): hist.summary()
                           for name, labels, hist in self.histograms()},
        }


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def reset_metrics() -> None:
    """Clear the global registry (test isolation)."""
    _registry.clear()
