"""Request-scoped tracing across the SOAP stack and the workflow engine.

The monitoring the paper asks for in §3 ("the framework should allow users
to monitor the progress of their jobs as they are executed on distributed
resources") needs more than per-task events once invocations hop machines:
a single workflow run fans out into client SOAP calls, wire transfers and
server-side dispatches, and only a shared *trace id* ties those pieces back
into one picture.  This module provides that spine:

* :class:`Span` — one timed operation with a trace id, span id, parent
  span id, free-form attributes and an ok/error status.
* :class:`Tracer` — creates spans as context managers, maintains the
  current span per thread-of-control (``contextvars``), and records
  finished spans into a thread-safe :class:`SpanCollector`.
* :class:`SpanContext` — the (trace id, span id) pair that travels inside
  the SOAP ``<repro:TraceContext>`` header so server-side spans join the
  client's trace (see :mod:`repro.ws.soap`).

Tracing is opt-in (:func:`enable_tracing`, or the ``FAEHIM_TRACE=1``
environment hook honoured by ``deploy.py``/``grid.py``); when disabled,
instrumentation sites get a shared no-op span and pay almost nothing.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Environment variable that switches tracing on (``1``/``true``/``yes``).
TRACE_ENV_VAR = "FAEHIM_TRACE"

#: The collector refuses to grow past this many finished spans; further
#: spans are counted in :attr:`SpanCollector.dropped` instead of stored.
COLLECTOR_CAPACITY = 20000


def new_id(n_hex: int = 16) -> str:
    """A fresh random hex id (16 hex chars for spans, 32 for traces)."""
    value = uuid.uuid4().hex
    while len(value) < n_hex:
        value += uuid.uuid4().hex
    return value[:n_hex]


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of a span: enough to parent a remote child."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One timed operation inside a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str = ""
    started_at: float = 0.0
    ended_at: float = 0.0
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one key/value annotation to the span."""
        self.attributes[key] = value

    def context(self) -> SpanContext:
        """The propagatable (trace id, span id) pair."""
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.ended_at - self.started_at)

    @property
    def recording(self) -> bool:
        return True

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (snapshot files, ``repro trace --json``)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(name=data["name"], trace_id=data["trace_id"],
                   span_id=data["span_id"],
                   parent_id=data.get("parent_id", ""),
                   started_at=data.get("started_at", 0.0),
                   ended_at=data.get("ended_at", 0.0),
                   status=data.get("status", "ok"),
                   attributes=dict(data.get("attributes", {})))


class _NoopSpan:
    """Stand-in handed out while tracing is disabled."""

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = ""
    status = "ok"
    attributes: dict[str, Any] = {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def context(self) -> SpanContext:
        return SpanContext("", "")

    @property
    def recording(self) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class SpanCollector:
    """Thread-safe store of finished spans (bounded, oldest-first)."""

    def __init__(self, capacity: int = COLLECTOR_CAPACITY):
        self.capacity = capacity
        self.dropped = 0
        self._spans: list[Span] = []
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        """File one finished span."""
        with self._lock:
            if len(self._spans) >= self.capacity:
                self.dropped += 1
                return
            self._spans.append(span)

    def spans(self) -> list[Span]:
        """Snapshot of the collected spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Discard everything collected so far."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_current_span: contextvars.ContextVar[Span | None] = \
    contextvars.ContextVar("repro_current_span", default=None)


class Tracer:
    """Creates spans, tracks the active one, records them when they end."""

    def __init__(self, collector: SpanCollector | None = None,
                 enabled: bool = False):
        self.collector = collector or SpanCollector()
        self.enabled = enabled

    def current_span(self) -> Span | None:
        """The span active on this thread-of-control, if any."""
        return _current_span.get()

    def current_context(self) -> SpanContext | None:
        """Propagatable context of the active span, if any."""
        span = _current_span.get()
        return span.context() if span is not None else None

    @contextlib.contextmanager
    def span(self, name: str,
             attributes: dict[str, Any] | None = None,
             parent: Span | SpanContext | None = None) -> Iterator[Any]:
        """Open one span around a block.

        Parentage: an explicit *parent* (a local :class:`Span` or a
        propagated :class:`SpanContext`) wins; otherwise the thread's
        current span; otherwise the span roots a fresh trace.  On
        exceptions the span is marked ``status="error"`` and re-raises.
        """
        if not self.enabled:
            yield NOOP_SPAN
            return
        if parent is None:
            parent = _current_span.get()
        if parent is not None and not parent.trace_id:
            parent = None  # no-op spans and empty contexts don't parent
        if parent is None:
            trace_id, parent_id = new_id(32), ""
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(name=name, trace_id=trace_id, span_id=new_id(),
                    parent_id=parent_id, started_at=time.time(),
                    attributes=dict(attributes or {}))
        token = _current_span.set(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attributes.setdefault("error", repr(exc))
            raise
        finally:
            span.ended_at = time.time()
            _current_span.reset(token)
            self.collector.record(span)


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _tracer


def enable_tracing(enabled: bool = True) -> None:
    """Switch span recording on (or off with ``enabled=False``)."""
    _tracer.enabled = enabled


def tracing_enabled() -> bool:
    """Whether the global tracer records spans."""
    return _tracer.enabled


def reset_tracing() -> None:
    """Disable tracing and drop collected spans (test isolation)."""
    _tracer.enabled = False
    _tracer.collector.clear()


def maybe_enable_tracing_from_env() -> bool:
    """Honour the opt-in ``FAEHIM_TRACE`` environment hook.

    Returns whether tracing is enabled afterwards; never *disables* a
    tracer something already switched on programmatically.
    """
    flag = os.environ.get(TRACE_ENV_VAR, "").strip().lower()
    if flag in {"1", "true", "yes", "on"}:
        _tracer.enabled = True
    return _tracer.enabled
