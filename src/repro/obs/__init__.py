"""Observability spine: request-scoped tracing + metrics (§3 monitoring).

One import point for the instruments the WS stack, the services and the
workflow engine share:

* :mod:`repro.obs.trace` — spans with trace/span ids, context propagation
  over the SOAP ``<repro:TraceContext>`` header, the global tracer.
* :mod:`repro.obs.metrics` — counters + latency/byte histograms with
  p50/p95/p99, the global registry.
* :mod:`repro.obs.render` — the ``repro trace``/``repro metrics`` tree and
  table renderers plus JSON snapshot IO.

Metric-family naming convention: dotted, layer-prefixed series —
``ws.*`` for the SOAP stack (``ws.scatter.rebalance``,
``ws.admission.*``), ``workflow.*`` for the engine, ``grid.*`` for
distributed cross-validation, and ``repro.experiment.*`` for the
experiment grid runner (``cells.total/resumed/executed/failed``,
``store.appends/replayed/dropped{reason}``).
"""

from repro.obs.metrics import (Counter, Histogram, MetricsRegistry,
                               format_series, get_metrics, reset_metrics)
from repro.obs.render import (DEFAULT_SNAPSHOT, load_snapshot,
                              render_metrics, render_span_tree, snapshot,
                              write_snapshot)
from repro.obs.trace import (NOOP_SPAN, TRACE_ENV_VAR, Span, SpanCollector,
                             SpanContext, Tracer, enable_tracing,
                             get_tracer, maybe_enable_tracing_from_env,
                             reset_tracing, tracing_enabled)

__all__ = [
    "Counter", "Histogram", "MetricsRegistry", "format_series",
    "get_metrics", "reset_metrics",
    "Span", "SpanCollector", "SpanContext", "Tracer", "NOOP_SPAN",
    "TRACE_ENV_VAR", "enable_tracing", "tracing_enabled", "reset_tracing",
    "get_tracer", "maybe_enable_tracing_from_env",
    "DEFAULT_SNAPSHOT", "render_span_tree", "render_metrics", "snapshot",
    "write_snapshot", "load_snapshot",
]
