"""User-facing surfaces: span-tree timelines, metrics tables, snapshots.

This is the "such feedback" half of the §3 monitoring requirement — the
renderers behind ``repro trace`` and ``repro metrics``.  Spans are rendered
as an indented tree per trace (children nested under parents, offsets
relative to the trace root) and metrics as fixed-width tables with
p50/p95/p99 columns.  :func:`snapshot`/:func:`write_snapshot`/
:func:`load_snapshot` move both through one JSON document so a traced run
can be inspected after the process exits (and by machines).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import get_metrics
from repro.obs.trace import Span, get_tracer

#: Default snapshot path written by ``repro run --trace``.
DEFAULT_SNAPSHOT = ".faehim-trace.json"


def _as_dicts(spans: list[Span] | list[dict[str, Any]]) -> list[dict]:
    return [s.to_dict() if isinstance(s, Span) else dict(s)
            for s in spans]


def render_span_tree(spans: list[Span] | list[dict[str, Any]]) -> str:
    """Render spans as one indented timeline tree per trace."""
    records = _as_dicts(spans)
    if not records:
        return "(no spans recorded — enable tracing with --trace or " \
               "FAEHIM_TRACE=1)"
    by_id = {r["span_id"]: r for r in records}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for r in records:
        parent = r.get("parent_id", "")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(r)
        else:
            roots.append(r)
    for kids in children.values():
        kids.sort(key=lambda r: r["started_at"])
    roots.sort(key=lambda r: r["started_at"])

    lines: list[str] = []

    def emit(record: dict, depth: int, t0: float) -> None:
        offset_ms = (record["started_at"] - t0) * 1000.0
        duration_ms = max(
            0.0, record["ended_at"] - record["started_at"]) * 1000.0
        status = "" if record.get("status", "ok") == "ok" else \
            f"  !{record['status']}"
        attrs = record.get("attributes") or {}
        noted = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        noted = f"  [{noted}]" if noted else ""
        indent = "  " * depth
        lines.append(f"{offset_ms:10.2f}ms {duration_ms:9.2f}ms  "
                     f"{indent}{record['name']}{status}{noted}")
        for child in children.get(record["span_id"], []):
            emit(child, depth + 1, t0)

    seen_traces: set[str] = set()
    for root in roots:
        trace_id = root.get("trace_id", "")
        if trace_id not in seen_traces:
            seen_traces.add(trace_id)
            lines.append(f"trace {trace_id}")
            lines.append(f"{'offset':>12} {'duration':>10}  span")
        emit(root, 1, root["started_at"])
    return "\n".join(lines)


def _fmt_value(name: str, value: float) -> str:
    if name.split("{", 1)[0].endswith("seconds"):
        return f"{value * 1000.0:.2f}ms"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"


def render_metrics(metrics: dict[str, Any] | None = None) -> str:
    """Render a metrics snapshot (default: the live global registry)."""
    data = metrics if metrics is not None else get_metrics().snapshot()
    counters: dict[str, float] = data.get("counters", {})
    gauges: dict[str, float] = data.get("gauges", {})
    histograms: dict[str, dict] = data.get("histograms", {})
    if not counters and not gauges and not histograms:
        return "(no metrics recorded)"
    lines: list[str] = []
    if counters:
        width = max(len(n) for n in counters)
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  "
                         f"{_fmt_value(name, counters[name])}")
    if gauges:
        if lines:
            lines.append("")
        width = max(len(n) for n in gauges)
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  "
                         f"{_fmt_value(name, gauges[name])}")
    if histograms:
        if lines:
            lines.append("")
        width = max(len(n) for n in histograms)
        lines.append("histograms:")
        header = (f"  {'series':<{width}}  {'count':>7} {'mean':>10} "
                  f"{'p50':>10} {'p95':>10} {'p99':>10}")
        lines.append(header)
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<{width}}  {int(h['count']):>7} "
                f"{_fmt_value(name, h['mean']):>10} "
                f"{_fmt_value(name, h['p50']):>10} "
                f"{_fmt_value(name, h['p95']):>10} "
                f"{_fmt_value(name, h['p99']):>10}")
    return "\n".join(lines)


def snapshot() -> dict[str, Any]:
    """One JSON-ready document holding collected spans + all metrics."""
    tracer = get_tracer()
    return {
        "spans": [s.to_dict() for s in tracer.collector.spans()],
        "dropped_spans": tracer.collector.dropped,
        "metrics": get_metrics().snapshot(),
    }


def write_snapshot(path: str | Path) -> Path:
    """Write :func:`snapshot` to *path*; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(snapshot(), indent=2, default=str))
    return target


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Load a snapshot document written by :func:`write_snapshot`."""
    return json.loads(Path(path).read_text())
