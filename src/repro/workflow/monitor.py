"""Service/job monitoring (§3 category 2: "the framework should allow users
to monitor the progress of their jobs as they are executed on distributed
resources").

:class:`EventBus` is the engine's event spine; :class:`ProgressMonitor`
subscribes and keeps a live per-task status table plus a printable timeline
("such feedback" the requirement asks for).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class TaskEvent:
    """One monitoring event."""

    kind: str      # 'task' | 'workflow'
    name: str
    status: str    # 'started' | 'finished' | 'failed' | 'retried' | ...
    detail: str = ""
    timestamp: float = field(default_factory=time.time)


class EventBus:
    """Thread-safe fan-out of :class:`TaskEvent`."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[TaskEvent], None]] = []
        self._lock = threading.Lock()

    def subscribe(self, fn: Callable[[TaskEvent], None]) -> None:
        """Register an event callback."""
        with self._lock:
            self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[TaskEvent], None]) -> None:
        """Remove a previously registered callback."""
        with self._lock:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

    def emit(self, event: TaskEvent) -> None:
        """Deliver *event* to every subscriber."""
        with self._lock:
            subscribers = list(self._subscribers)
        for fn in subscribers:
            fn(event)


class ProgressMonitor:
    """Live task-status table built from engine events."""

    def __init__(self, bus: EventBus):
        self.events: list[TaskEvent] = []
        self.status: dict[str, str] = {}
        self._lock = threading.Lock()
        bus.subscribe(self._on_event)

    def _on_event(self, event: TaskEvent) -> None:
        with self._lock:
            self.events.append(event)
            if event.kind == "task":
                self.status[event.name] = event.status

    def running(self) -> list[str]:
        """Names of tasks currently running."""
        with self._lock:
            return sorted(n for n, s in self.status.items()
                          if s == "started")

    def finished(self) -> list[str]:
        """Names of tasks that completed."""
        with self._lock:
            return sorted(n for n, s in self.status.items()
                          if s == "finished")

    def failed(self) -> list[str]:
        """Names of tasks currently in the failed state."""
        with self._lock:
            return sorted(n for n, s in self.status.items()
                          if s == "failed")

    def timeline(self) -> str:
        """Printable event log."""
        with self._lock:
            events = list(self.events)
        if not events:
            return "(no events)"
        t0 = events[0].timestamp
        lines = []
        for e in events:
            detail = f"  [{e.detail}]" if e.detail else ""
            lines.append(f"{e.timestamp - t0:8.3f}s  {e.kind:<9} "
                         f"{e.name:<24} {e.status}{detail}")
        return "\n".join(lines)
