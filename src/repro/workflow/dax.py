"""GriPhyN DAX export (§2: "the GriPhyN DAX standard is also supported").

DAX is the abstract-DAG format of the GriPhyN virtual data system (Pegasus):
``<job>`` elements with logical filenames flowing between them and explicit
``<child>``/``<parent>`` dependency records.  The export maps each workflow
task to a job and each cable to a logical file produced by the source and
consumed by the target.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.workflow.model import TaskGraph

DAX_NS = "http://www.griphyn.org/chimera/DAX"


def dumps(graph: TaskGraph, namespace: str = "repro") -> str:
    """Serialise *graph* as a DAX document."""
    graph.validate()
    root = ET.Element("adag")
    root.set("xmlns", DAX_NS)
    root.set("name", graph.name)
    root.set("jobCount", str(len(graph.tasks)))
    root.set("childCount",
             str(len({c.target for c in graph.cables})))
    job_ids = {task.name: f"ID{i:06d}"
               for i, task in enumerate(graph.tasks, start=1)}

    def lfn(cable) -> str:
        return f"{cable.source}.out{cable.source_index}"

    for task in graph.tasks:
        job = ET.SubElement(root, "job")
        job.set("id", job_ids[task.name])
        job.set("namespace", namespace)
        job.set("name", task.tool.name)
        job.set("version", "1.0")
        argument = ET.SubElement(job, "argument")
        argument.text = task.name
        for cable in graph.incoming(task.name):
            uses = ET.SubElement(job, "uses")
            uses.set("file", lfn(cable))
            uses.set("link", "input")
        for cable in graph.outgoing(task.name):
            uses = ET.SubElement(job, "uses")
            uses.set("file", lfn(cable))
            uses.set("link", "output")
    # dependency section
    children: dict[str, set[str]] = {}
    for cable in graph.cables:
        children.setdefault(cable.target, set()).add(cable.source)
    for child_name in sorted(children):
        child = ET.SubElement(root, "child")
        child.set("ref", job_ids[child_name])
        for parent_name in sorted(children[child_name]):
            parent = ET.SubElement(child, "parent")
            parent.set("ref", job_ids[parent_name])
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def job_count(document: str) -> int:
    """Number of jobs in a DAX document (sanity checks in tests)."""
    root = ET.fromstring(document)
    return len(root.findall(f"{{{DAX_NS}}}job"))
