"""Workflow XML serialisation (§2: "the ability to export the workflow graph
in XML").

The document records tasks (tool name + parameters) and cables; a task whose
tool is a :class:`~repro.workflow.model.GroupTool` (the §2 "service
hierarchy") serialises its inner graph recursively, so hierarchical
workflows persist fully.  Parsing resolves plain tool names against a
:class:`~repro.workflow.toolbox.ToolBox`, so a round-tripped workflow
re-binds to the current tool implementations — the same late binding
Triana's .xml task graphs use.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET

from repro.errors import WorkflowError
from repro.workflow.model import GroupTool, TaskGraph
from repro.workflow.toolbox import ToolBox


def _emit_graph(graph: TaskGraph, parent: ET.Element) -> None:
    parent.set("name", graph.name)
    for task in graph.tasks:
        el = ET.SubElement(parent, "task")
        el.set("name", task.name)
        el.set("tool", task.tool.name)
        if isinstance(task.tool, GroupTool):
            group = ET.SubElement(el, "group")
            inner = ET.SubElement(group, "taskgraph")
            _emit_graph(task.tool.graph, inner)
            for kind, mapping in (("inputMap", task.tool.input_map),
                                  ("outputMap", task.tool.output_map)):
                for inner_task, index in mapping:
                    m = ET.SubElement(group, kind)
                    m.set("task", inner_task)
                    m.set("index", str(index))
        for key, value in sorted(task.parameters.items()):
            param = ET.SubElement(el, "parameter")
            param.set("name", key)
            param.text = json.dumps(value)
    for cable in graph.cables:
        el = ET.SubElement(parent, "cable")
        el.set("source", cable.source)
        el.set("sourceIndex", str(cable.source_index))
        el.set("target", cable.target)
        el.set("targetIndex", str(cable.target_index))


def dumps(graph: TaskGraph) -> str:
    """Serialise *graph* to the toolkit's workflow XML."""
    root = ET.Element("taskgraph")
    _emit_graph(graph, root)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _parse_graph(root: ET.Element, toolbox: ToolBox) -> TaskGraph:
    graph = TaskGraph(root.get("name", "workflow"))
    for el in root.findall("task"):
        tool_name = el.get("tool", "")
        group_el = el.find("group")
        if group_el is not None:
            inner_el = group_el.find("taskgraph")
            if inner_el is None:
                raise WorkflowError(
                    f"group task {el.get('name')!r} lacks its subgraph")
            inner = _parse_graph(inner_el, toolbox)
            input_map = [(m.get("task", ""), int(m.get("index", "0")))
                         for m in group_el.findall("inputMap")]
            output_map = [(m.get("task", ""), int(m.get("index", "0")))
                          for m in group_el.findall("outputMap")]
            tool = GroupTool(tool_name, inner, input_map, output_map)
        else:
            tool = toolbox.get(tool_name)
        parameters = {}
        for param in el.findall("parameter"):
            raw = param.text or "null"
            parameters[param.get("name", "")] = json.loads(raw)
        graph.add(tool, name=el.get("name"), **parameters)
    for el in root.findall("cable"):
        graph.connect(el.get("source", ""), el.get("target", ""),
                      int(el.get("sourceIndex", "0")),
                      int(el.get("targetIndex", "0")))
    return graph


def loads(document: str, toolbox: ToolBox) -> TaskGraph:
    """Parse workflow XML, binding tools by name from *toolbox*."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise WorkflowError(f"malformed workflow XML: {exc}") from exc
    if root.tag != "taskgraph":
        raise WorkflowError(f"not a taskgraph document: {root.tag}")
    return _parse_graph(root, toolbox)
