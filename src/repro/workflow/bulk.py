"""Bulk scoring as a workflow tool (the batched invocation plane's
workflow-layer adopter).

:class:`BulkScoreTool` labels a test set by scattering chunked
``classifyBatch`` calls across a pool of replica Classifier endpoints —
Grid WEKA's "labelling of test data using a previously built
classifier" expressed as a toolbox tool, the same way
:class:`~repro.workflow.faults.ReplicatedServiceTool` expresses
single-call failover.  Chunk migration off dead replicas comes from
:class:`~repro.ws.scatter.ScatterGather` (see
:func:`repro.services.grid.scatter_score`).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.services import grid
from repro.workflow.model import Tool


class BulkScoreTool(Tool):
    """Scatter-gather a test set's rows across replica endpoints.

    Inputs: ``train`` and ``test`` (ARFF text).  Output: the predicted
    label per test row, in input order.  Parameters (defaults settable
    at construction): ``classifier``, ``attribute`` ("" = the training
    set's class attribute), ``options`` and ``chunk`` (initial scatter
    chunk size; ``None`` = the process default, see
    :func:`repro.ws.scatter.set_default_chunk`).
    """

    def __init__(self, name: str, proxies: Sequence[Any],
                 classifier: str = "J48", attribute: str = "",
                 folder: str = "WebServices", doc: str = "",
                 chunk: int | None = None,
                 options: dict | None = None):
        super().__init__(
            name, inputs=["train", "test"], outputs=["labels"],
            folder=folder,
            doc=doc or (f"Bulk-score a test set with {classifier} "
                        f"scattered across {len(proxies)} replica(s)."),
            parameters={"classifier": classifier, "attribute": attribute,
                        "chunk": chunk, "options": dict(options or {})})
        self.proxies = list(proxies)
        #: execution trace of the last run (chunk dispatches, migrations)
        self.last_report: grid.BulkScoreReport | None = None

    def run(self, inputs: list[Any], parameters: dict[str, Any]
            ) -> list[Any]:
        train, test = inputs
        report = grid.scatter_score(
            self.proxies, train, test,
            classifier=parameters.get("classifier", "J48"),
            attribute=parameters.get("attribute") or None,
            options=parameters.get("options") or {},
            chunk=parameters.get("chunk"))
        self.last_report = report
        return [report.labels]
