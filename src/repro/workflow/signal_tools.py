"""Signal-processing toolbox (Triana heritage, §2).

    "Use of the Triana workflow engine also allows us to utilize the Signal
    Processing toolbox available, with algorithms such as Fast Fourier
    Transform and various spectral analysis algorithms."

Implemented on NumPy's FFT; tools exchange plain ``list[float]`` series so
they cable freely with the rest of the workspace.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkflowError
from repro.workflow.model import FunctionTool


def _sine(samples: int = 256, frequency: float = 8.0,
          amplitude: float = 1.0, rate: float = 256.0,
          noise: float = 0.0, seed: int = 0) -> list:
    """Generate a sampled sine wave (optionally noisy)."""
    if samples < 2:
        raise WorkflowError("need at least 2 samples")
    t = np.arange(samples) / rate
    wave = amplitude * np.sin(2 * np.pi * frequency * t)
    if noise > 0:
        wave = wave + np.random.default_rng(seed).normal(0, noise, samples)
    return [float(v) for v in wave]


def _fft(series: list) -> list:
    """FFT magnitudes of a real series (first half of the spectrum)."""
    if not series:
        raise WorkflowError("empty series")
    spectrum = np.abs(np.fft.rfft(np.asarray(series, dtype=float)))
    return [float(v) for v in spectrum]


def _power_spectrum(series: list, rate: float = 256.0) -> dict:
    """Power spectral density plus the dominant frequency."""
    if not series:
        raise WorkflowError("empty series")
    arr = np.asarray(series, dtype=float)
    spectrum = np.abs(np.fft.rfft(arr)) ** 2
    freqs = np.fft.rfftfreq(arr.size, d=1.0 / rate)
    peak = int(np.argmax(spectrum[1:]) + 1) if spectrum.size > 1 else 0
    return {"frequencies": [float(f) for f in freqs],
            "power": [float(p) for p in spectrum],
            "dominant_frequency": float(freqs[peak])}


def _window(series: list, kind: str = "hann") -> list:
    """Apply a window function before spectral analysis."""
    arr = np.asarray(series, dtype=float)
    if kind == "hann":
        win = np.hanning(arr.size)
    elif kind == "hamming":
        win = np.hamming(arr.size)
    elif kind == "rect":
        win = np.ones(arr.size)
    else:
        raise WorkflowError(f"unknown window {kind!r}")
    return [float(v) for v in arr * win]


def _smooth(series: list, width: int = 5) -> list:
    """Moving-average smoothing."""
    arr = np.asarray(series, dtype=float)
    if width < 1 or width > arr.size:
        raise WorkflowError("bad smoothing width")
    kernel = np.ones(width) / width
    return [float(v) for v in np.convolve(arr, kernel, mode="same")]


def all_tools() -> list[FunctionTool]:
    """Instantiate this module's tool set."""
    return [
        FunctionTool("SineGenerator", _sine, [], ["series"], "SignalProc"),
        FunctionTool("FFT", _fft, ["series"], ["spectrum"], "SignalProc"),
        FunctionTool("PowerSpectrum", _power_spectrum, ["series"],
                     ["spectrum"], "SignalProc"),
        FunctionTool("Window", _window, ["series"], ["series"],
                     "SignalProc"),
        FunctionTool("Smooth", _smooth, ["series"], ["series"],
                     "SignalProc"),
    ]
