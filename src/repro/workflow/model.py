"""The workflow model: tools, tasks, nodes, cables and the task graph.

Faithful to the Triana vocabulary the paper uses (§4): *tools* live in
toolbox folders; dragging one into the workspace creates a *task*; tasks
carry *input nodes* (left side) and *output nodes* (right side); a *cable*
connects an output node to an input node; "once a network has been created
it can be executed".

A tool's behaviour is a pure function of its connected inputs plus its task
*parameters* (the dialog settings a Triana user types in), which keeps tasks
re-runnable and the XML serialisation complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import CableError, WorkflowError


@dataclass(frozen=True)
class Port:
    """One connection point of a task (direction + index + label)."""

    task: str       # owning task name
    direction: str  # 'in' | 'out'
    index: int
    label: str = ""


class Tool:
    """A reusable unit of work.

    Subclasses (or :func:`make_tool` wrappers) define ``run``.  Input and
    output names double as port labels and as documentation in the toolbox
    tree.
    """

    def __init__(self, name: str, inputs: Sequence[str],
                 outputs: Sequence[str], folder: str = "Common",
                 doc: str = "", parameters: dict[str, Any] | None = None):
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.folder = folder
        self.doc = doc
        #: default parameter values; tasks may override per placement
        self.parameters = dict(parameters or {})

    def run(self, inputs: list[Any], parameters: dict[str, Any]
            ) -> list[Any]:
        """Compute outputs from *inputs* (ordered per ``self.inputs``)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"Tool({self.name!r}, in={self.inputs}, "
                f"out={self.outputs})")


class FunctionTool(Tool):
    """A tool wrapping a plain callable ``fn(*inputs, **parameters)``.

    The callable returns either a tuple matching the declared outputs or a
    single value (for single-output tools).
    """

    def __init__(self, name: str, fn: Callable, inputs: Sequence[str],
                 outputs: Sequence[str], folder: str = "Common",
                 doc: str = "", parameters: dict[str, Any] | None = None):
        super().__init__(name, inputs, outputs, folder,
                         doc or (fn.__doc__ or "").strip(), parameters)
        self.fn = fn

    def run(self, inputs: list[Any], parameters: dict[str, Any]
            ) -> list[Any]:
        result = self.fn(*inputs, **parameters)
        if len(self.outputs) == 0:
            return []
        if len(self.outputs) == 1:
            return [result]
        if not isinstance(result, (tuple, list)) or \
                len(result) != len(self.outputs):
            raise WorkflowError(
                f"tool {self.name!r} must return {len(self.outputs)} "
                f"outputs, got {result!r}")
        return list(result)


def make_tool(name: str, inputs: Sequence[str], outputs: Sequence[str],
              folder: str = "Common", doc: str = "",
              parameters: dict[str, Any] | None = None):
    """Decorator: turn a function into a :class:`FunctionTool`."""
    def deco(fn: Callable) -> FunctionTool:
        return FunctionTool(name, fn, inputs, outputs, folder, doc,
                            parameters)
    return deco


@dataclass
class Task:
    """A placed tool instance inside a graph."""

    name: str
    tool: Tool
    parameters: dict[str, Any] = field(default_factory=dict)

    @property
    def num_inputs(self) -> int:
        return len(self.tool.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.tool.outputs)

    def effective_parameters(self) -> dict[str, Any]:
        """Tool defaults overlaid with task parameters."""
        merged = dict(self.tool.parameters)
        merged.update(self.parameters)
        return merged

    def in_port(self, index: int) -> Port:
        """Input port at *index* (validates the index)."""
        if not 0 <= index < self.num_inputs:
            raise CableError(
                f"task {self.name!r} has no input node {index}")
        return Port(self.name, "in", index, self.tool.inputs[index])

    def out_port(self, index: int) -> Port:
        """Output port at *index* (validates the index)."""
        if not 0 <= index < self.num_outputs:
            raise CableError(
                f"task {self.name!r} has no output node {index}")
        return Port(self.name, "out", index, self.tool.outputs[index])


@dataclass(frozen=True)
class Cable:
    """A data connection: (source task, output index) → (target task,
    input index)."""

    source: str
    source_index: int
    target: str
    target_index: int


class TaskGraph:
    """A named set of tasks wired with cables (the workspace contents)."""

    def __init__(self, name: str = "workflow"):
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._cables: list[Cable] = []

    # -- construction ---------------------------------------------------------
    def add(self, tool: Tool, name: str | None = None,
            **parameters: Any) -> Task:
        """Place *tool* as a task; auto-numbered name when omitted."""
        base = name or tool.name
        task_name = base
        counter = 1
        while task_name in self._tasks:
            counter += 1
            task_name = f"{base}-{counter}"
        task = Task(task_name, tool, parameters)
        self._tasks[task_name] = task
        return task

    def connect(self, source: Task | str, target: Task | str,
                source_index: int = 0, target_index: int = 0) -> Cable:
        """Drag a cable from *source*'s output node to *target*'s input."""
        src = self.task(source if isinstance(source, str) else source.name)
        dst = self.task(target if isinstance(target, str) else target.name)
        src.out_port(source_index)   # validates index
        dst.in_port(target_index)
        if src.name == dst.name:
            raise CableError(f"cannot cable task {src.name!r} to itself")
        for cable in self._cables:
            if cable.target == dst.name and \
                    cable.target_index == target_index:
                raise CableError(
                    f"input {target_index} of task {dst.name!r} is "
                    f"already connected")
        cable = Cable(src.name, source_index, dst.name, target_index)
        self._cables.append(cable)
        if self._has_cycle():
            self._cables.remove(cable)
            raise CableError(
                f"cable {src.name!r} -> {dst.name!r} would create a cycle "
                f"(use patterns.loop for iteration)")
        return cable

    def disconnect(self, cable: Cable) -> None:
        """Remove a cable from the graph."""
        try:
            self._cables.remove(cable)
        except ValueError:
            raise CableError(f"cable {cable} is not in the graph") from None

    def remove_task(self, name: str) -> None:
        """Remove a task and every cable touching it."""
        if name not in self._tasks:
            raise WorkflowError(f"no task named {name!r}")
        del self._tasks[name]
        self._cables = [c for c in self._cables
                        if c.source != name and c.target != name]

    # -- inspection -----------------------------------------------------------
    def task(self, name: str) -> Task:
        """Task by name (raises WorkflowError when unknown)."""
        try:
            return self._tasks[name]
        except KeyError:
            raise WorkflowError(
                f"no task named {name!r}; tasks: {sorted(self._tasks)}"
            ) from None

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks.values())

    @property
    def cables(self) -> list[Cable]:
        return list(self._cables)

    def incoming(self, name: str) -> list[Cable]:
        """Cables arriving at task *name*."""
        return [c for c in self._cables if c.target == name]

    def outgoing(self, name: str) -> list[Cable]:
        """Cables leaving task *name*."""
        return [c for c in self._cables if c.source == name]

    def unconnected_inputs(self, name: str) -> list[int]:
        """Input indexes of *name* with no cable (fed from parameters)."""
        connected = {c.target_index for c in self.incoming(name)}
        return [i for i in range(self.task(name).num_inputs)
                if i not in connected]

    def sources(self) -> list[Task]:
        """Tasks with no incoming cables."""
        return [t for t in self.tasks if not self.incoming(t.name)]

    def sinks(self) -> list[Task]:
        """Tasks with no outgoing cables."""
        return [t for t in self.tasks if not self.outgoing(t.name)]

    def _has_cycle(self) -> bool:
        order = self.topological_order(strict=False)
        return order is None

    def topological_order(self, strict: bool = True
                          ) -> list[str] | None:
        """Kahn topological order; None (or raise) when cyclic."""
        indegree = {name: 0 for name in self._tasks}
        for cable in self._cables:
            indegree[cable.target] += 1
        queue = sorted(n for n, d in indegree.items() if d == 0)
        order: list[str] = []
        while queue:
            node = queue.pop(0)
            order.append(node)
            for cable in self.outgoing(node):
                indegree[cable.target] -= 1
                if indegree[cable.target] == 0:
                    queue.append(cable.target)
            queue.sort()
        if len(order) != len(self._tasks):
            if strict:
                raise WorkflowError(f"graph {self.name!r} is cyclic")
            return None
        return order

    def validate(self) -> None:
        """Check the graph is executable: acyclic and every connected
        input's cable endpoints exist (parameters cover the rest)."""
        self.topological_order(strict=True)
        for cable in self._cables:
            self.task(cable.source).out_port(cable.source_index)
            self.task(cable.target).in_port(cable.target_index)

    def __len__(self) -> int:
        return len(self._tasks)

    def __repr__(self) -> str:
        return (f"TaskGraph({self.name!r}, {len(self._tasks)} tasks, "
                f"{len(self._cables)} cables)")


class GroupTool(Tool):
    """A subgraph packaged as a single tool (the paper's "service hierarchy,
    i.e. a single service made up of a number of others and made available
    as a single interface", §2).

    ``input_map``/``output_map`` bind the group's outer ports to inner task
    ports.
    """

    def __init__(self, name: str, graph: TaskGraph,
                 input_map: Sequence[tuple[str, int]],
                 output_map: Sequence[tuple[str, int]],
                 folder: str = "Groups", doc: str = ""):
        super().__init__(name,
                         [f"{t}.{i}" for t, i in input_map],
                         [f"{t}.{i}" for t, i in output_map],
                         folder, doc)
        graph.validate()
        for task_name, idx in input_map:
            graph.task(task_name).in_port(idx)
        for task_name, idx in output_map:
            graph.task(task_name).out_port(idx)
        self.graph = graph
        self.input_map = list(input_map)
        self.output_map = list(output_map)

    def run(self, inputs: list[Any], parameters: dict[str, Any]
            ) -> list[Any]:
        from repro.workflow.engine import WorkflowEngine
        engine = WorkflowEngine()
        injected = {(t, i): v
                    for (t, i), v in zip(self.input_map, inputs)}
        results = engine.run(self.graph, inputs=injected)
        return [results.output(t, i) for t, i in self.output_map]
