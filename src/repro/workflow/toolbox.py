"""The toolbox: folders of tools the user composes from (Figure 1's left
pane, Figure 2's component inventory).

    "the user is provided with a collection of pre-defined folders
    containing tools grouped according to functions.  The tools in the
    Common folder for example performs tasks such as inputting and viewing
    strings."
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import WorkflowError
from repro.workflow.model import Tool


class ToolBox:
    """Folder-organised tool registry."""

    def __init__(self, name: str = "toolbox"):
        self.name = name
        self._tools: dict[str, Tool] = {}

    def register(self, tool: Tool) -> Tool:
        """Register one tool (duplicate names are rejected)."""
        if tool.name in self._tools:
            raise WorkflowError(f"tool {tool.name!r} already registered")
        self._tools[tool.name] = tool
        return tool

    def register_all(self, tools) -> None:
        """Register every tool of *tools*."""
        for tool in tools:
            self.register(tool)

    def get(self, name: str) -> Tool:
        """Look up an entry by name."""
        try:
            return self._tools[name]
        except KeyError:
            raise WorkflowError(
                f"no tool named {name!r}; folders: {self.folders()}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def __len__(self) -> int:
        return len(self._tools)

    def tools(self, folder: str | None = None) -> list[Tool]:
        """Tools, optionally restricted to one folder."""
        out = [t for t in self._tools.values()
               if folder is None or t.folder == folder]
        return sorted(out, key=lambda t: t.name)

    def folders(self) -> list[str]:
        """Sorted folder names."""
        return sorted({t.folder for t in self._tools.values()})

    def search(self, query: str) -> list[Tool]:
        """Find tools whose name, folder or doc matches *query*
        (case-insensitive substring — the toolbox search box)."""
        needle = query.lower()
        return sorted(
            (t for t in self._tools.values()
             if needle in t.name.lower() or needle in t.folder.lower()
             or needle in t.doc.lower()),
            key=lambda t: t.name)

    def tree(self) -> dict[str, list[str]]:
        """Folder → tool-name mapping (the left-pane tree)."""
        out: dict[str, list[str]] = defaultdict(list)
        for tool in self._tools.values():
            out[tool.folder].append(tool.name)
        return {folder: sorted(names) for folder, names
                in sorted(out.items())}

    def render_tree(self) -> str:
        """Printable folder tree, as the composition GUI would show it."""
        lines = [f"[{self.name}]"]
        for folder, names in self.tree().items():
            lines.append(f"+- {folder}/")
            for name in names:
                lines.append(f"|  +- {name}")
        return "\n".join(lines)


def default_toolbox() -> ToolBox:
    """The paper's data-mining workspace toolbox: Common tools, data-set
    manipulation, processing, visualisation and signal-processing folders
    (Figure 2)."""
    from repro.workflow import builtin_tools, signal_tools
    box = ToolBox("data-mining workspace")
    box.register_all(builtin_tools.all_tools())
    box.register_all(signal_tools.all_tools())
    return box
