"""Workflow engine (Triana analogue): tools, tasks, cables, toolbox folders,
WSDL import, the threaded dataflow enactor, group tools (service hierarchy),
XML + GriPhyN DAX export, pattern operators, fault tolerance with job
migration, service monitoring and the signal-processing toolbox."""

from repro.workflow.model import (Cable, FunctionTool, GroupTool, Port,
                                  Task, TaskGraph, Tool, make_tool)
from repro.workflow.engine import (ChaosMiddleware, RunResult,
                                   TaskMiddleware, WorkflowEngine)
from repro.workflow.toolbox import ToolBox, default_toolbox
from repro.workflow.monitor import EventBus, ProgressMonitor, TaskEvent
from repro.workflow.faults import ReplicatedServiceTool, RetryPolicy
from repro.workflow.bulk import BulkScoreTool
from repro.workflow.wsimport import (WebServiceTool, import_wsdl_text,
                                     import_wsdl_url)
from repro.workflow import builtin_tools, dax, patterns, signal_tools, xmlio

__all__ = [
    "Tool", "FunctionTool", "GroupTool", "Task", "TaskGraph", "Cable",
    "Port", "make_tool",
    "WorkflowEngine", "RunResult", "TaskMiddleware", "ChaosMiddleware",
    "ToolBox", "default_toolbox",
    "EventBus", "TaskEvent", "ProgressMonitor",
    "RetryPolicy", "ReplicatedServiceTool", "BulkScoreTool",
    "WebServiceTool", "import_wsdl_url", "import_wsdl_text",
    "builtin_tools", "signal_tools", "patterns", "xmlio", "dax",
]
