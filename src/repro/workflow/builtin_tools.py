"""Pre-defined workspace tools (§4.3's three tool families plus the Common
folder).

* Common: string input/viewing (the paper's example of the Common folder).
* Data:   local dataset loading, CSV ↔ ARFF conversion, dataset summary.
* Processing: ClassifierSelector, OptionSelector, AttributeSelector — the
  three §4.4 helper tools of the case-study workflow.
* Visualization: TreeViewer (text or graph), cluster and attribute
  visualisers.

Each tool is a :class:`~repro.workflow.model.FunctionTool`; ``None`` inputs
fall back to task parameters so the same tool works cabled or configured.
"""

from __future__ import annotations

from typing import Any

from repro.data import arff as arff_io
from repro.data import converters, summary as summary_mod
from repro.data.dataset import Dataset
from repro.errors import WorkflowError
from repro.viz import attrviz, clusterviz, treeviz
from repro.workflow.model import FunctionTool


def _string_input(value: str = "") -> str:
    """Emit a constant string (the Common folder's input tool)."""
    return value


def _string_viewer(text: Any) -> str:
    """Pass text through (viewing happens via the run result)."""
    return "" if text is None else str(text)


def _local_dataset(path: str = "", dataset: Any = None,
                   class_attribute: str = "") -> str:
    """Load a dataset from the local filespace (or an in-memory Dataset)
    and emit it as ARFF text — the case study's "local dataset tool"."""
    if dataset is not None:
        if isinstance(dataset, Dataset):
            return arff_io.dumps(dataset)
        return str(dataset)
    if not path:
        raise WorkflowError("LocalDataset needs a path or dataset")
    with open(path, "r", encoding="utf-8") as fp:
        text = fp.read()
    if path.lower().endswith(".csv"):
        text = converters.csv_to_arff(text)
    return text


def _csv_to_arff(csv_text: str) -> str:
    """Convert a CSV document to ARFF (schema inferred)."""
    return converters.csv_to_arff(csv_text)


def _arff_to_csv(arff_text: str) -> str:
    """Convert an ARFF document to CSV."""
    return converters.arff_to_csv(arff_text)


def _dataset_summary(arff_text: str) -> str:
    """Figure-3 style dataset statistics of an ARFF document."""
    return summary_mod.summary_text(arff_io.loads(arff_text))


def _classifier_selector(classifiers: Any, choice: str = "") -> str:
    """Pick one classifier from a getClassifiers listing.

    With no explicit *choice*, picks the first entry — headless stand-in
    for the interactive selector dialog."""
    if choice:
        if isinstance(classifiers, list):
            names = {c["name"] if isinstance(c, dict) else str(c)
                     for c in classifiers}
            if choice not in names:
                raise WorkflowError(
                    f"classifier {choice!r} not offered by the service")
        return choice
    if not classifiers:
        raise WorkflowError("no classifiers to select from")
    first = classifiers[0]
    return first["name"] if isinstance(first, dict) else str(first)


def _classifier_tree(classifiers: Any) -> str:
    """Render a getClassifiers listing as the family-grouped tree the paper's
    processing tool shows."""
    if not classifiers:
        return "(no classifiers)"
    by_family: dict[str, list[str]] = {}
    for c in classifiers:
        family = c.get("family", "other") if isinstance(c, dict) else "other"
        name = c["name"] if isinstance(c, dict) else str(c)
        by_family.setdefault(family, []).append(name)
    lines = []
    for family in sorted(by_family):
        lines.append(f"{family}/")
        for name in sorted(by_family[family]):
            lines.append(f"    {name}")
    return "\n".join(lines)


def _option_selector(options: Any, overrides: dict | None = None) -> dict:
    """Build the option dict to pass to classifyInstance: service defaults
    overlaid with the user's *overrides* (the OptionSelector dialog)."""
    chosen: dict[str, Any] = {}
    for spec in options or []:
        if isinstance(spec, dict) and spec.get("default") is not None:
            chosen[spec["name"]] = spec["default"]
    for key, value in (overrides or {}).items():
        chosen[key] = value
    return chosen


def _attribute_selector(arff_text: str, attribute: str = "") -> str:
    """Pick the class attribute of a dataset (defaults to the last one,
    WEKA's convention)."""
    ds = arff_io.loads(arff_text)
    if attribute:
        ds.attribute_index(attribute)  # validates
        return attribute
    return ds.attributes[-1].name


def _attribute_lister(arff_text: str) -> list:
    """List attribute names embedded in a dataset."""
    return [a.name for a in arff_io.loads(arff_text).attributes]


def _tree_viewer(result: Any, mode: str = "text") -> str:
    """Render a classification result: 'text' shows the textual model,
    'graph'/'svg'/'dot' render the tree graph (§4.4 stage 4)."""
    if isinstance(result, dict):
        if mode == "text":
            return result.get("model_text") or treeviz.tree_text(
                result["graph"])
        graph = result.get("graph")
        if graph is None:
            raise WorkflowError("result carries no tree graph")
        if mode in ("graph", "svg"):
            return treeviz.tree_svg(graph)
        if mode == "dot":
            return treeviz.tree_dot(graph)
        raise WorkflowError(f"unknown TreeViewer mode {mode!r}")
    return str(result)


def _cluster_viewer(arff_text: str, assignments: Any) -> str:
    """ASCII scatter of a clustered dataset."""
    ds = arff_io.loads(arff_text)
    return clusterviz.cluster_scatter_ascii(ds, list(assignments))


def _attribute_viewer(arff_text: str, attribute: str = "") -> str:
    """Histogram view of one attribute (or the whole dataset)."""
    ds = arff_io.loads(arff_text)
    if attribute:
        return attrviz.attribute_histogram(ds, attribute)
    return attrviz.dataset_overview(ds)


def _image_viewer(image: Any, width: int = 72, height: int = 28,
                  path: str = "") -> str:
    """Preview image bytes (PPM from plot3D) as ASCII; optionally also
    save the raw bytes to *path* — the paper's 'Image Plotter' tool."""
    from repro.viz.ppm import Raster
    if not isinstance(image, (bytes, bytearray)):
        raise WorkflowError("ImageViewer needs image bytes")
    if path:
        with open(path, "wb") as fp:
            fp.write(bytes(image))
    if bytes(image[:2]) == b"P6":
        return Raster.from_ppm(bytes(image)).to_ascii(width, height)
    return f"({len(image)} bytes of image data)"


def all_tools() -> list[FunctionTool]:
    """Instantiate the built-in tool set (fresh instances, safe to register
    in several toolboxes)."""
    return [
        FunctionTool("StringInput", _string_input, [], ["text"],
                     "Common"),
        FunctionTool("StringViewer", _string_viewer, ["text"], ["text"],
                     "Common"),
        FunctionTool("LocalDataset", _local_dataset, [], ["arff"],
                     "Data"),
        FunctionTool("CsvToArff", _csv_to_arff, ["csv"], ["arff"],
                     "Data"),
        FunctionTool("ArffToCsv", _arff_to_csv, ["arff"], ["csv"],
                     "Data"),
        FunctionTool("DatasetSummary", _dataset_summary, ["arff"],
                     ["summary"], "Data"),
        FunctionTool("ClassifierSelector", _classifier_selector,
                     ["classifiers"], ["classifier"], "Processing"),
        FunctionTool("ClassifierTree", _classifier_tree, ["classifiers"],
                     ["tree"], "Processing"),
        FunctionTool("OptionSelector", _option_selector, ["options"],
                     ["chosen"], "Processing"),
        FunctionTool("AttributeSelector", _attribute_selector, ["arff"],
                     ["attribute"], "Processing"),
        FunctionTool("AttributeLister", _attribute_lister, ["arff"],
                     ["attributes"], "Processing"),
        FunctionTool("TreeViewer", _tree_viewer, ["result"], ["view"],
                     "Visualization"),
        FunctionTool("ClusterViewer", _cluster_viewer,
                     ["arff", "assignments"], ["view"], "Visualization"),
        FunctionTool("AttributeViewer", _attribute_viewer, ["arff"],
                     ["view"], "Visualization"),
        FunctionTool("ImageViewer", _image_viewer, ["image"], ["view"],
                     "Visualization"),
    ]
