"""Fault tolerance: retries and job migration (§3 category 2).

    "The framework must therefore include the ability to complete the task
    if a fault occurs by moving the job to another resource."

Two pieces implement that:

* :class:`RetryPolicy` — plugged into the engine; retries a failed task up
  to ``max_retries`` times with optional backoff, emitting ``retried``
  monitoring events.  Backoff sleeps go through an injectable
  :class:`~repro.clock.Clock`, so retry tests run on a fake clock instead
  of wall-sleeping, and a retry never outlives the ambient deadline (see
  :mod:`repro.ws.deadline`).
* :class:`ReplicatedServiceTool` — a workflow tool bound to a *pool* of
  equivalent service endpoints (replicas of the same algorithm on different
  resources).  On a transport/service failure it migrates the invocation to
  the next replica, which is exactly the paper's "moving the job to another
  resource"; the tool records the migration trail for the monitor.  With
  per-replica circuit breakers attached, replicas whose circuit is open
  are skipped outright — migration happens immediately instead of paying
  another doomed send.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import (CircuitOpenError, DeadlineExceeded,
                          EnactmentError, ServiceError, TransportError,
                          WorkflowError)
from repro.obs import get_metrics
from repro.ws.breaker import CircuitBreaker
from repro.ws.deadline import current_deadline
from repro.workflow.model import Task, Tool
from repro.workflow.monitor import EventBus, TaskEvent

#: Failures worth re-running: delivery problems and service-side errors.
#: Programming errors in tools (TypeError, KeyError, ...) are *not* here —
#: retrying those only repeats the bug with backoff.  Neither is
#: :class:`DeadlineExceeded`: a spent budget cannot be retried back.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (TransportError,
                                                     ServiceError)


class RetryPolicy:
    """Re-run failing tasks before surfacing the failure."""

    def __init__(self, max_retries: int = 2, backoff_s: float = 0.0,
                 events: EventBus | None = None,
                 retry_on: tuple[type[BaseException], ...]
                 = TRANSIENT_ERRORS,
                 clock: Clock = SYSTEM_CLOCK):
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.events = events
        self.retry_on = retry_on
        self.clock = clock

    def run_task(self, task: Task, inputs: list[Any],
                 parameters: dict[str, Any],
                 runner: Callable[[list[Any], dict[str, Any]], list[Any]]
                 | None = None) -> list[Any]:
        """Run one task with retry semantics.

        *runner* overrides how an attempt executes (the engine uses it to
        route attempts through the chaos harness); each retry re-invokes
        it, so injected faults hit every attempt independently.
        """
        run = runner if runner is not None else task.tool.run
        attempt = 0
        while True:
            try:
                return run(inputs, parameters)
            except self.retry_on as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                deadline = current_deadline()
                if deadline is not None and deadline.expired:
                    # no budget left to retry in: surface the expiry
                    # instead of spinning through doomed attempts
                    raise DeadlineExceeded(
                        f"task {task.name!r} failed with the budget "
                        f"spent (attempt {attempt}: {exc!r})") from exc
                get_metrics().counter("workflow.retries",
                                      task=task.name).inc()
                if self.events:
                    self.events.emit(TaskEvent(
                        "task", task.name, "retried",
                        detail=f"attempt {attempt}: {exc!r}"))
                if self.backoff_s:
                    pause = self.backoff_s * attempt
                    deadline = current_deadline()
                    if deadline is not None and \
                            deadline.remaining() <= pause:
                        # backing off past the budget guarantees failure;
                        # surface it now instead of sleeping into it
                        raise DeadlineExceeded(
                            f"task {task.name!r}: {pause:.3f}s backoff "
                            f"exceeds the remaining "
                            f"{max(deadline.remaining(), 0.0):.3f}s "
                            f"budget") from exc
                    self.clock.sleep(pause)


class ReplicatedServiceTool(Tool):
    """A service-operation tool with failover across endpoint replicas.

    *proxies* are service proxies (:class:`~repro.ws.client.ServiceProxy`)
    for equivalent deployments of the same service.  Inputs map
    positionally onto the operation's WSDL parameters.  *breakers*
    (optional, one per replica) let the tool skip replicas whose circuit
    is open — the §3 migration happens immediately, without paying a
    send against a presumed-dead resource.
    """

    def __init__(self, name: str, proxies: Sequence[Any], operation: str,
                 param_names: Sequence[str], folder: str = "WebServices",
                 doc: str = "", events: EventBus | None = None,
                 breakers: Sequence[CircuitBreaker] | None = None):
        super().__init__(name, list(param_names), ["result"], folder, doc)
        if not proxies:
            raise WorkflowError(
                f"tool {name!r} needs at least one service replica")
        self.proxies = list(proxies)
        self.operation = operation
        self.param_names = list(param_names)
        self.events = events
        if breakers is not None and len(breakers) != len(self.proxies):
            raise WorkflowError(
                f"tool {name!r}: {len(breakers)} breaker(s) for "
                f"{len(self.proxies)} replica(s)")
        self.breakers = list(breakers) if breakers is not None else None
        self.migrations: list[tuple[int, str]] = []

    def _migrate(self, replica: int, why: str) -> None:
        self.migrations.append((replica, why))
        get_metrics().counter("workflow.migrations",
                              tool=self.name).inc()
        if self.events:
            self.events.emit(TaskEvent("task", self.name, "migrated",
                                       detail=f"replica {replica}: "
                                              f"{why}"))

    def run(self, inputs: list[Any], parameters: dict[str, Any]
            ) -> list[Any]:
        params = {}
        for pname, value in zip(self.param_names, inputs):
            if value is not None:
                params[pname] = value
        for pname, value in parameters.items():
            params.setdefault(pname, value)
        last_error: Exception | None = None
        all_open = self.breakers is not None
        for replica, proxy in enumerate(self.proxies):
            breaker = self.breakers[replica] if self.breakers else None
            if breaker is not None and not breaker.allow():
                self._migrate(replica, "circuit open, skipped")
                continue
            all_open = False
            try:
                result = [proxy.call(self.operation, **params)]
            except (TransportError, OSError) as exc:
                if breaker is not None:
                    breaker.record_failure()
                last_error = exc
                self._migrate(replica, f"failed: {exc!r}")
            except ServiceError as exc:
                # the replica answered with a fault: alive but unhelpful
                if breaker is not None:
                    breaker.record_success()
                last_error = exc
                self._migrate(replica, f"failed: {exc!r}")
            else:
                if breaker is not None:
                    breaker.record_success()
                return result
        if all_open and last_error is None:
            last_error = CircuitOpenError(
                f"tool {self.name!r}: every replica's circuit is open")
        raise EnactmentError(self.name,
                             last_error or WorkflowError("no replicas"))
