"""Fault tolerance: retries and job migration (§3 category 2).

    "The framework must therefore include the ability to complete the task
    if a fault occurs by moving the job to another resource."

Two pieces implement that:

* :class:`RetryPolicy` — plugged into the engine; retries a failed task up
  to ``max_retries`` times with optional backoff, emitting ``retried``
  monitoring events.
* :class:`ReplicatedServiceTool` — a workflow tool bound to a *pool* of
  equivalent service endpoints (replicas of the same algorithm on different
  resources).  On a transport/service failure it migrates the invocation to
  the next replica, which is exactly the paper's "moving the job to another
  resource"; the tool records the migration trail for the monitor.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.errors import EnactmentError, ServiceError, TransportError, \
    WorkflowError
from repro.obs import get_metrics
from repro.workflow.model import Task, Tool
from repro.workflow.monitor import EventBus, TaskEvent

#: Failures worth re-running: delivery problems and service-side errors.
#: Programming errors in tools (TypeError, KeyError, ...) are *not* here —
#: retrying those only repeats the bug with backoff.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (TransportError,
                                                     ServiceError)


class RetryPolicy:
    """Re-run failing tasks before surfacing the failure."""

    def __init__(self, max_retries: int = 2, backoff_s: float = 0.0,
                 events: EventBus | None = None,
                 retry_on: tuple[type[BaseException], ...]
                 = TRANSIENT_ERRORS):
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.events = events
        self.retry_on = retry_on

    def run_task(self, task: Task, inputs: list[Any],
                 parameters: dict[str, Any]) -> list[Any]:
        """Run one task with retry semantics."""
        attempt = 0
        while True:
            try:
                return task.tool.run(inputs, parameters)
            except self.retry_on as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                get_metrics().counter("workflow.retries",
                                      task=task.name).inc()
                if self.events:
                    self.events.emit(TaskEvent(
                        "task", task.name, "retried",
                        detail=f"attempt {attempt}: {exc!r}"))
                if self.backoff_s:
                    time.sleep(self.backoff_s * attempt)


class ReplicatedServiceTool(Tool):
    """A service-operation tool with failover across endpoint replicas.

    *proxies* are service proxies (:class:`~repro.ws.client.ServiceProxy`)
    for equivalent deployments of the same service.  Inputs map
    positionally onto the operation's WSDL parameters.
    """

    def __init__(self, name: str, proxies: Sequence[Any], operation: str,
                 param_names: Sequence[str], folder: str = "WebServices",
                 doc: str = "", events: EventBus | None = None):
        super().__init__(name, list(param_names), ["result"], folder, doc)
        if not proxies:
            raise WorkflowError(
                f"tool {name!r} needs at least one service replica")
        self.proxies = list(proxies)
        self.operation = operation
        self.param_names = list(param_names)
        self.events = events
        self.migrations: list[tuple[int, str]] = []

    def run(self, inputs: list[Any], parameters: dict[str, Any]
            ) -> list[Any]:
        params = {}
        for pname, value in zip(self.param_names, inputs):
            if value is not None:
                params[pname] = value
        for pname, value in parameters.items():
            params.setdefault(pname, value)
        last_error: Exception | None = None
        for replica, proxy in enumerate(self.proxies):
            try:
                return [proxy.call(self.operation, **params)]
            except (TransportError, ServiceError, OSError) as exc:
                last_error = exc
                self.migrations.append((replica, repr(exc)))
                get_metrics().counter("workflow.migrations",
                                      tool=self.name).inc()
                if self.events:
                    self.events.emit(TaskEvent(
                        "task", self.name, "migrated",
                        detail=f"replica {replica} failed: {exc!r}"))
        raise EnactmentError(self.name,
                             last_error or WorkflowError("no replicas"))
