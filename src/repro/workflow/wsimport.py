"""WSDL import: turn a Web Service into workspace tools (§4).

    "A Web Service is imported to the workspace by providing its WSDL
    interface.  Once the interface is provided, Triana creates a tool for
    each operation provided by the service.  These tools are used to invoke
    the service operations and are similar to the pre-defined tools but have
    a different colour in the workspace."

Imported tools carry ``is_web_service = True`` (the "different colour") and
the WSDL URL so the workspace can show "a URL specifying the location of the
WSDL document ... along with the data types that are necessary to invoke the
particular Web Service" (§4.5).
"""

from __future__ import annotations

from typing import Any

from repro.ws import wsdl as wsdl_mod
from repro.ws.client import HttpTransport, ServiceProxy, fetch_url
from repro.ws.transport import Transport
from repro.workflow.model import Tool
from repro.workflow.toolbox import ToolBox


class WebServiceTool(Tool):
    """One imported service operation as a workspace tool.

    Inputs are the operation's WSDL parameters in order; unconnected inputs
    fall back to task parameters of the same name.  The single output is the
    operation result.
    """

    is_web_service = True  # the paper's "different colour"

    def __init__(self, proxy: ServiceProxy, operation: str,
                 wsdl_url: str = "", folder: str = "WebServices"):
        info = proxy.description.operations[operation]
        service = proxy.description.service
        super().__init__(f"{service}.{operation}",
                         [p for p, _ in info.params], ["result"],
                         folder, info.doc)
        self.proxy = proxy
        self.operation = operation
        self.wsdl_url = wsdl_url
        self.param_types = dict(info.params)

    def run(self, inputs: list[Any], parameters: dict[str, Any]
            ) -> list[Any]:
        params: dict[str, Any] = {}
        for name, value in zip(self.inputs, inputs):
            if value is not None:
                params[name] = value
        for name, value in parameters.items():
            if name in self.param_types:
                params.setdefault(name, value)
        return [self.proxy.call(self.operation, **params)]

    def tooltip(self) -> str:
        """The §4.5 hover text: WSDL location + invocation data types."""
        types = ", ".join(f"{n}: {t}" for n, t in self.param_types.items())
        return (f"{self.name}\nWSDL: {self.wsdl_url or '(local)'}\n"
                f"inputs: {types or '(none)'}")


def import_wsdl_url(url: str, toolbox: ToolBox | None = None,
                    folder: str = "WebServices") -> list[WebServiceTool]:
    """Fetch a ``?wsdl`` URL and create one tool per operation."""
    description = wsdl_mod.parse(fetch_url(url))
    proxy = ServiceProxy(description, HttpTransport(description.address))
    return _import(proxy, url, toolbox, folder)


def import_wsdl_text(document: str, transport: Transport,
                     toolbox: ToolBox | None = None,
                     folder: str = "WebServices"
                     ) -> list[WebServiceTool]:
    """Create tools from WSDL text with an explicit transport (in-process
    containers, simulated networks)."""
    proxy = ServiceProxy.from_wsdl_text(document, transport)
    return _import(proxy, "", toolbox, folder)


def _import(proxy: ServiceProxy, url: str, toolbox: ToolBox | None,
            folder: str) -> list[WebServiceTool]:
    tools = [WebServiceTool(proxy, op, url, folder)
             for op in proxy.operations()]
    if toolbox is not None:
        for tool in tools:
            toolbox.register(tool)
    return tools
