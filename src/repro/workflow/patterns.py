"""Design-pattern operator library (§2, reference [9] — Gomes, Rana & Cunha,
"Pattern operators for grid environments").

Two families, as in that paper:

* **structural patterns** build graph shapes from tools — ``pipeline``
  (sequential stages), ``farm`` (master/worker replication with scatter and
  gather), ``star`` (a centre task fanning out to satellites) and ``ring``
  (cyclic neighbour topology, returned as a list of stages since enactment
  is dataflow).
* **behavioural operators** manipulate an existing graph — ``replace`` a
  task's tool, ``inject`` a task into a cable, ``repeat`` a subchain N
  times, and ``loop`` (iterate a body tool until a predicate holds —
  workflow-level iteration, §3.1's "can contain loops").
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import WorkflowError
from repro.workflow.model import (FunctionTool, Task, TaskGraph, Tool)


# --------------------------------------------------------------------------
# structural patterns
# --------------------------------------------------------------------------

def pipeline(tools: Sequence[Tool], name: str = "pipeline") -> TaskGraph:
    """Chain tools output→input: stage i output 0 feeds stage i+1 input 0."""
    if not tools:
        raise WorkflowError("pipeline needs at least one tool")
    graph = TaskGraph(name)
    previous: Task | None = None
    for tool in tools:
        task = graph.add(tool)
        if previous is not None:
            if previous.num_outputs < 1 or task.num_inputs < 1:
                raise WorkflowError(
                    f"cannot chain {previous.name!r} -> {task.name!r}")
            graph.connect(previous, task)
        previous = task
    return graph


def farm(worker: Tool, n_workers: int,
         scatter: Tool, gather: Tool, name: str = "farm") -> TaskGraph:
    """Master/worker: *scatter* must expose >= n outputs, *gather* >= n
    inputs; each worker is an independent replica of *worker*."""
    if n_workers < 1:
        raise WorkflowError("farm needs at least one worker")
    if len(scatter.outputs) < n_workers:
        raise WorkflowError(
            f"scatter tool offers {len(scatter.outputs)} outputs, need "
            f"{n_workers}")
    if len(gather.inputs) < n_workers:
        raise WorkflowError(
            f"gather tool offers {len(gather.inputs)} inputs, need "
            f"{n_workers}")
    graph = TaskGraph(name)
    source = graph.add(scatter, name="scatter")
    sink = graph.add(gather, name="gather")
    for i in range(n_workers):
        task = graph.add(worker, name=f"worker-{i}")
        graph.connect(source, task, source_index=i)
        graph.connect(task, sink, target_index=i)
    return graph


def star(centre: Tool, satellites: Sequence[Tool],
         name: str = "star") -> TaskGraph:
    """Centre fans its outputs to one satellite each."""
    if len(centre.outputs) < len(satellites):
        raise WorkflowError(
            f"centre offers {len(centre.outputs)} outputs for "
            f"{len(satellites)} satellites")
    graph = TaskGraph(name)
    hub = graph.add(centre, name="centre")
    for i, tool in enumerate(satellites):
        task = graph.add(tool, name=f"satellite-{i}")
        graph.connect(hub, task, source_index=i)
    return graph


def scatter_tool(n: int, splitter: Callable[[Any], Sequence[Any]],
                 name: str = "Scatter") -> FunctionTool:
    """Build an n-output scatter tool from a value splitter."""
    def run(value: Any) -> tuple:
        parts = list(splitter(value))
        if len(parts) != n:
            raise WorkflowError(
                f"splitter produced {len(parts)} parts, expected {n}")
        return tuple(parts)
    return FunctionTool(name, run, ["value"],
                        [f"part{i}" for i in range(n)], "Patterns")


def gather_tool(n: int, combiner: Callable[[list], Any],
                name: str = "Gather") -> FunctionTool:
    """Build an n-input gather tool from a list combiner."""
    def run(*parts: Any) -> Any:
        return combiner(list(parts))
    return FunctionTool(name, run, [f"part{i}" for i in range(n)],
                        ["combined"], "Patterns")


# --------------------------------------------------------------------------
# behavioural operators
# --------------------------------------------------------------------------

def replace(graph: TaskGraph, task_name: str, new_tool: Tool) -> Task:
    """Swap the tool of an existing task (arity must match)."""
    task = graph.task(task_name)
    if (len(new_tool.inputs) < task.num_inputs
            or len(new_tool.outputs) < task.num_outputs):
        raise WorkflowError(
            f"tool {new_tool.name!r} arity is too small to replace "
            f"{task_name!r}")
    task.tool = new_tool
    return task


def inject(graph: TaskGraph, cable, tool: Tool,
           name: str | None = None) -> Task:
    """Insert *tool* on an existing cable: source → tool → target."""
    if len(tool.inputs) < 1 or len(tool.outputs) < 1:
        raise WorkflowError(
            f"tool {tool.name!r} cannot be injected (needs 1 in/1 out)")
    graph.disconnect(cable)
    task = graph.add(tool, name=name)
    graph.connect(cable.source, task, source_index=cable.source_index)
    graph.connect(task, cable.target, target_index=cable.target_index)
    return task


def repeat(graph: TaskGraph, tool: Tool, times: int,
           after: Task | str) -> Task:
    """Append *times* copies of *tool* in sequence after a task."""
    if times < 1:
        raise WorkflowError("repeat needs times >= 1")
    current = graph.task(after if isinstance(after, str) else after.name)
    for _ in range(times):
        nxt = graph.add(tool)
        graph.connect(current, nxt)
        current = nxt
    return current


def loop(body: Tool, condition: Callable[[Any], bool],
         max_iterations: int = 100,
         name: str = "Loop") -> FunctionTool:
    """Iteration operator: apply *body* repeatedly while *condition(value)*
    holds (bounded by *max_iterations*).

    Dataflow graphs are acyclic, so loops are packaged as a single tool —
    the §3.1 requirement that "the workflow can involve significant
    iteration and can contain loops".
    """
    def run(value: Any, **parameters: Any) -> Any:
        current = value
        for _ in range(max_iterations):
            if not condition(current):
                return current
            outs = body.run([current], parameters)
            current = outs[0]
        raise WorkflowError(
            f"loop {name!r} exceeded {max_iterations} iterations")
    return FunctionTool(name, run, ["value"], ["value"], "Patterns",
                        doc=f"while-loop over {body.name}")
