"""The workflow enactor.

Executes a :class:`~repro.workflow.model.TaskGraph` as a dataflow: a task
fires once every connected input has a value; independent tasks run
concurrently on a thread pool (the paper's "once a network has been created
it can be executed").  Execution emits :mod:`~repro.workflow.monitor` events
so the §3 "service monitoring" requirement — watching jobs progress on
remote resources — holds for local and service-backed tasks alike.

Fault tolerance (§3 category 2) hooks in per task: a
:class:`~repro.workflow.faults.RetryPolicy` retries transient failures and
*migrates* the task to alternate endpoints when its tool publishes
replicas (see :mod:`repro.workflow.faults`).  Three resilience layers
complete the picture:

* **deadline propagation** — ``run(..., deadline_s=...)`` bounds the whole
  enactment; every task (and, through the ambient deadline scope, every
  SOAP call a task makes) inherits the shrinking budget, and an expired
  budget fails the run fast with :class:`~repro.errors.DeadlineExceeded`
  instead of hanging.
* **graceful degradation** — with ``allow_partial=True`` a permanently
  failed task no longer aborts the run: its downstream tasks are marked
  *skipped* and the run completes with ``RunResult.degraded`` set, so a
  mostly-healthy workflow still delivers the outputs it could compute.
* **chaos interception** — when a process-wide
  :class:`~repro.chaos.ChaosController` is armed, every task *attempt*
  is perturbed through it (inside the retry loop), turning any workflow
  into a seeded chaos drill.

Per-task concerns compose as :class:`TaskMiddleware` — the engine-level
sibling of the SOAP stack's :mod:`repro.ws.pipeline` chains.  Each
middleware wraps the task's attempt runner; the default stack is derived
from the armed chaos controller (:class:`ChaosMiddleware`), and an
explicit ``middleware=[...]`` (as :mod:`repro.cli` wires) replaces it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro import chaos
from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import DeadlineExceeded, EnactmentError, WorkflowError
from repro.obs import get_metrics, get_tracer
from repro.ws.deadline import Deadline, deadline_scope
from repro.workflow.model import Task, TaskGraph
from repro.workflow.monitor import EventBus, TaskEvent


@dataclass
class RunResult:
    """Outputs and timings of one workflow run."""

    graph_name: str
    outputs: dict[tuple[str, int], Any] = field(default_factory=dict)
    durations: dict[str, float] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0
    trace_id: str = ""  # set when tracing is enabled
    failed: dict[str, str] = field(default_factory=dict)
    skipped: list[str] = field(default_factory=list)

    def output(self, task: str | Task, index: int = 0) -> Any:
        """Value produced at (task, output index)."""
        name = task if isinstance(task, str) else task.name
        key = (name, index)
        if key not in self.outputs:
            raise WorkflowError(
                f"run produced no output {index} for task {name!r}")
        return self.outputs[key]

    @property
    def degraded(self) -> bool:
        """True when the run completed without some of its tasks."""
        return bool(self.failed or self.skipped)

    @property
    def wall_seconds(self) -> float:
        return self.finished_at - self.started_at


class TaskMiddleware:
    """One engine-level chain step wrapping a task's attempt runner.

    :meth:`wrap` receives the task and the runner below it (ultimately
    ``task.tool.run``) and returns a runner with the same
    ``(inputs, parameters) -> outputs`` signature.  The composed runner
    is handed to the retry policy, so every *attempt* passes through
    the whole middleware stack independently.
    """

    name = "middleware"

    def wrap(self, task: Task, runner):
        """Return a (possibly wrapped) attempt runner for *task*."""
        return runner


class ChaosMiddleware(TaskMiddleware):
    """Perturb every task attempt through a chaos controller."""

    name = "chaos"

    def __init__(self, controller):
        self.controller = controller

    def wrap(self, task: Task, runner):
        def perturbed(ins, params):
            self.controller.perturb(f"task:{task.name}")
            return runner(ins, params)
        return perturbed


class WorkflowEngine:
    """Threaded dataflow enactor."""

    def __init__(self, max_workers: int = 8,
                 events: EventBus | None = None,
                 retry_policy=None, allow_partial: bool = False,
                 clock: Clock = SYSTEM_CLOCK,
                 middleware: list[TaskMiddleware] | None = None):
        self.max_workers = max_workers
        self.events = events or EventBus()
        self.retry_policy = retry_policy
        self.allow_partial = allow_partial
        self.clock = clock
        # None = derive per run from the armed chaos controller;
        # an explicit list (even []) replaces that default
        self.middleware = middleware

    def run(self, graph: TaskGraph,
            inputs: dict[tuple[str, int], Any] | None = None,
            deadline_s: float | None = None) -> RunResult:
        """Execute *graph*; *inputs* optionally seeds (task, input-index)
        values for group execution; *deadline_s* bounds the whole run
        (tightened by any ambient deadline already in scope)."""
        # one root span per run; every task span (and, transitively, every
        # SOAP client/transport/server span a service-backed task incurs)
        # shares its trace id, giving the §3 monitor one coherent tree
        with get_tracer().span(f"workflow:{graph.name}") as wf_span:
            wf_span.set_attribute("tasks", len(graph.tasks))
            # how many document bytes the data-plane fast path kept off
            # the wire during this run (by-reference re-sends)
            saved_counter = get_metrics().counter("ws.payload.bytes_saved")
            saved_before = saved_counter.value
            try:
                with deadline_scope(deadline_s, self.clock) as deadline:
                    return self._run(graph, inputs, wf_span, deadline)
            finally:
                saved = saved_counter.value - saved_before
                wf_span.set_attribute("payload_bytes_saved", int(saved))
                if saved > 0:
                    get_metrics().counter(
                        "workflow.run.bytes_saved",
                        graph=graph.name).inc(saved)

    def _run(self, graph: TaskGraph,
             inputs: dict[tuple[str, int], Any] | None,
             wf_span: Any, deadline: Deadline | None) -> RunResult:
        graph.validate()
        if deadline is not None:
            deadline.check(f"workflow {graph.name!r}")
        order = graph.topological_order()
        assert order is not None
        result = RunResult(graph_name=graph.name,
                           trace_id=wf_span.trace_id)
        result.started_at = time.time()
        self.events.emit(TaskEvent("workflow", graph.name, "started"))

        # dependency bookkeeping
        pending: dict[str, set[int]] = {}
        values: dict[tuple[str, int], Any] = {}
        seeded = dict(inputs or {})
        for task in graph.tasks:
            connected = {c.target_index for c in graph.incoming(task.name)}
            needed = set(connected)
            for idx in range(task.num_inputs):
                if (task.name, idx) in seeded:
                    needed.discard(idx)
            pending[task.name] = needed

        lock = threading.Lock()
        errors: list[Exception] = []
        done = threading.Event()
        executor = ThreadPoolExecutor(max_workers=self.max_workers)
        middleware = self.middleware
        if middleware is None:
            controller = chaos.active()
            middleware = [ChaosMiddleware(controller)] \
                if controller is not None else []

        def gather_inputs(task: Task) -> list[Any]:
            row: list[Any] = [None] * task.num_inputs
            for idx in range(task.num_inputs):
                key = (task.name, idx)
                if key in seeded:
                    row[idx] = seeded[key]
                elif key in values:
                    row[idx] = values[key]
            return row

        def settled_count() -> int:
            # caller holds the lock
            return (len(result.durations) + len(result.failed)
                    + len(result.skipped))

        def skip_downstream(name: str) -> list[str]:
            """Mark every task depending (transitively) on *name* as
            skipped; such tasks are waiting on an input that will never
            arrive, so none of them can have been scheduled.  Caller
            holds the lock; returns the newly skipped names."""
            newly: list[str] = []
            frontier = [name]
            dead = set(result.failed) | set(result.skipped)
            while frontier:
                for cable in graph.outgoing(frontier.pop()):
                    target = cable.target
                    if target in dead or target in result.durations:
                        continue
                    dead.add(target)
                    result.skipped.append(target)
                    newly.append(target)
                    frontier.append(target)
            return newly

        def fail_task(task: Task, exc: Exception) -> None:
            self.events.emit(TaskEvent("task", task.name, "failed",
                                       detail=repr(exc)))
            get_metrics().counter("workflow.task.failures",
                                  graph=graph.name).inc()
            # an expired budget is never degradable: the user asked for
            # an answer in bounded time and must learn — fast — that
            # there isn't one
            fatal = not self.allow_partial or \
                isinstance(exc, DeadlineExceeded)
            skipped_now: list[str] = []
            with lock:
                if fatal:
                    if isinstance(exc, DeadlineExceeded):
                        errors.append(exc)
                    else:
                        errors.append(EnactmentError(task.name, exc))
                    done.set()
                    return
                result.failed[task.name] = repr(exc)
                skipped_now = skip_downstream(task.name)
                finished = settled_count() == len(graph.tasks)
            for name in skipped_now:
                self.events.emit(TaskEvent(
                    "task", name, "skipped",
                    detail=f"upstream task {task.name!r} failed"))
                get_metrics().counter("workflow.task.skipped",
                                      graph=graph.name).inc()
            if finished:
                done.set()

        def execute(task: Task) -> None:
            self.events.emit(TaskEvent("task", task.name, "started"))
            start = time.perf_counter()
            tracer = get_tracer()
            try:
                # parent the task span on the run's root span explicitly:
                # pool threads don't inherit the runner's contextvars —
                # the same goes for the deadline scope reinstalled below
                with tracer.span(f"task:{task.name}",
                                 parent=wf_span) as task_span, \
                        deadline_scope(deadline):
                    task_span.set_attribute("tool", task.tool.name)
                    if deadline is not None:
                        deadline.check(f"task {task.name!r}")
                    ins = gather_inputs(task)
                    params = task.effective_parameters()
                    runner = None
                    if middleware:
                        def base(i, p, _t=task):
                            return _t.tool.run(i, p)
                        runner = base
                        for step in reversed(middleware):
                            runner = step.wrap(task, runner)
                    if self.retry_policy is not None:
                        outs = self.retry_policy.run_task(
                            task, ins, params, runner=runner)
                    elif runner is not None:
                        outs = runner(ins, params)
                    else:
                        outs = task.tool.run(ins, params)
            except Exception as exc:
                fail_task(task, exc)
                return
            duration = time.perf_counter() - start
            get_metrics().histogram("workflow.task.seconds",
                                    task=task.name).observe(duration)
            self.events.emit(TaskEvent("task", task.name, "finished",
                                       detail=f"{duration:.4f}s"))
            ready: list[Task] = []
            with lock:
                result.durations[task.name] = duration
                for idx, value in enumerate(outs):
                    result.outputs[(task.name, idx)] = value
                for cable in graph.outgoing(task.name):
                    values[(cable.target, cable.target_index)] = \
                        outs[cable.source_index]
                    waiting = pending[cable.target]
                    waiting.discard(cable.target_index)
                    if not waiting:
                        waiting.add(-1)  # mark scheduled
                        ready.append(graph.task(cable.target))
                finished = settled_count() == len(graph.tasks)
            for nxt in ready:
                # a fatal failure elsewhere has already settled the run:
                # stop scheduling new work instead of racing the shutdown
                if done.is_set():
                    break
                executor.submit(execute, nxt)
            if finished:
                done.set()

        # kick off every task whose inputs are already satisfied
        initial = [graph.task(name) for name in order
                   if not pending[name]]
        for task in initial:
            pending[task.name].add(-1)
        if not initial and graph.tasks:
            raise WorkflowError(
                f"graph {graph.name!r} has no runnable source task")
        if not graph.tasks:
            result.finished_at = time.time()
            return result
        for task in initial:
            executor.submit(execute, task)
        done.wait()
        executor.shutdown(wait=True)
        result.finished_at = time.time()
        metrics = get_metrics()
        metrics.counter("workflow.runs", graph=graph.name).inc()
        metrics.histogram("workflow.run.seconds",
                          graph=graph.name).observe(result.wall_seconds)
        if errors:
            self.events.emit(TaskEvent("workflow", graph.name, "failed",
                                       detail=str(errors[0])))
            raise errors[0]
        if result.degraded:
            wf_span.set_attribute("degraded", True)
            metrics.counter("workflow.degraded_runs",
                            graph=graph.name).inc()
            self.events.emit(TaskEvent(
                "workflow", graph.name, "degraded",
                detail=f"{len(result.failed)} failed, "
                       f"{len(result.skipped)} skipped"))
        self.events.emit(TaskEvent("workflow", graph.name, "finished"))
        return result
