"""The workflow enactor.

Executes a :class:`~repro.workflow.model.TaskGraph` as a dataflow: a task
fires once every connected input has a value; independent tasks run
concurrently on a thread pool (the paper's "once a network has been created
it can be executed").  Execution emits :mod:`~repro.workflow.monitor` events
so the §3 "service monitoring" requirement — watching jobs progress on
remote resources — holds for local and service-backed tasks alike.

Fault tolerance (§3 category 2) hooks in per task: a
:class:`~repro.workflow.faults.RetryPolicy` retries transient failures and
*migrates* the task to alternate endpoints when its tool publishes
replicas (see :mod:`repro.workflow.faults`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EnactmentError, WorkflowError
from repro.obs import get_metrics, get_tracer
from repro.workflow.model import Task, TaskGraph
from repro.workflow.monitor import EventBus, TaskEvent


@dataclass
class RunResult:
    """Outputs and timings of one workflow run."""

    graph_name: str
    outputs: dict[tuple[str, int], Any] = field(default_factory=dict)
    durations: dict[str, float] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0
    trace_id: str = ""  # set when tracing is enabled

    def output(self, task: str | Task, index: int = 0) -> Any:
        """Value produced at (task, output index)."""
        name = task if isinstance(task, str) else task.name
        key = (name, index)
        if key not in self.outputs:
            raise WorkflowError(
                f"run produced no output {index} for task {name!r}")
        return self.outputs[key]

    @property
    def wall_seconds(self) -> float:
        return self.finished_at - self.started_at


class WorkflowEngine:
    """Threaded dataflow enactor."""

    def __init__(self, max_workers: int = 8,
                 events: EventBus | None = None,
                 retry_policy=None):
        self.max_workers = max_workers
        self.events = events or EventBus()
        self.retry_policy = retry_policy

    def run(self, graph: TaskGraph,
            inputs: dict[tuple[str, int], Any] | None = None) -> RunResult:
        """Execute *graph*; *inputs* optionally seeds (task, input-index)
        values for group execution."""
        # one root span per run; every task span (and, transitively, every
        # SOAP client/transport/server span a service-backed task incurs)
        # shares its trace id, giving the §3 monitor one coherent tree
        with get_tracer().span(f"workflow:{graph.name}") as wf_span:
            wf_span.set_attribute("tasks", len(graph.tasks))
            return self._run(graph, inputs, wf_span)

    def _run(self, graph: TaskGraph,
             inputs: dict[tuple[str, int], Any] | None,
             wf_span: Any) -> RunResult:
        graph.validate()
        order = graph.topological_order()
        assert order is not None
        result = RunResult(graph_name=graph.name,
                           trace_id=wf_span.trace_id)
        result.started_at = time.time()
        self.events.emit(TaskEvent("workflow", graph.name, "started"))

        # dependency bookkeeping
        pending: dict[str, set[int]] = {}
        values: dict[tuple[str, int], Any] = {}
        seeded = dict(inputs or {})
        for task in graph.tasks:
            connected = {c.target_index for c in graph.incoming(task.name)}
            needed = set(connected)
            for idx in range(task.num_inputs):
                if (task.name, idx) in seeded:
                    needed.discard(idx)
            pending[task.name] = needed

        lock = threading.Lock()
        errors: list[EnactmentError] = []
        done = threading.Event()
        executor = ThreadPoolExecutor(max_workers=self.max_workers)

        def gather_inputs(task: Task) -> list[Any]:
            row: list[Any] = [None] * task.num_inputs
            for idx in range(task.num_inputs):
                key = (task.name, idx)
                if key in seeded:
                    row[idx] = seeded[key]
                elif key in values:
                    row[idx] = values[key]
            return row

        def execute(task: Task) -> None:
            self.events.emit(TaskEvent("task", task.name, "started"))
            start = time.perf_counter()
            tracer = get_tracer()
            try:
                # parent the task span on the run's root span explicitly:
                # pool threads don't inherit the runner's contextvars
                with tracer.span(f"task:{task.name}",
                                 parent=wf_span) as task_span:
                    task_span.set_attribute("tool", task.tool.name)
                    ins = gather_inputs(task)
                    params = task.effective_parameters()
                    if self.retry_policy is not None:
                        outs = self.retry_policy.run_task(
                            task, ins, params)
                    else:
                        outs = task.tool.run(ins, params)
            except Exception as exc:
                self.events.emit(TaskEvent("task", task.name, "failed",
                                           detail=repr(exc)))
                get_metrics().counter("workflow.task.failures",
                                      graph=graph.name).inc()
                with lock:
                    errors.append(EnactmentError(task.name, exc))
                done.set()
                return
            duration = time.perf_counter() - start
            get_metrics().histogram("workflow.task.seconds",
                                    task=task.name).observe(duration)
            self.events.emit(TaskEvent("task", task.name, "finished",
                                       detail=f"{duration:.4f}s"))
            ready: list[Task] = []
            with lock:
                result.durations[task.name] = duration
                for idx, value in enumerate(outs):
                    result.outputs[(task.name, idx)] = value
                for cable in graph.outgoing(task.name):
                    values[(cable.target, cable.target_index)] = \
                        outs[cable.source_index]
                    waiting = pending[cable.target]
                    waiting.discard(cable.target_index)
                    if not waiting:
                        waiting.add(-1)  # mark scheduled
                        ready.append(graph.task(cable.target))
            for nxt in ready:
                executor.submit(execute, nxt)
            with lock:
                finished = all(
                    t.name in result.durations for t in graph.tasks)
            if finished:
                done.set()

        # kick off every task whose inputs are already satisfied
        initial = [graph.task(name) for name in order
                   if not pending[name]]
        for task in initial:
            pending[task.name].add(-1)
        if not initial and graph.tasks:
            raise WorkflowError(
                f"graph {graph.name!r} has no runnable source task")
        if not graph.tasks:
            result.finished_at = time.time()
            return result
        for task in initial:
            executor.submit(execute, task)
        done.wait()
        executor.shutdown(wait=True)
        result.finished_at = time.time()
        metrics = get_metrics()
        metrics.counter("workflow.runs", graph=graph.name).inc()
        metrics.histogram("workflow.run.seconds",
                          graph=graph.name).observe(result.wall_seconds)
        if errors:
            self.events.emit(TaskEvent("workflow", graph.name, "failed",
                                       detail=str(errors[0])))
            raise errors[0]
        self.events.emit(TaskEvent("workflow", graph.name, "finished"))
        return result
