"""The chaos-resume drill: SIGKILL a grid mid-run, resume, prove
exactly-once.

This is the PR's acceptance harness, run as a real subprocess drill:

1. launch ``repro experiment`` under a seeded chaos plan (replica-0
   hard-fails every send, everything is delayed so the kill window is
   wide);
2. wait until the checkpoint store holds a few fsync'd records, then
   ``SIGKILL`` the process — no atexit, no flush, the worst case;
3. resume with the identical command line and let it finish;
4. assert no checkpointed cell was re-executed (the store holds exactly
   one complete record per cell), and that the store contents and the
   rendered report are byte-identical to an uninterrupted control run.

When ``EXPERIMENT_ARTIFACT_DIR`` is set (the CI job sets it), the final
store and report are copied there for artifact upload.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiment.expand import expand
from repro.experiment.spec import load_json
from repro.experiment.store import ResultStore

SRC = Path(__file__).resolve().parents[2] / "src"

#: Seeded fault plan: replica-0 is dead on arrival (every dispatch to
#: it migrates), and every surviving call is slowed so the run is long
#: enough to kill mid-flight.
CHAOS_SPEC = "replica-0:error=1;*:delay=30ms"

DRILL_SPEC = {
    "name": "resume-drill",
    "folds": 3,
    "seeds": [1, 2, 3, 4],
    "datasets": [
        {"name": "weather", "source": "synthetic:weather_nominal"},
    ],
    "classifiers": ["ZeroR", "OneR", "NaiveBayes"],
}


def drill_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["PYTHONHASHSEED"] = "0"
    env.pop("REPRO_CHAOS", None)  # the drill passes --chaos explicitly
    return env


def experiment_cmd(spec_path, store_path, report_path=None, chaos=None):
    cmd = [sys.executable, "-m", "repro", "experiment", str(spec_path),
           "--store", str(store_path), "--replicas", "2"]
    if chaos:
        cmd += ["--chaos", chaos, "--seed", "7"]
    if report_path is not None:
        cmd += ["--report-out", str(report_path)]
    return cmd


def complete_records(store_path):
    """Cells with a complete (parseable) record in the store right now."""
    if not store_path.exists():
        return set()
    cells = set()
    for line in store_path.read_text().splitlines():
        try:
            cells.add(json.loads(line)["cell"])
        except (ValueError, KeyError):
            continue  # torn or in-flight line
    return cells


def wait_for_records(store_path, n, proc, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        found = complete_records(store_path)
        if len(found) >= n:
            return found
        if proc.poll() is not None:
            raise AssertionError(
                f"drill process exited early (rc={proc.returncode}) "
                f"with only {len(found)} record(s):\n"
                f"{proc.stdout.read()}")
        time.sleep(0.01)
    raise AssertionError(f"store never reached {n} records")


def export_artifacts(*paths):
    artifact_dir = os.environ.get("EXPERIMENT_ARTIFACT_DIR")
    if not artifact_dir:
        return
    out = Path(artifact_dir)
    out.mkdir(parents=True, exist_ok=True)
    for path in paths:
        shutil.copy2(path, out / path.name)


@pytest.fixture
def drill_dir(tmp_path):
    spec_path = tmp_path / "drill.json"
    spec_path.write_text(json.dumps(DRILL_SPEC))
    return tmp_path, spec_path


class TestChaosResumeDrill:
    def test_sigkill_mid_grid_resumes_exactly_once(self, drill_dir):
        tmp_path, spec_path = drill_dir
        store_path = tmp_path / "drill.results.jsonl"
        report_path = tmp_path / "drill.report.md"
        cells = expand(load_json(spec_path.read_text()))

        # --- control: the same grid, uninterrupted, fresh store ------
        control_store = tmp_path / "control.results.jsonl"
        control_report = tmp_path / "control.report.md"
        control = subprocess.run(
            experiment_cmd(spec_path, control_store, control_report,
                           chaos=CHAOS_SPEC),
            env=drill_env(), capture_output=True, text=True, timeout=120)
        assert control.returncode == 0, control.stderr

        # --- phase 1: run under chaos, SIGKILL mid-grid --------------
        proc = subprocess.Popen(
            experiment_cmd(spec_path, store_path, report_path,
                           chaos=CHAOS_SPEC),
            env=drill_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        try:
            wait_for_records(store_path, 3, proc)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL, \
            "drill finished before the kill landed — widen the delay"

        checkpointed = complete_records(store_path)
        assert checkpointed, "kill landed before any checkpoint"
        assert len(checkpointed) < len(cells), \
            "kill landed after the grid finished — widen the delay"

        # --- phase 2: resume with the identical command --------------
        resume = subprocess.run(
            experiment_cmd(spec_path, store_path, report_path,
                           chaos=CHAOS_SPEC),
            env=drill_env(), capture_output=True, text=True, timeout=120)
        assert resume.returncode == 0, resume.stderr

        # the resume skipped every checkpointed cell and ran the rest
        summary = [line for line in resume.stdout.splitlines()
                   if line.startswith("cells:")][0]
        assert f"{len(checkpointed)} resumed" in summary
        assert f"{len(cells) - len(checkpointed)} executed" in summary

        # --- the exactly-once ledger ---------------------------------
        store = ResultStore(store_path)
        counts = store.raw_record_counts()
        assert counts == {c.cell_id: 1 for c in cells}, \
            "a cell ran twice (or never) across kill + resume"

        # --- byte-identical to the uninterrupted control -------------
        assert store.replay() == ResultStore(control_store).replay()
        assert report_path.read_bytes() == control_report.read_bytes()

        export_artifacts(store_path, report_path)

    def test_double_kill_still_converges(self, drill_dir):
        """Two kills at different depths: resume is idempotent, not a
        one-shot recovery trick."""
        tmp_path, spec_path = drill_dir
        store_path = tmp_path / "drill.results.jsonl"
        cells = expand(load_json(spec_path.read_text()))

        for target in (2, 6):
            proc = subprocess.Popen(
                experiment_cmd(spec_path, store_path, chaos=CHAOS_SPEC),
                env=drill_env(), stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True)
            try:
                wait_for_records(store_path, target, proc)
            finally:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)

        final = subprocess.run(
            experiment_cmd(spec_path, store_path, chaos=CHAOS_SPEC),
            env=drill_env(), capture_output=True, text=True, timeout=120)
        assert final.returncode == 0, final.stderr
        counts = ResultStore(store_path).raw_record_counts()
        assert counts == {c.cell_id: 1 for c in cells}
