"""Results-store corruption tolerance: the replay contract.

A SIGKILL mid-append leaves a torn final line; a disk hiccup or editor
accident leaves garbage; a cell re-run after a torn record leaves a
duplicate.  Replay must tolerate all three — skip-and-warn, with
last-write-wins for duplicates — and account for every drop in the
``repro.experiment.store.dropped`` counter so nothing is silently
discarded.
"""

import json

import pytest

from repro.experiment.store import ResultStore, StoreError
from repro.obs import get_metrics


def record(cell, value):
    return {"cell": cell, "params": {"dataset": "d"},
            "result": {"status": "ok", "accuracy": value}}


def write_store(path, records):
    with ResultStore(path) as store:
        for r in records:
            store.append(r)
    return ResultStore(path)


def dropped(reason):
    return get_metrics().counter("repro.experiment.store.dropped",
                                 reason=reason).value


class TestAppend:
    def test_round_trip(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl",
                            [record("a", 0.5), record("b", 0.75)])
        replayed = store.replay()
        assert set(replayed) == {"a", "b"}
        assert replayed["b"]["result"]["accuracy"] == 0.75

    def test_each_record_is_one_line(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl",
                            [record("a", 0.5), record("b", 0.6)])
        lines = store.path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["cell"] in ("a", "b")
                   for line in lines)

    def test_record_without_cell_id_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(tmp_path / "r.jsonl").append({"result": {}})

    def test_missing_file_replays_empty(self, tmp_path):
        assert ResultStore(tmp_path / "nope.jsonl").replay() == {}


class TestTruncatedFinalRecord:
    def test_torn_final_line_is_dropped(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl",
                            [record("a", 0.5), record("b", 0.6)])
        text = store.path.read_text()
        # tear the last record mid-JSON, as a kill mid-write would
        store.path.write_text(text[:-20])
        replayed = store.replay()
        assert set(replayed) == {"a"}
        assert dropped("truncated") == 1
        assert dropped("garbage") == 0

    def test_intact_records_survive_the_tear(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl",
                            [record(f"c{i}", i / 10) for i in range(5)])
        store.path.write_text(store.path.read_text()[:-7])
        replayed = store.replay()
        assert set(replayed) == {"c0", "c1", "c2", "c3"}


class TestGarbageLine:
    def test_garbage_line_mid_file_is_skipped(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl", [record("a", 0.5)])
        with open(store.path, "a") as fh:
            fh.write("!!! not json !!!\n")
        with ResultStore(store.path) as again:
            again.append(record("b", 0.6))
        replayed = ResultStore(store.path).replay()
        assert set(replayed) == {"a", "b"}
        assert dropped("garbage") == 1

    def test_json_line_without_cell_is_garbage(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl", [record("a", 0.5)])
        with open(store.path, "a") as fh:
            fh.write(json.dumps({"result": "lost"}) + "\n")
            fh.write(json.dumps(record("b", 0.9)) + "\n")
        replayed = ResultStore(store.path).replay()
        assert set(replayed) == {"a", "b"}
        assert dropped("garbage") == 1

    def test_blank_lines_are_not_counted_as_drops(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl", [record("a", 0.5)])
        with open(store.path, "a") as fh:
            fh.write("\n\n")
        assert set(ResultStore(store.path).replay()) == {"a"}
        assert dropped("garbage") == 0
        assert dropped("truncated") == 0


class TestDuplicateRecords:
    def test_last_write_wins(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl",
                            [record("a", 0.5), record("a", 0.9)])
        replayed = store.replay()
        assert replayed["a"]["result"]["accuracy"] == 0.9
        assert dropped("duplicate") == 1

    def test_raw_record_counts_expose_duplicates(self, tmp_path):
        store = write_store(
            tmp_path / "r.jsonl",
            [record("a", 0.5), record("b", 0.6), record("a", 0.7)])
        assert store.raw_record_counts() == {"a": 2, "b": 1}


class TestMetrics:
    def test_replay_counts_survivors(self, tmp_path):
        store = write_store(tmp_path / "r.jsonl",
                            [record("a", 0.5), record("b", 0.6)])
        store.replay()
        assert get_metrics().counter(
            "repro.experiment.store.replayed").value == 2

    def test_appends_counted(self, tmp_path):
        write_store(tmp_path / "r.jsonl", [record("a", 0.5)])
        assert get_metrics().counter(
            "repro.experiment.store.appends").value == 1
