"""Runner contracts: resume skips, checkpoints are chunk-granular,
endpoint death loses no completed cells, app faults complete as error
records, and admission sheds are absorbed as backpressure."""

import json

import pytest

from repro.errors import TransportError, WorkflowError
from repro.experiment.expand import expand
from repro.experiment.runner import (load_dataset, make_replicas,
                                     run_grid)
from repro.experiment.spec import SpecError, load_json
from repro.experiment.store import ResultStore
from repro.obs import get_metrics
from repro.services.classifier_service import ClassifierService
from repro.ws import wsdl
from repro.ws.admission import AdmissionController
from repro.ws.client import ServiceProxy
from repro.ws.container import ServiceContainer
from repro.ws.service import ServiceDefinition
from repro.ws.transport import InProcessTransport


def small_spec(classifiers=("ZeroR", "OneR"), seeds=(1, 2)):
    return load_json(json.dumps({
        "name": "runner-test", "folds": 3, "seeds": list(seeds),
        "datasets": [{"name": "weather",
                      "source": "synthetic:weather_nominal"}],
        "classifiers": list(classifiers),
    }))


class DiesAfter:
    """Transport wrapper: healthy for *n* sends, then a dead endpoint."""

    def __init__(self, inner, n):
        self.inner = inner
        self.remaining = n

    def send(self, request):
        if self.remaining <= 0:
            raise TransportError("endpoint died mid-scatter")
        self.remaining -= 1
        return self.inner.send(request)

    def close(self):
        self.inner.close()


def classifier_proxies(n, dies_after=None):
    definition = ServiceDefinition.from_class(ClassifierService,
                                              "Classifier")
    document = wsdl.generate(definition, "inproc://Classifier")
    proxies = []
    for i in range(n):
        container = ServiceContainer(f"test-replica-{i}")
        container.deploy(ClassifierService, "Classifier")
        transport = InProcessTransport(container)
        if dies_after is not None and dies_after[i] is not None:
            transport = DiesAfter(transport, dies_after[i])
        proxies.append(ServiceProxy.from_wsdl_text(document, transport))
    return proxies


class TestRunAndResume:
    def test_full_run_then_noop_resume(self, tmp_path):
        spec = small_spec()
        store = tmp_path / "r.jsonl"
        first = run_grid(spec, store, replicas=2)
        assert first.total == 4
        assert sorted(first.executed) == \
            sorted(c.cell_id for c in expand(spec))
        again = run_grid(spec, store, replicas=2)
        assert again.executed == []
        assert sorted(again.skipped) == sorted(first.executed)
        assert again.results.keys() == first.results.keys()

    def test_partial_store_resumes_the_remainder(self, tmp_path):
        spec = small_spec()
        cells = expand(spec)
        store_path = tmp_path / "r.jsonl"
        # checkpoint the first two cells by hand, as a killed run would
        full = run_grid(spec, tmp_path / "full.jsonl", replicas=1)
        with ResultStore(store_path) as store:
            for cell in cells[:2]:
                store.append(full.results[cell.cell_id])
        resumed = run_grid(spec, store_path, replicas=2)
        assert sorted(resumed.skipped) == \
            sorted(c.cell_id for c in cells[:2])
        assert sorted(resumed.executed) == \
            sorted(c.cell_id for c in cells[2:])
        # the merged results agree with the uninterrupted run exactly
        assert resumed.results == full.results
        assert get_metrics().counter(
            "repro.experiment.cells.resumed").value == 2

    def test_results_identical_across_replica_counts(self, tmp_path):
        spec = small_spec(classifiers=("ZeroR", "NaiveBayes", "OneR"))
        one = run_grid(spec, tmp_path / "one.jsonl", replicas=1)
        three = run_grid(spec, tmp_path / "three.jsonl", replicas=3)
        assert one.results == three.results


class TestChunkGranularCheckpoints:
    def test_endpoint_death_mid_scatter_loses_no_completed_cells(
            self, tmp_path):
        """The PR's scatter fix: cells checkpointed by the dying
        replica before its death must survive — only in-flight work
        migrates, nothing completed is re-run or lost."""
        spec = small_spec(classifiers=("ZeroR", "OneR", "NaiveBayes"),
                          seeds=(1, 2, 3))
        cells = expand(spec)
        # replica 1 dies after 3 successful sends; replica 0 is healthy
        proxies = classifier_proxies(2, dies_after=[None, 3])
        store_path = tmp_path / "r.jsonl"
        report = run_grid(spec, store_path, proxies=proxies)
        # every cell completed exactly once despite the mid-run death
        assert sorted(report.executed) == \
            sorted(c.cell_id for c in cells)
        counts = ResultStore(store_path).raw_record_counts()
        assert counts == {c.cell_id: 1 for c in cells}
        # and the store replays to a complete grid
        assert set(ResultStore(store_path).replay()) == \
            {c.cell_id for c in cells}

    def test_store_grows_during_the_run_not_after(self, tmp_path):
        """Checkpoints land per chunk: with cells_per_dispatch=1 the
        store must hold a record for every cell the moment the run
        returns, written incrementally (one fsync'd line each)."""
        spec = small_spec()
        store_path = tmp_path / "r.jsonl"
        report = run_grid(spec, store_path, replicas=2)
        lines = store_path.read_text().splitlines()
        assert len(lines) == report.total
        assert all(json.loads(line)["cell"] for line in lines)


class TestApplicationFaults:
    def test_bad_option_completes_as_error_record(self, tmp_path):
        spec = load_json(json.dumps({
            "name": "faulty", "folds": 3, "seeds": [1],
            "datasets": [{"name": "weather",
                          "source": "synthetic:weather_nominal"}],
            "classifiers": ["ZeroR",
                            {"name": "J48",
                             "options": {"no_such_option": [1]}}],
        }))
        store_path = tmp_path / "r.jsonl"
        report = run_grid(spec, store_path, replicas=2)
        assert len(report.failed) == 1
        [(cell_id, message)] = report.failed.items()
        assert "no_such_option" in message
        # the error is checkpointed: a resume does not retry it
        again = run_grid(spec, store_path, replicas=2)
        assert again.executed == []
        assert cell_id in again.failed

    def test_all_replicas_dead_raises_and_keeps_progress(self, tmp_path):
        spec = small_spec(seeds=(1, 2, 3))
        proxies = classifier_proxies(2, dies_after=[2, 2])
        store_path = tmp_path / "r.jsonl"
        with pytest.raises(WorkflowError):
            run_grid(spec, store_path, proxies=proxies)
        # the four completed cells survived for the next resume
        completed = set(ResultStore(store_path).replay())
        assert len(completed) == 4
        resumed = run_grid(spec, store_path, replicas=1)
        assert len(resumed.executed) == spec_total(spec) - 4
        assert sorted(resumed.skipped) == sorted(completed)


def spec_total(spec):
    return len(expand(spec))


class TestAdmissionBackpressure:
    def test_sheds_are_absorbed_not_lost(self, tmp_path):
        """PR-6 admission on every replica: a tight concurrency gate
        sheds chunks, the scatter plane backs off and re-queues, and
        the grid still completes every cell exactly once."""
        admission = AdmissionController(max_concurrent=1, max_queue=0,
                                        retry_hint_s=0.01)
        proxies = make_replicas(3, admission=admission)
        spec = small_spec(classifiers=("ZeroR", "OneR"), seeds=(1, 2))
        report = run_grid(spec, tmp_path / "r.jsonl", proxies=proxies)
        assert len(report.executed) == report.total
        counts = ResultStore(tmp_path / "r.jsonl").raw_record_counts()
        assert set(counts.values()) == {1}


class TestLoadDataset:
    def test_synthetic_with_arguments(self):
        ds = load_dataset("synthetic:numeric_two_class?n=40&seed=3")
        assert ds.num_instances == 40

    def test_unknown_generator(self):
        with pytest.raises(SpecError):
            load_dataset("synthetic:not_a_generator")

    def test_bad_argument_syntax(self):
        with pytest.raises(SpecError):
            load_dataset("synthetic:weather_nominal?oops")

    def test_file_source(self, tmp_path, weather):
        from repro.data import arff
        path = tmp_path / "weather.arff"
        path.write_text(arff.dumps(weather))
        ds = load_dataset(str(path), class_attribute="play")
        assert ds.num_instances == weather.num_instances
        assert ds.class_attribute.name == "play"
