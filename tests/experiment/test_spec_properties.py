"""Property tests: spec expansion is deterministic and format-neutral.

Cell IDs are content digests of a cell's parameters, so they must be

* *deterministic* — two expansions of one spec agree exactly;
* *unique* — a grid never contains two cells with one ID;
* *stable under key reordering* — a JSON spec re-serialised with its
  object keys in any order expands to the same IDs;
* *format-neutral* — the same grid written as JSON and as XML expands
  to identical IDs, so a FlexDM-style XML spec and its JSON port share
  one checkpoint store.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiment.expand import expand
from repro.experiment.spec import (dumps_json, dumps_xml, load_json,
                                   load_xml)

# alphabetic only: XML attributes are untyped, so a string that *looks*
# numeric ("2") legitimately coerces to the number on the XML path
names = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
option_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    names,
    st.floats(min_value=0.001, max_value=100.0,
              allow_nan=False, allow_infinity=False),
)


@st.composite
def specs(draw):
    """A random spec as its JSON document (dict) form."""
    n_datasets = draw(st.integers(min_value=1, max_value=3))
    datasets = [{"name": f"ds{i}-{draw(names)}",
                 "source": f"synthetic:gen_{draw(names)}"}
                for i in range(n_datasets)]
    n_classifiers = draw(st.integers(min_value=1, max_value=3))
    classifiers = []
    for i in range(n_classifiers):
        options = draw(st.dictionaries(
            names,
            st.lists(option_values, min_size=1, max_size=3,
                     unique_by=lambda v: (type(v).__name__, v)),
            max_size=3))
        classifiers.append({"name": f"clf{i}-{draw(names)}",
                            "options": options})
    seeds = draw(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                          min_size=1, max_size=4, unique=True))
    return {
        "name": draw(names),
        "folds": draw(st.integers(min_value=2, max_value=20)),
        "seeds": seeds,
        "datasets": datasets,
        "classifiers": classifiers,
    }


def ids_of(spec):
    return [cell.cell_id for cell in expand(spec)]


@settings(max_examples=60, deadline=None)
@given(specs())
def test_expansion_is_deterministic(doc):
    spec = load_json(json.dumps(doc))
    first, second = expand(spec), expand(spec)
    assert [c.cell_id for c in first] == [c.cell_id for c in second]
    assert first == second


@settings(max_examples=60, deadline=None)
@given(specs())
def test_cell_ids_are_unique(doc):
    ids = ids_of(load_json(json.dumps(doc)))
    assert len(set(ids)) == len(ids)


@settings(max_examples=60, deadline=None)
@given(specs())
def test_ids_stable_under_json_key_reordering(doc):
    plain = load_json(json.dumps(doc))
    # re-serialise with every object's keys sorted (and the reverse):
    # same document, different key order on disk
    sorted_keys = load_json(json.dumps(doc, sort_keys=True))
    reversed_doc = {k: doc[k] for k in reversed(list(doc))}
    reversed_keys = load_json(json.dumps(reversed_doc))
    assert ids_of(plain) == ids_of(sorted_keys)
    assert set(ids_of(plain)) == set(ids_of(reversed_keys))


@settings(max_examples=60, deadline=None)
@given(specs())
def test_json_and_xml_specs_expand_to_identical_ids(doc):
    spec = load_json(json.dumps(doc))
    via_json = load_json(dumps_json(spec))
    via_xml = load_xml(dumps_xml(spec))
    assert ids_of(via_json) == ids_of(via_xml)
    assert ids_of(via_json) == ids_of(spec)


@settings(max_examples=30, deadline=None)
@given(specs())
def test_cell_params_round_trip_the_store_record(doc):
    """A cell reconstructed from its stored params digest matches —
    the store alone is enough to re-identify every cell."""
    import hashlib

    from repro.experiment.expand import CELL_ID_HEX, canonical_json
    for cell in expand(load_json(json.dumps(doc))):
        digest = hashlib.sha256(
            canonical_json(cell.params()).encode()).hexdigest()
        assert cell.cell_id == digest[:CELL_ID_HEX]
