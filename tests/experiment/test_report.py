"""Report layer: deterministic aggregation + the golden regression.

The golden test runs a fixed 2-dataset x 3-classifier grid end-to-end
and diffs the rendered markdown byte-for-byte against the committed
fixture ``golden_report.md`` — any drift in expansion order, fold
seeding, aggregation, or formatting shows up as a one-line diff here
before it silently changes every experimenter's numbers.
"""

import json
from pathlib import Path

from repro.experiment.report import (config_label, leaderboards,
                                     paired_comparisons, render_markdown)
from repro.experiment.runner import run_grid
from repro.experiment.spec import load_json

GOLDEN = Path(__file__).with_name("golden_report.md")

#: The fixed grid behind the golden fixture.  Regenerate with
#:   PYTHONPATH=src python -m tests.experiment.test_report
GOLDEN_SPEC = {
    "name": "golden",
    "folds": 3,
    "seeds": [1, 2],
    "datasets": [
        {"name": "weather", "source": "synthetic:weather_nominal"},
        {"name": "blobs",
         "source": "synthetic:numeric_two_class?n=60&seed=9"},
    ],
    "classifiers": ["ZeroR", "OneR", "NaiveBayes"],
}


def record(cell, dataset, config, seed, accuracy, status="ok"):
    params = {"dataset": dataset, "classifier": config, "seed": seed}
    result = {"status": status}
    if status == "ok":
        result["accuracy"] = accuracy
    else:
        result["error"] = "ServiceError: boom"
    return {"cell": cell, "params": params, "result": result}


class TestAggregation:
    def test_config_label_is_canonical(self):
        assert config_label({"classifier": "J48"}) == "J48"
        assert config_label({"classifier": "J48",
                             "options": {"b": 2, "a": 1}}) \
            == "J48(a=1,b=2)"

    def test_leaderboard_ranks_by_mean_then_name(self):
        records = {
            "1": record("1", "d", "A", 1, 0.8),
            "2": record("2", "d", "A", 2, 0.6),
            "3": record("3", "d", "B", 1, 0.7),
            "4": record("4", "d", "B", 2, 0.7),
            "5": record("5", "d", "C", 1, 0.7),
            "6": record("6", "d", "C", 2, 0.7),
        }
        [board] = leaderboards(records).values()
        assert [s.config for s in board] == ["A", "B", "C"]
        assert board[0].mean == 0.7 and board[1].mean == 0.7

    def test_error_records_count_as_errors_not_runs(self):
        records = {
            "1": record("1", "d", "A", 1, 0.8),
            "2": record("2", "d", "A", 2, None, status="error"),
        }
        [board] = leaderboards(records).values()
        assert board[0].n == 1 and board[0].errors == 1

    def test_paired_comparison_matches_by_seed(self):
        records = {
            "1": record("1", "d", "A", 1, 0.9),
            "2": record("2", "d", "A", 2, 0.5),
            "3": record("3", "d", "B", 1, 0.6),
            "4": record("4", "d", "B", 2, 0.5),
        }
        [(a, b, wins_a, wins_b, ties)] = paired_comparisons(records)["d"]
        assert (a, b) == ("A", "B")
        assert (wins_a, wins_b, ties) == (1, 0, 1)

    def test_failed_cells_listed_in_report(self):
        records = {"1": record("1", "d", "A", 1, None, status="error")}
        text = render_markdown("x", records)
        assert "## Failed cells" in text
        assert "ServiceError: boom" in text


class TestGoldenReport:
    def run_golden(self, tmp_path):
        spec = load_json(json.dumps(GOLDEN_SPEC))
        result = run_grid(spec, tmp_path / "golden.jsonl", replicas=2)
        assert not result.failed
        return render_markdown(spec.name, result.results)

    def test_report_matches_the_committed_fixture(self, tmp_path):
        rendered = self.run_golden(tmp_path)
        assert GOLDEN.exists(), \
            "golden_report.md missing — regenerate (see module docstring)"
        assert rendered == GOLDEN.read_text()

    def test_rendering_is_a_pure_function_of_records(self, tmp_path):
        spec = load_json(json.dumps(GOLDEN_SPEC))
        result = run_grid(spec, tmp_path / "g.jsonl", replicas=1)
        once = render_markdown(spec.name, result.results)
        again = render_markdown(spec.name, result.results)
        assert once == again


def _regenerate():
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        text = TestGoldenReport().run_golden(Path(tmp))
    GOLDEN.write_text(text)
    print(f"wrote {GOLDEN} ({len(text)} bytes)")


if __name__ == "__main__":
    _regenerate()
