"""Unit tests for the attribute model."""

import math

import pytest

from repro.data.attribute import (Attribute, MISSING, is_missing)
from repro.errors import DataError


class TestConstruction:
    def test_numeric(self):
        a = Attribute.numeric("age")
        assert a.is_numeric and not a.is_nominal and not a.is_string
        assert a.values == ()

    def test_nominal(self):
        a = Attribute.nominal("color", ["red", "green"])
        assert a.is_nominal
        assert a.values == ("red", "green")
        assert a.num_values == 2

    def test_string(self):
        a = Attribute.string("note")
        assert a.is_string
        assert a.num_values == 0

    def test_nominal_requires_values(self):
        with pytest.raises(DataError):
            Attribute("x", "nominal")

    def test_duplicate_values_rejected(self):
        with pytest.raises(DataError):
            Attribute.nominal("x", ["a", "a"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataError):
            Attribute("x", "fuzzy")


class TestValueTable:
    def test_index_of(self):
        a = Attribute.nominal("c", ["x", "y", "z"])
        assert a.index_of("y") == 1

    def test_index_of_unknown(self):
        a = Attribute.nominal("c", ["x"])
        with pytest.raises(DataError):
            a.index_of("nope")

    def test_string_grows(self):
        a = Attribute.string("s")
        assert a.add_value("hello") == 0
        assert a.add_value("world") == 1
        assert a.add_value("hello") == 0  # idempotent
        assert a.num_values == 2

    def test_nominal_is_closed(self):
        a = Attribute.nominal("c", ["x"])
        with pytest.raises(DataError):
            a.add_value("new")

    def test_numeric_rejects_add_value(self):
        with pytest.raises(DataError):
            Attribute.numeric("n").add_value("v")


class TestEncodeDecode:
    def test_numeric_roundtrip(self):
        a = Attribute.numeric("n")
        assert a.decode(a.encode("3.5")) == 3.5
        assert a.decode(a.encode(42)) == 42.0

    def test_nominal_roundtrip(self):
        a = Attribute.nominal("c", ["lo", "hi"])
        assert a.encode("hi") == 1.0
        assert a.decode(1.0) == "hi"

    def test_missing_encodings(self):
        a = Attribute.numeric("n")
        for raw in (None, "?", "", float("nan")):
            assert math.isnan(a.encode(raw))

    def test_decode_missing(self):
        a = Attribute.nominal("c", ["x"])
        assert a.decode(MISSING) is None

    def test_decode_out_of_range(self):
        a = Attribute.nominal("c", ["x"])
        with pytest.raises(DataError):
            a.decode(5.0)

    def test_numeric_bad_coercion(self):
        with pytest.raises(DataError):
            Attribute.numeric("n").encode("abc")

    def test_nominal_unknown_value(self):
        with pytest.raises(DataError):
            Attribute.nominal("c", ["x"]).encode("y")

    def test_is_missing_helper(self):
        assert is_missing(float("nan"))
        assert not is_missing(0.0)
        assert not is_missing("?")  # only float NaN encodes missing


class TestEquality:
    def test_equal(self):
        a = Attribute.nominal("c", ["x", "y"])
        b = Attribute.nominal("c", ["x", "y"])
        assert a == b and hash(a) == hash(b)

    def test_different_values(self):
        assert Attribute.nominal("c", ["x"]) != \
            Attribute.nominal("c", ["y"])

    def test_copy_is_deep(self):
        a = Attribute.string("s")
        a.add_value("one")
        b = a.copy()
        b.add_value("two")
        assert a.num_values == 1 and b.num_values == 2
