"""Binary columnar codec: hypothesis round-trip properties,
byte-determinism, and decoder fuzzing (truncated/corrupt frames must
raise clean DataErrors, never crash or over-read)."""

import json
import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Attribute, Dataset, arff, codec, dataio, synthetic
from repro.errors import DataError

# --------------------------------------------------------------------------
# dataset strategy: numeric/nominal/string columns, unicode, missing,
# weights, empty relations
# --------------------------------------------------------------------------

_text = st.text(min_size=0, max_size=12)
_names = st.text(alphabet=st.characters(
    whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=8)


@st.composite
def datasets(draw):
    n_attrs = draw(st.integers(1, 5))
    attrs = []
    for i in range(n_attrs):
        name = f"a{i}_" + draw(_names)
        kind = draw(st.sampled_from(["numeric", "nominal", "string"]))
        if kind == "numeric":
            attrs.append(Attribute.numeric(name))
        elif kind == "nominal":
            n_vals = draw(st.integers(1, 5))
            attrs.append(Attribute.nominal(
                name, [f"v{j}_" + draw(_names) for j in range(n_vals)]))
        else:
            attrs.append(Attribute.string(name))
    relation = draw(_text) or "rel"
    class_index = draw(st.one_of(
        st.none(), st.integers(0, n_attrs - 1)))
    ds = Dataset(relation, attrs, class_index=class_index)
    for _ in range(draw(st.integers(0, 10))):
        row = []
        for attr in attrs:
            if draw(st.integers(0, 7)) == 0:
                row.append(None)
            elif attr.is_numeric:
                row.append(draw(st.floats(-1e12, 1e12, allow_nan=False)))
            elif attr.is_nominal:
                row.append(draw(st.sampled_from(list(attr.values))))
            else:
                # unicode free text, open value table
                row.append(draw(_text) or "s")
        weight = draw(st.sampled_from([1.0, 1.0, 0.5, 2.0]))
        ds.add_row(row, weight=weight)
    return ds


def assert_equal_datasets(a: Dataset, b: Dataset) -> None:
    assert a.relation == b.relation
    assert a._class_index == b._class_index
    assert [x.name for x in a.attributes] == [x.name for x in b.attributes]
    assert [x.kind for x in a.attributes] == [x.kind for x in b.attributes]
    assert [x.values for x in a.attributes] == \
        [x.values for x in b.attributes]
    ma, mb = a.to_matrix(), b.to_matrix()
    assert ma.shape == mb.shape
    assert np.array_equal(ma, mb, equal_nan=True)
    assert np.array_equal(a.weights(), b.weights())


@given(datasets())
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(ds):
    """decode(encode(d)) == d for arbitrary datasets."""
    assert_equal_datasets(ds, codec.decode(codec.encode(ds)))


@given(datasets())
@settings(max_examples=40, deadline=None)
def test_byte_deterministic(ds):
    """Equal datasets yield byte-identical frames (idempotent re-encode)."""
    frame = codec.encode(ds)
    assert codec.encode(ds) == frame
    assert codec.encode(codec.decode(frame)) == frame


@given(datasets())
@settings(max_examples=25, deadline=None)
def test_truncation_fuzz_property(ds):
    """Every strict prefix of a valid frame is rejected cleanly."""
    frame = codec.encode(ds)
    for cut in {0, 1, 3, 5, 9, len(frame) // 2, len(frame) - 1}:
        if cut >= len(frame):
            continue
        with pytest.raises(DataError):
            codec.decode(frame[:cut])
    with pytest.raises(DataError):
        codec.decode(frame + b"\x00")  # trailing junk is not silent


class TestRoundTripCorners:
    def test_empty_relation(self):
        ds = Dataset("empty", [Attribute.numeric("x")])
        assert_equal_datasets(ds, codec.decode(codec.encode(ds)))

    def test_unicode_everywhere(self):
        ds = Dataset("δεδομένα", [
            Attribute.nominal("β", ["ναι", "όχι"]),
            Attribute.string("σχόλιο")], class_index=0)
        ds.add_row(["ναι", "πρώτη γραμμή ✓"])
        ds.add_row([None, None], weight=0.25)
        assert_equal_datasets(ds, codec.decode(codec.encode(ds)))

    def test_all_missing_column(self):
        ds = Dataset("m", [Attribute.numeric("x"),
                           Attribute.nominal("y", ["a"])])
        ds.add_row([None, None])
        ds.add_row([None, None])
        assert_equal_datasets(ds, codec.decode(codec.encode(ds)))

    def test_wide_nominal_uses_u2(self):
        values = [f"v{i}" for i in range(300)]
        ds = Dataset("w", [Attribute.nominal("n", values)])
        ds.add_row(["v299"])
        frame = codec.encode(ds)
        header_len = struct.unpack_from("<I", frame, 6)[0]
        header = json.loads(frame[10:10 + header_len])
        assert header["columns"][0]["dtype"] == "u2"
        assert_equal_datasets(ds, codec.decode(frame))

    def test_nan_payload_bits_survive_as_missing(self):
        ds = Dataset("n", [Attribute.numeric("x")])
        ds.add_row([1.5])
        ds.add(type(ds[0])([float("nan")]))
        out = codec.decode(codec.encode(ds))
        assert math.isnan(out.to_matrix()[1, 0])

    def test_frame_cache_keyed_on_version(self):
        ds = synthetic.weather_nominal()
        frame = ds.to_frame()
        assert ds.to_frame() is frame  # memoised while unchanged
        ds[0].set_value(0, 1.0)
        assert ds.to_frame() is not frame

    def test_view_encodes_like_its_subset(self):
        ds = synthetic.weather_numeric()
        rows = [3, 1, 7]
        assert codec.encode(ds.view(rows)) == codec.encode(ds.subset(rows))

    def test_mmap_load(self, tmp_path):
        ds = synthetic.breast_cancer()
        path = tmp_path / "d.rcf"
        codec.dump_binary(ds, str(path))
        assert_equal_datasets(ds, codec.load_binary(str(path)))

    def test_mmap_load_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            codec.load_binary(str(tmp_path / "absent.rcf"))


class TestDecoderFuzz:
    """Corrupt frames must fail with DataError, never crash/over-read."""

    def frame(self):
        ds = synthetic.weather_nominal()
        ds[0].weight = 2.0
        return codec.encode(ds)

    @pytest.mark.parametrize("mutate", [
        lambda f: b"",
        lambda f: b"RC",
        lambda f: b"XXXX" + f[4:],                      # wrong magic
        lambda f: f[:4] + b"\x07" + f[5:],              # future version
        lambda f: f[:5] + b"\xff" + f[6:],              # unknown flags
        lambda f: f[:6] + struct.pack("<I", 2**31) + f[10:],  # huge header
        lambda f: f[:6] + struct.pack("<I", len(f)) + f[10:],  # header past end
        lambda f: f[:12] + b"\x00" + f[13:],            # broken JSON
        lambda f: f[:len(f) // 2],                       # truncated buffers
        lambda f: f + b"trailing",                       # over-long
    ])
    def test_structural_corruption(self, mutate):
        with pytest.raises(DataError):
            codec.decode(mutate(self.frame()))

    def test_header_json_must_be_object(self):
        body = json.dumps([1, 2]).encode()
        frame = struct.pack("<4sBBI", codec.MAGIC, codec.VERSION, 0,
                            len(body)) + body
        with pytest.raises(DataError):
            codec.decode(frame)

    def _manual_frame(self, header: dict, payload: bytes = b"",
                      flags: int = 0) -> bytes:
        body = json.dumps(header).encode()
        return struct.pack("<4sBBI", codec.MAGIC, codec.VERSION, flags,
                           len(body)) + body + payload

    def test_bad_header_fields(self):
        base = {"relation": "r", "n_rows": 0, "class_index": None,
                "columns": [{"name": "x", "kind": "numeric",
                             "dtype": "f8", "missing": False}]}
        for breakage in [
            {"n_rows": -1}, {"n_rows": "9"}, {"relation": 7},
            {"class_index": 1.5}, {"class_index": 4}, {"columns": []},
            {"columns": "x"}, {"columns": [7]},
            {"columns": [{"name": "x", "kind": "vector",
                          "dtype": "f8", "missing": False}]},
            {"columns": [{"name": "x", "kind": "numeric",
                          "dtype": "u8", "missing": False}]},
            {"columns": [{"name": "x", "kind": "nominal",
                          "dtype": "u1", "missing": False}]},
            {"columns": [{"name": "x", "kind": "numeric",
                          "dtype": "f8", "missing": "no"}]},
            {"columns": [{"name": "x", "kind": "numeric", "dtype": "f8",
                          "missing": False},
                         {"name": "x", "kind": "numeric", "dtype": "f8",
                          "missing": False}]},  # duplicate names
        ]:
            header = dict(base, **breakage)
            with pytest.raises(DataError):
                codec.decode(self._manual_frame(header))

    def test_out_of_table_nominal_index(self):
        header = {"relation": "r", "n_rows": 1, "class_index": None,
                  "columns": [{"name": "x", "kind": "nominal",
                               "values": ["a", "b"], "dtype": "u1",
                               "missing": False}]}
        with pytest.raises(DataError):
            codec.decode(self._manual_frame(header, payload=b"\x05"))

    def test_negative_weight_rejected(self):
        header = {"relation": "r", "n_rows": 1, "class_index": None,
                  "columns": [{"name": "x", "kind": "numeric",
                               "dtype": "f8", "missing": False}]}
        payload = struct.pack("<d", 1.0) + struct.pack("<d", -1.0)
        with pytest.raises(DataError):
            codec.decode(self._manual_frame(header, payload, flags=1))


class TestSniffingParse:
    def test_parse_dataset_accepts_all_encodings(self):
        ds = synthetic.weather_nominal()
        for doc in [arff.dumps(ds), arff.dumps(ds).encode("utf-8"),
                    codec.encode(ds), bytearray(codec.encode(ds)),
                    memoryview(codec.encode(ds))]:
            out = dataio.parse_dataset(doc)
            assert out.num_instances == ds.num_instances

    def test_parse_dataset_class_attribute(self):
        ds = synthetic.weather_nominal()
        out = dataio.parse_dataset(codec.encode(ds), "outlook")
        assert out.class_attribute.name == "outlook"

    def test_parse_dataset_rejects_binary_garbage(self):
        with pytest.raises(DataError):
            dataio.parse_dataset(b"\xff\xfe\x00garbage")

    def test_to_wire_picks_codec(self):
        ds = synthetic.weather_nominal()
        assert isinstance(dataio.to_wire(ds, binary=False), str)
        wire = dataio.to_wire(ds, binary=True)
        assert isinstance(wire, bytes) and codec.is_columnar(wire)
