"""ARFF parser/writer tests, including hypothesis round-trip properties."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Attribute, Dataset, arff
from repro.errors import ArffParseError

DOC = """% comment line
@relation weather

@attribute outlook {sunny, overcast, rainy}
@attribute temperature numeric
@attribute windy {TRUE, FALSE}

@data
sunny, 85, FALSE
overcast, 83, TRUE
rainy, ?, FALSE
"""


class TestParsing:
    def test_basic(self):
        ds = arff.loads(DOC)
        assert ds.relation == "weather"
        assert ds.num_attributes == 3
        assert ds.num_instances == 3
        assert ds.attribute("outlook").values == ("sunny", "overcast",
                                                  "rainy")

    def test_missing_cell(self):
        ds = arff.loads(DOC)
        assert math.isnan(ds[2].value(1))

    def test_class_attribute_argument(self):
        ds = arff.loads(DOC, "windy")
        assert ds.class_attribute.name == "windy"

    def test_case_insensitive_keywords(self):
        text = DOC.replace("@relation", "@RELATION") \
                  .replace("@attribute", "@Attribute") \
                  .replace("@data", "@DATA")
        assert arff.loads(text).num_instances == 3

    def test_quoted_names_and_values(self):
        text = ("@relation 'my rel'\n"
                "@attribute 'the attr' {'a b', c}\n"
                "@data\n'a b'\nc\n")
        ds = arff.loads(text)
        assert ds.relation == "my rel"
        assert ds.attribute("the attr").values == ("a b", "c")
        assert ds[0].decoded(ds) == ["a b"]

    def test_real_and_integer_types(self):
        text = ("@relation r\n@attribute a real\n@attribute b integer\n"
                "@data\n1.5,2\n")
        ds = arff.loads(text)
        assert ds.attribute("a").is_numeric
        assert ds.attribute("b").is_numeric

    def test_string_type(self):
        text = "@relation r\n@attribute s string\n@data\nhello\nworld\n"
        ds = arff.loads(text)
        assert ds.attribute("s").is_string
        assert ds[1].decoded(ds) == ["world"]

    def test_date_treated_as_string(self):
        text = ("@relation r\n@attribute d date yyyy-MM-dd\n@data\n"
                "2005-03-01\n")
        assert arff.loads(text).attribute("d").is_string


class TestParseErrors:
    def test_data_before_relation(self):
        with pytest.raises(ArffParseError):
            arff.loads("@data\n1\n")

    def test_no_data_section(self):
        with pytest.raises(ArffParseError):
            arff.loads("@relation r\n@attribute a numeric\n")

    def test_wrong_field_count(self):
        with pytest.raises(ArffParseError) as err:
            arff.loads("@relation r\n@attribute a numeric\n"
                       "@attribute b numeric\n@data\n1\n")
        assert err.value.line_no is not None

    def test_unknown_type(self):
        with pytest.raises(ArffParseError):
            arff.loads("@relation r\n@attribute a complex\n@data\n1\n")

    def test_sparse_malformed_pair(self):
        with pytest.raises(ArffParseError):
            arff.loads("@relation r\n@attribute a numeric\n@data\n"
                       "{zero}\n")

    def test_sparse_index_out_of_range(self):
        with pytest.raises(ArffParseError):
            arff.loads("@relation r\n@attribute a numeric\n@data\n"
                       "{5 1}\n")

    def test_sparse_unterminated(self):
        with pytest.raises(ArffParseError):
            arff.loads("@relation r\n@attribute a numeric\n@data\n"
                       "{0 1\n")

    def test_bad_nominal_value(self):
        with pytest.raises(ArffParseError):
            arff.loads("@relation r\n@attribute a {x}\n@data\ny\n")

    def test_unterminated_quote(self):
        with pytest.raises(ArffParseError):
            arff.loads("@relation r\n@attribute a {x}\n@data\n'x\n")

    def test_garbage_header_line(self):
        with pytest.raises(ArffParseError):
            arff.loads("@relation r\nnot-a-directive\n@data\n")


class TestWriting:
    def test_roundtrip_fixture(self):
        ds = arff.loads(DOC)
        again = arff.loads(arff.dumps(ds))
        assert again.relation == ds.relation
        assert [a.name for a in again.attributes] == \
            [a.name for a in ds.attributes]
        for a, b in zip(again, ds):
            assert a == b

    def test_header_of_is_dataless(self):
        ds = arff.loads(DOC)
        header = arff.header_of(ds)
        parsed = arff.loads(header)
        assert parsed.num_instances == 0
        assert parsed.num_attributes == 3

    def test_quoting_special_chars(self):
        ds = Dataset("r", [Attribute.nominal("a", ["x,y", "plain"])])
        ds.add_row(["x,y"])
        again = arff.loads(arff.dumps(ds))
        assert again[0].decoded(again) == ["x,y"]

    def test_iter_rows(self):
        rows = list(arff.iter_rows(DOC))
        assert rows[0] == ["sunny", "85", "FALSE"]
        assert rows[2][1] == "?"


class TestSparse:
    SPARSE = ("@relation sparse\n"
              "@attribute a numeric\n"
              "@attribute b {zero, one}\n"
              "@attribute c numeric\n"
              "@data\n"
              "{0 2.5, 1 one}\n"
              "{}\n"
              "{2 ?}\n")

    def test_parse_sparse(self):
        ds = arff.loads(self.SPARSE)
        assert ds.num_instances == 3
        # omitted cells default to 0 / first nominal value
        assert ds[0].decoded(ds) == [2.5, "one", 0.0]
        assert ds[1].decoded(ds) == [0.0, "zero", 0.0]
        assert ds[2].decoded(ds) == [0.0, "zero", None]

    def test_sparse_dump_roundtrip(self, breast_cancer):
        text = arff.dumps(breast_cancer, sparse=True)
        assert "{" in text.splitlines()[-2]
        again = arff.loads(text, "Class")
        assert again.num_instances == 286
        assert again.num_missing() == breast_cancer.num_missing()
        for a, b in zip(again, breast_cancer):
            assert a.decoded(again) == b.decoded(breast_cancer)

    def test_sparse_dense_equivalence(self):
        ds = arff.loads(self.SPARSE)
        dense = arff.loads(arff.dumps(ds, sparse=False))
        sparse = arff.loads(arff.dumps(ds, sparse=True))
        for a, b in zip(dense, sparse):
            assert a.decoded(dense) == b.decoded(sparse)


# --------------------------------------------------------------------------
# property-based round trips
# --------------------------------------------------------------------------

_names = st.text(alphabet=st.characters(
    whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=8)


@st.composite
def datasets(draw):
    n_attrs = draw(st.integers(1, 4))
    attrs = []
    used = set()
    for i in range(n_attrs):
        name = f"a{i}_" + draw(_names)
        if name in used:
            name += str(i)
        used.add(name)
        if draw(st.booleans()):
            attrs.append(Attribute.numeric(name))
        else:
            n_vals = draw(st.integers(1, 4))
            attrs.append(Attribute.nominal(
                name, [f"v{j}" for j in range(n_vals)]))
    ds = Dataset("prop", attrs)
    for _ in range(draw(st.integers(0, 12))):
        row = []
        for attr in attrs:
            if draw(st.integers(0, 9)) == 0:
                row.append(None)
            elif attr.is_numeric:
                row.append(draw(st.floats(-1e6, 1e6,
                                          allow_nan=False)))
            else:
                row.append(draw(st.sampled_from(list(attr.values))))
        ds.add_row(row)
    return ds


@given(datasets())
@settings(max_examples=40, deadline=None)
def test_arff_roundtrip_property(ds):
    """dump → load preserves schema and every cell (NaN-aware)."""
    again = arff.loads(arff.dumps(ds))
    assert again.num_attributes == ds.num_attributes
    assert again.num_instances == ds.num_instances
    for mine, theirs in zip(ds.attributes, again.attributes):
        assert mine.name == theirs.name
        assert mine.kind == theirs.kind
    for a, b in zip(ds, again):
        for x, y in zip(a.values, b.values):
            if math.isnan(x):
                assert math.isnan(y)
            else:
                assert x == pytest.approx(y, rel=1e-12)
