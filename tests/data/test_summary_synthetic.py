"""Figure-3 summary statistics and the synthetic generators.

The breast-cancer tests here pin down every number the paper's Figure 3
reports — this is the reproduction's FIG-3 contract.
"""

import numpy as np
import pytest

from repro.data import arff, summary, synthetic


class TestBreastCancerFigure3:
    """Exact Figure-3 statistics."""

    @pytest.fixture(scope="class")
    def stats(self, breast_cancer):
        return summary.summarise(breast_cancer)

    def test_instances(self, stats):
        assert stats.num_instances == 286

    def test_attributes(self, stats):
        assert stats.num_attributes == 10
        assert stats.num_continuous == 0
        assert stats.num_discrete == 10

    def test_missing_total(self, stats):
        assert stats.missing_values == 9
        assert stats.missing_percent == pytest.approx(0.3147, abs=1e-3)

    def test_class_split(self, breast_cancer):
        counts = breast_cancer.value_counts("Class")
        assert counts["no-recurrence-events"] == 201
        assert counts["recurrence-events"] == 85

    def test_per_attribute_rows(self, stats):
        expected = {
            "age": (0, 6), "menopause": (0, 3), "tumor-size": (0, 11),
            "inv-nodes": (0, 7), "node-caps": (8, 2), "deg-malig": (0, 3),
            "breast": (0, 2), "breast-quad": (1, 5), "irradiat": (0, 2),
            "Class": (0, 2),
        }
        for row in stats.attributes:
            missing, distinct = expected[row.name]
            assert row.missing == missing, row.name
            assert row.distinct == distinct, row.name
            assert row.type_label == "Enum"

    def test_formatted_output(self, stats):
        text = summary.format_figure3(stats)
        assert "Num Instances:  286" in text
        assert "node-caps" in text
        assert "(0.3%)" in text

    def test_deterministic(self):
        a = arff.dumps(synthetic.breast_cancer())
        b = arff.dumps(synthetic.breast_cancer())
        assert a == b

    def test_different_seed_differs(self):
        a = arff.dumps(synthetic.breast_cancer(seed=0))
        b = arff.dumps(synthetic.breast_cancer(seed=1))
        assert a != b


class TestSummaryGeneral:
    def test_numeric_stats(self, weather_numeric):
        out = summary.numeric_stats(weather_numeric, "temperature")
        assert out["min"] == 64 and out["max"] == 85

    def test_class_entropy_bounds(self, breast_cancer):
        h = summary.class_entropy(breast_cancer)
        assert 0.0 < h < 1.0  # two classes, unbalanced

    def test_attribute_entropy(self, weather):
        h = summary.attribute_entropy(weather, "outlook")
        assert 0.0 < h <= np.log2(3) + 1e-9

    def test_empty_dataset_summary(self, weather):
        empty = weather.copy_header()
        stats = summary.summarise(empty)
        assert stats.num_instances == 0
        assert stats.missing_values == 0


class TestGenerators:
    def test_weather_canonical(self, weather):
        assert weather.num_instances == 14
        assert weather.class_attribute.name == "play"
        assert weather.value_counts("play") == {"yes": 9, "no": 5}

    def test_weather_numeric_kinds(self, weather_numeric):
        assert weather_numeric.attribute("temperature").is_numeric
        assert weather_numeric.attribute("outlook").is_nominal

    def test_gaussians_shape(self, blobs):
        assert blobs.num_instances == 120
        assert blobs.num_attributes == 2

    def test_gaussians_labelled(self, blobs_labelled):
        assert blobs_labelled.has_class
        assert blobs_labelled.num_classes == 3

    def test_two_class_balanced(self, two_class):
        counts = two_class.value_counts("class")
        assert abs(counts["pos"] - counts["neg"]) <= 1

    def test_xor_not_linearly_separable_labels(self):
        ds = synthetic.xor_problem(n=100, seed=2)
        counts = ds.value_counts("class")
        assert set(counts) == {"a", "b"}
        assert min(counts.values()) > 20

    def test_baskets_planted_rule(self, baskets):
        bread = baskets.column("bread")
        butter = baskets.column("butter")
        both = ((bread == 1) & (butter == 1)).sum()
        assert both / max((bread == 1).sum(), 1) > 0.7

    def test_surface3d_grid(self):
        ds = synthetic.surface3d(n=10)
        assert ds.num_instances == 100
        assert [a.name for a in ds.attributes] == ["x", "y", "z"]
        z = ds.column("z")
        assert z.max() <= 1.0 + 1e-9  # sinc peak
