"""LED-7 and MONK's-1 generator tests."""


from repro.data import synthetic
from repro.ml import evaluation
from repro.ml.classifiers import J48, NaiveBayes


class TestLed7:
    def test_schema(self):
        ds = synthetic.led7(n=50)
        assert ds.num_attributes == 8
        assert ds.num_classes == 10
        assert all(a.is_nominal for a in ds.attributes)

    def test_noise_free_is_learnable_perfectly(self):
        ds = synthetic.led7(n=400, noise=0.0, seed=2)
        clf = J48(min_obj=1).fit(ds)
        assert evaluation.evaluate(clf, ds).accuracy == 1.0

    def test_noise_bounds_accuracy(self):
        ds = synthetic.led7(n=600, noise=0.1, seed=3)
        result = evaluation.cross_validate(lambda: NaiveBayes(), ds, k=5)
        # the 10%-noise LED domain has ~74% Bayes-optimal accuracy
        assert 0.55 < result.accuracy < 0.85

    def test_all_digits_present(self):
        ds = synthetic.led7(n=400, seed=4)
        counts = ds.value_counts("digit")
        assert all(c > 0 for c in counts.values())

    def test_deterministic(self):
        from repro.data import arff
        assert arff.dumps(synthetic.led7(n=30, seed=5)) == \
            arff.dumps(synthetic.led7(n=30, seed=5))


class TestMonks1:
    def test_schema(self):
        ds = synthetic.monks1(n=50)
        assert [a.name for a in ds.attributes] == \
            ["a1", "a2", "a3", "a4", "a5", "a6", "class"]
        assert ds.attribute("a5").num_values == 4

    def test_rule_holds(self):
        ds = synthetic.monks1(n=200, seed=6)
        for inst in ds:
            decoded = dict(zip([a.name for a in ds.attributes],
                               inst.decoded(ds)))
            expected = "1" if (decoded["a1"] == decoded["a2"]
                               or decoded["a5"] == "1") else "0"
            assert decoded["class"] == expected

    def test_tree_learner_recovers_rule(self):
        ds = synthetic.monks1(n=400, seed=7)
        result = evaluation.cross_validate(lambda: J48(min_obj=1), ds,
                                           k=5)
        assert result.accuracy > 0.85

    def test_rule_structure_beats_linear(self):
        from repro.ml.classifiers import Logistic
        ds = synthetic.monks1(n=400, seed=8)
        tree = evaluation.cross_validate(lambda: J48(min_obj=1), ds, k=5)
        linear = evaluation.cross_validate(lambda: Logistic(), ds, k=5)
        assert tree.accuracy > linear.accuracy
