"""Instance-streaming tests (header + chunk transport round trip)."""

import pytest

from repro.data import arff, stream, synthetic
from repro.errors import DataError


class TestInstanceStream:
    def test_collect_all(self, weather):
        s = stream.InstanceStream.from_dataset(weather)
        out = s.collect()
        assert out.num_instances == 14
        assert s.consumed == 14

    def test_collect_limit(self, weather):
        s = stream.InstanceStream.from_dataset(weather)
        assert s.collect(limit=5).num_instances == 5

    def test_map_filter(self, weather):
        s = stream.InstanceStream.from_dataset(weather)
        filtered = s.filter(lambda i: i.value(weather.class_index) == 0)
        assert filtered.collect().num_instances == 9  # 'yes' count

    def test_copies_rows(self, weather):
        s = stream.InstanceStream.from_dataset(weather)
        first = next(iter(s))
        first.set_value(0, 99.0)
        assert weather[0].value(0) != 99.0


class TestChunking:
    def test_chunk_rows_sizes(self, breast_cancer):
        chunks = stream.chunk_rows(breast_cancer, 100)
        assert len(chunks) == 3
        assert sum(len(c.splitlines()) for c in chunks) == 286

    def test_chunk_size_validation(self, weather):
        with pytest.raises(DataError):
            stream.chunk_rows(weather, 0)

    def test_replay_roundtrip(self, breast_cancer):
        header, chunks = stream.replay(breast_cancer, 64)
        reader = stream.ChunkedStreamReader(header)
        for chunk in chunks:
            reader.feed(chunk)
        reader.close()
        rebuilt = reader.dataset()
        assert rebuilt.num_instances == 286
        assert rebuilt.num_missing() == breast_cancer.num_missing()
        # every decoded row matches
        for a, b in zip(rebuilt, breast_cancer):
            assert a.decoded(rebuilt) == b.decoded(breast_cancer)

    def test_reader_rejects_data_in_header(self, weather):
        with pytest.raises(DataError):
            stream.ChunkedStreamReader(arff.dumps(weather))

    def test_reader_arity_check(self, weather):
        reader = stream.ChunkedStreamReader(arff.header_of(weather))
        with pytest.raises(DataError):
            reader.feed("sunny,hot")

    def test_feed_after_close(self, weather):
        reader = stream.ChunkedStreamReader(arff.header_of(weather))
        reader.close()
        with pytest.raises(DataError):
            reader.feed("sunny,hot,high,TRUE,yes")

    def test_missing_cells_in_chunks(self):
        ds = synthetic.breast_cancer()
        header, chunks = stream.replay(ds, 300)
        reader = stream.ChunkedStreamReader(header)
        reader.feed(chunks[0])
        assert reader.dataset().num_missing() == 9
