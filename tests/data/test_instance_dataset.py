"""Unit tests for Instance and Dataset."""

import math

import numpy as np
import pytest

from repro.data import Attribute, Dataset, Instance
from repro.errors import DataError


def small():
    ds = Dataset("toy", [
        Attribute.numeric("x"),
        Attribute.nominal("c", ["a", "b"]),
    ], class_index=1)
    ds.add_row([1.0, "a"])
    ds.add_row([2.0, "b"])
    ds.add_row([None, "a"])
    return ds


class TestInstance:
    def test_basic(self):
        inst = Instance([1.0, 2.0])
        assert len(inst) == 2
        assert inst.value(1) == 2.0
        assert inst.weight == 1.0

    def test_missing(self):
        inst = Instance([float("nan"), 1.0])
        assert inst.is_missing(0) and not inst.is_missing(1)
        assert inst.num_missing() == 1

    def test_weight_validation(self):
        with pytest.raises(DataError):
            Instance([1.0], weight=-1)

    def test_equality_with_nan(self):
        a = Instance([float("nan"), 1.0])
        b = Instance([float("nan"), 1.0])
        assert a == b

    def test_inequality(self):
        assert Instance([1.0]) != Instance([2.0])
        assert Instance([1.0]) != Instance([1.0], weight=2.0)

    def test_copy_independent(self):
        a = Instance([1.0])
        b = a.copy()
        b.set_value(0, 9.0)
        assert a.value(0) == 1.0

    def test_2d_rejected(self):
        with pytest.raises(DataError):
            Instance(np.zeros((2, 2)))

    def test_decoded(self):
        ds = small()
        assert ds[0].decoded(ds) == [1.0, "a"]
        assert ds[2].decoded(ds) == [None, "a"]


class TestDatasetSchema:
    def test_duplicate_attribute_names(self):
        with pytest.raises(DataError):
            Dataset("d", [Attribute.numeric("x"), Attribute.numeric("x")])

    def test_empty_schema(self):
        with pytest.raises(DataError):
            Dataset("d", [])

    def test_attribute_lookup(self):
        ds = small()
        assert ds.attribute("c").is_nominal
        assert ds.attribute_index("x") == 0
        with pytest.raises(DataError):
            ds.attribute_index("nope")

    def test_class_index(self):
        ds = small()
        assert ds.class_index == 1
        assert ds.class_attribute.name == "c"
        assert ds.num_classes == 2

    def test_negative_class_index(self):
        ds = small()
        ds.class_index = -1
        assert ds.class_index == 1

    def test_no_class(self):
        ds = Dataset("d", [Attribute.numeric("x")])
        assert not ds.has_class
        with pytest.raises(DataError):
            _ = ds.class_index

    def test_set_class_by_name(self):
        ds = small()
        ds.set_class("c")
        assert ds.class_index == 1


class TestDatasetRows:
    def test_add_arity_check(self):
        ds = small()
        with pytest.raises(DataError):
            ds.add(Instance([1.0]))
        with pytest.raises(DataError):
            ds.add_row([1.0])

    def test_matrix_and_cache_invalidation(self):
        ds = small()
        m1 = ds.to_matrix()
        assert m1.shape == (3, 2)
        ds.add_row([5.0, "b"])
        m2 = ds.to_matrix()
        assert m2.shape == (4, 2)

    def test_column(self):
        ds = small()
        col = ds.column("x")
        assert col[0] == 1.0 and math.isnan(col[2])

    def test_class_counts(self):
        ds = small()
        assert list(ds.class_counts()) == [2.0, 1.0]

    def test_value_counts(self):
        ds = small()
        assert ds.value_counts("c") == {"a": 2, "b": 1}
        with pytest.raises(DataError):
            ds.value_counts("x")

    def test_num_missing(self):
        assert small().num_missing() == 1

    def test_weights(self):
        ds = small()
        ds[0].weight = 2.5
        assert list(ds.weights()) == [2.5, 1.0, 1.0]


class TestDatasetOps:
    def test_copy_is_deep(self):
        ds = small()
        dup = ds.copy()
        dup[0].set_value(0, 99.0)
        assert ds[0].value(0) == 1.0
        assert dup.class_index == ds.class_index

    def test_copy_header(self):
        header = small().copy_header()
        assert len(header) == 0
        assert header.num_attributes == 2
        assert header.class_index == 1

    def test_subset(self):
        sub = small().subset([2, 0])
        assert len(sub) == 2
        assert math.isnan(sub[0].value(0))

    def test_filter_rows(self):
        ds = small()
        out = ds.filter_rows(lambda i: not i.is_missing(0))
        assert len(out) == 2

    def test_select_attributes_remaps_class(self):
        ds = small()
        projected = ds.select_attributes([1])
        assert projected.num_attributes == 1
        assert projected.class_index == 0

    def test_select_attributes_drops_class(self):
        ds = small()
        projected = ds.select_attributes([0])
        assert not projected.has_class

    def test_shuffled_deterministic(self):
        ds = small()
        a = ds.shuffled(42)
        b = ds.shuffled(42)
        assert [i.decoded(a) for i in a] == [i.decoded(b) for i in b]

    def test_split_fractions(self):
        ds = small()
        train, test = ds.split(0.66, 1)
        assert len(train) + len(test) == 3
        assert len(train) >= 1 and len(test) >= 1

    def test_split_bad_fraction(self):
        with pytest.raises(DataError):
            small().split(1.5)

    def test_merge(self):
        ds = small()
        merged = ds.merge(ds)
        assert len(merged) == 6

    def test_merge_schema_mismatch(self):
        other = Dataset("o", [Attribute.numeric("y")])
        with pytest.raises(DataError):
            small().merge(other)
