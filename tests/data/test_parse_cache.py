"""The content-keyed parse memo and the LRU cache underneath it."""

from hypothesis import given, settings, strategies as st

from repro.data import arff, cache, csvio
from repro.obs import get_metrics

PROP = settings(max_examples=40, deadline=None, derandomize=True)

HEADER = ("@relation weather\n"
          "@attribute outlook {sunny,overcast,rainy}\n"
          "@attribute temperature numeric\n"
          "@attribute play {yes,no}\n"
          "@data\n")
# enough rows to clear MIN_MEMO_BYTES
ROWS = "".join(f"sunny,{60 + i % 30},{'yes' if i % 2 else 'no'}\n"
               for i in range(40))
DOC = HEADER + ROWS


def hits(kind):
    return get_metrics().counter("ws.cache.parse.hits", kind=kind).value


def misses(kind):
    return get_metrics().counter("ws.cache.parse.misses",
                                 kind=kind).value


class TestLruCache:
    def test_entry_bound(self):
        lru = cache.LruCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)
        assert len(lru) == 2
        assert lru.get("a") is None
        assert lru.get("b") == 2 and lru.get("c") == 3

    def test_get_refreshes_recency(self):
        lru = cache.LruCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")          # "b" is now the eviction candidate
        lru.put("c", 3)
        assert "a" in lru and "c" in lru and "b" not in lru

    def test_byte_bound(self):
        lru = cache.LruCache(10, max_bytes=100)
        for i in range(5):
            lru.put(i, "v", weight=40)
        assert lru.total_bytes <= 100
        assert 4 in lru and 0 not in lru

    def test_byte_bound_keeps_at_least_one_entry(self):
        lru = cache.LruCache(10, max_bytes=10)
        lru.put("huge", "v", weight=500)
        assert "huge" in lru  # oversized singletons are not thrashed

    def test_replace_updates_weight(self):
        lru = cache.LruCache(10, max_bytes=100)
        lru.put("a", "v", weight=80)
        lru.put("a", "v2", weight=10)
        assert lru.total_bytes == 10


class TestMemoParse:
    def test_second_parse_is_a_hit(self):
        first = arff.loads(DOC)
        second = arff.loads(DOC)
        assert misses("arff") == 1
        assert hits("arff") == 1
        assert first is not second
        assert len(first) == len(second)

    def test_options_are_part_of_the_key(self):
        arff.loads(DOC)
        arff.loads(DOC, class_attribute="play")
        assert misses("arff") == 2
        assert hits("arff") == 0

    def test_mutating_a_hit_does_not_poison_the_cache(self):
        first = arff.loads(DOC)
        first.set_class("play")
        first.add(first[0].copy())
        again = arff.loads(DOC)
        assert not again.has_class
        assert len(again) == len(first) - 1

    def test_small_documents_bypass_the_memo(self):
        tiny = ("@relation t\n@attribute a numeric\n@data\n1\n")
        assert len(tiny) < cache.MIN_MEMO_BYTES
        arff.loads(tiny)
        arff.loads(tiny)
        assert hits("arff") == 0 and misses("arff") == 0

    def test_disabled_bypasses_the_memo(self):
        cache.set_enabled(False)
        arff.loads(DOC)
        arff.loads(DOC)
        assert hits("arff") == 0 and misses("arff") == 0
        assert cache.parse_cache_len() == 0

    def test_bytes_saved_counter(self):
        arff.loads(DOC)
        arff.loads(DOC)
        saved = get_metrics().counter("ws.cache.parse.bytes_saved",
                                      kind="arff").value
        assert saved == len(DOC)

    def test_csv_memo(self):
        doc = "a,b\n" + "".join(f"{i},{i * 2}\n" for i in range(100))
        csvio.loads(doc)
        csvio.loads(doc)
        assert hits("csv") == 1

    @PROP
    @given(st.lists(
        st.tuples(st.sampled_from(["sunny", "overcast", "rainy"]),
                  st.integers(min_value=-50, max_value=150),
                  st.sampled_from(["yes", "no"])),
        min_size=20, max_size=60))
    def test_cached_equals_uncached(self, rows):
        """Property: a memo hit is indistinguishable from a re-parse."""
        cache.reset_parse_cache()
        doc = HEADER + "".join(f"{o},{t},{p}\n" for o, t, p in rows)
        first = arff.loads(doc, class_attribute="play")
        cache.set_enabled(False)
        try:
            uncached = arff.loads(doc, class_attribute="play")
        finally:
            cache.set_enabled(True)
        cached = arff.loads(doc, class_attribute="play")
        for other in (uncached, cached):
            assert arff.dumps(other) == arff.dumps(first)
            assert other.class_attribute == first.class_attribute
