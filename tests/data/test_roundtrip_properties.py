"""Property-based round-trip tests for the ARFF and CSV codecs.

Randomised datasets — unicode attribute names, quoted symbols, missing
cells, empty relations — must survive serialise → parse unchanged (ARFF)
or up to the documented schema-inference laundering (CSV).  Runs
derandomised so CI is reproducible.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.data import arff, converters, csvio
from repro.data.attribute import Attribute
from repro.data.csvio import MISSING_TOKENS, _is_number
from repro.data.dataset import Dataset

PROP = settings(max_examples=60, deadline=None, derandomize=True)

# Symbols safe for exact round-tripping through both codecs:
#  * quotes/backslashes are excluded — the ARFF attribute-name parser
#    scans for a bare closing quote, so escapes in *names* cannot survive
#  * leading/trailing whitespace is excluded — the ARFF field splitter
#    strips fields after unquoting
#  * ""/"?" read back as missing cells by design
_SYMBOL_ALPHABET = st.one_of(
    st.characters(whitelist_categories=("Lu", "Ll", "Lo", "Nd", "Pd",
                                        "Po", "Sm"),
                  blacklist_characters="'\"\\?%{},"),
    # characters that force the ARFF writer to quote (and the CSV writer
    # to escape): interior spaces, commas, braces, comment markers
    st.sampled_from(" ,{}%"))
_raw_symbol = st.text(alphabet=_SYMBOL_ALPHABET, min_size=1, max_size=10)
symbols = _raw_symbol.filter(
    lambda s: s == s.strip() and s not in MISSING_TOKENS)
#: Symbols that cannot be mistaken for numbers or missing markers by the
#: CSV schema inference.
csv_safe_symbols = symbols.filter(lambda s: not _is_number(s))

names = st.text(alphabet=_SYMBOL_ALPHABET, min_size=1,
                max_size=10).filter(lambda s: s == s.strip())

numbers = st.floats(allow_nan=False, allow_infinity=False)


@st.composite
def datasets(draw, kinds=("numeric", "nominal", "string"),
             symbol_values=symbols, max_rows=6):
    attr_names = draw(st.lists(names, min_size=1, max_size=4,
                               unique=True))
    attrs = []
    for name in attr_names:
        kind = draw(st.sampled_from(kinds))
        if kind == "numeric":
            attrs.append(Attribute.numeric(name))
        elif kind == "nominal":
            values = draw(st.lists(symbol_values, min_size=1,
                                   max_size=4, unique=True))
            attrs.append(Attribute.nominal(name, values))
        else:
            attrs.append(Attribute.string(name))
    ds = Dataset(draw(names), attrs)
    for _ in range(draw(st.integers(min_value=0, max_value=max_rows))):
        row = []
        for attr in attrs:
            if draw(st.booleans()) and draw(st.integers(0, 3)) == 0:
                row.append(None)  # ~1 cell in 8 missing
            elif attr.is_numeric:
                row.append(draw(numbers))
            elif attr.is_nominal:
                row.append(draw(st.sampled_from(list(attr.values))))
            else:
                row.append(draw(symbol_values))
        ds.add_row(row)
    return ds


def decoded_rows(ds):
    return [inst.decoded(ds) for inst in ds]


def assert_same_cells(left, right):
    assert len(left) == len(right)
    for lrow, rrow in zip(left, right):
        assert len(lrow) == len(rrow)
        for lv, rv in zip(lrow, rrow):
            if isinstance(lv, float) and isinstance(rv, float):
                assert lv == rv or (math.isnan(lv) and math.isnan(rv))
            else:
                assert lv == rv


class TestArffRoundTrip:
    @PROP
    @given(datasets())
    def test_dense_identity(self, ds):
        back = arff.loads(arff.dumps(ds))
        assert back.relation == ds.relation
        assert list(back.attributes) == list(ds.attributes)
        assert_same_cells(decoded_rows(back), decoded_rows(ds))

    @PROP
    @given(datasets(kinds=("numeric", "nominal")))
    def test_sparse_identity(self, ds):
        back = arff.loads(arff.dumps(ds, sparse=True))
        assert list(back.attributes) == list(ds.attributes)
        assert_same_cells(decoded_rows(back), decoded_rows(ds))

    @PROP
    @given(datasets())
    def test_dumps_is_deterministic(self, ds):
        assert arff.dumps(ds) == arff.dumps(ds)

    @PROP
    @given(datasets())
    def test_header_of_round_trips_schema(self, ds):
        empty = arff.loads(arff.header_of(ds))
        assert [a.name for a in empty.attributes] == \
            [a.name for a in ds.attributes]
        assert empty.num_instances == 0


class TestCsvRoundTrip:
    @PROP
    @given(datasets(kinds=("numeric", "nominal"),
                    symbol_values=csv_safe_symbols))
    def test_values_survive_when_unambiguous(self, ds):
        back = csvio.loads(csvio.dumps(ds))
        assert [a.name for a in back.attributes] == \
            [a.name for a in ds.attributes]
        assert_same_cells(decoded_rows(back), decoded_rows(ds))

    @PROP
    @given(datasets())
    def test_normalisation_is_a_fixed_point(self, ds):
        # one load→dump cycle launders schema ambiguity (numeric-looking
        # nominals, unseen declared values); after that the document must
        # be stable under further cycles
        text1 = csvio.dumps(arff.loads(arff.dumps(ds)))
        text2 = csvio.dumps(csvio.loads(text1))
        text3 = csvio.dumps(csvio.loads(text2))
        assert text3 == text2


class TestCrossFormat:
    @PROP
    @given(datasets(kinds=("numeric", "nominal"),
                    symbol_values=csv_safe_symbols))
    def test_arff_to_csv_to_arff_preserves_cells(self, ds):
        csv_text = converters.convert(arff.dumps(ds), "arff", "csv")
        back = arff.loads(converters.convert(csv_text, "csv", "arff"))
        assert [a.name for a in back.attributes] == \
            [a.name for a in ds.attributes]
        assert_same_cells(decoded_rows(back), decoded_rows(ds))

    @PROP
    @given(datasets(kinds=("numeric",)))
    def test_numeric_matrix_exact_through_both_formats(self, ds):
        # floats must survive repr-formatting through both codecs bit-
        # exactly, including negatives, subnormals and huge magnitudes
        via_csv = csvio.loads(csvio.dumps(ds))
        via_arff = arff.loads(arff.dumps(ds))
        assert_same_cells(decoded_rows(via_csv), decoded_rows(ds))
        assert_same_cells(decoded_rows(via_arff), decoded_rows(ds))
