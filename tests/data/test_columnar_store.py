"""Columnar store, attached instances, zero-copy views, and the
satellite regression: a stale ``to_matrix``/``ColumnStore`` view can
never be observed, whatever the mutating path."""

import numpy as np
import pytest

from repro.data import Attribute, ColumnStore, Dataset, DatasetView, Instance
from repro.data import synthetic
from repro.errors import DataError


def small():
    ds = Dataset("t", [Attribute.numeric("a"), Attribute.numeric("b"),
                       Attribute.nominal("c", ["x", "y"])], class_index=2)
    ds.add_row([1.0, 2.0, "x"])
    ds.add_row([3.0, 4.0, "y"])
    ds.add_row([5.0, 6.0, "x"])
    return ds


class TestColumnStore:
    def test_append_and_views(self):
        store = ColumnStore(2)
        assert store.append(np.array([1.0, 2.0])) == 0
        assert store.append(np.array([3.0, 4.0]), weight=2.0) == 1
        assert store.matrix.shape == (2, 2)
        assert store.weights.tolist() == [1.0, 2.0]
        assert np.shares_memory(store.matrix, store.row(0))
        assert np.shares_memory(store.matrix, store.column(1))

    def test_growth_preserves_rows_and_versions(self):
        store = ColumnStore(1)
        versions = set()
        for i in range(100):
            store.append(np.array([float(i)]))
            versions.add(store.version)
        assert len(versions) == 100  # every mutation bumps the stamp
        assert store.matrix[:, 0].tolist() == [float(i) for i in range(100)]

    def test_bad_shapes_raise(self):
        store = ColumnStore(2)
        with pytest.raises(DataError):
            store.append(np.array([1.0]))
        with pytest.raises(DataError):
            store.extend_matrix(np.ones((2, 3)))
        with pytest.raises(DataError):
            store.remove(0)
        with pytest.raises(DataError):
            store.set_cell(0, 0, 1.0)

    def test_remove_shifts_up(self):
        store = ColumnStore(1)
        for i in range(4):
            store.append(np.array([float(i)]), weight=float(i))
        store.remove(1)
        assert store.matrix[:, 0].tolist() == [0.0, 2.0, 3.0]
        assert store.weights.tolist() == [0.0, 2.0, 3.0]


class TestNoStaleViews:
    """Satellite: audit every mutating path against a fresh to_matrix."""

    def test_to_matrix_is_zero_copy(self):
        ds = small()
        assert np.shares_memory(ds.to_matrix(), ds._store._values)

    def test_add_instance_visible(self):
        ds = small()
        before = ds.to_matrix().copy()
        ds.add_row([7.0, 8.0, "y"])
        after = ds.to_matrix()
        assert after.shape[0] == before.shape[0] + 1
        assert after[-1, 0] == 7.0

    def test_remove_instance_visible(self):
        ds = small()
        removed = ds.remove(1)
        assert removed.value(0) == 3.0  # detached snapshot of the row
        assert not removed.is_attached
        assert ds.to_matrix()[:, 0].tolist() == [1.0, 5.0]

    def test_set_value_write_through(self):
        ds = small()
        matrix = ds.to_matrix()
        ds[0].set_value(0, 42.0)
        # the live view and a fresh view both see the write immediately
        assert matrix[0, 0] == 42.0
        assert ds.to_matrix()[0, 0] == 42.0

    def test_weight_write_through(self):
        ds = small()
        weights = ds.weights()
        ds[1].weight = 3.5
        assert weights[1] == 3.5
        assert ds.weights()[1] == 3.5

    def test_remove_keeps_later_instances_aligned(self):
        ds = small()
        last = ds[2]
        ds.remove(0)
        assert last.value(0) == 5.0  # re-addressed, not stale
        last.set_value(0, 9.0)
        assert ds.to_matrix()[1, 0] == 9.0

    def test_class_reassignment_does_not_touch_cells(self):
        ds = small()
        matrix = ds.to_matrix()
        ds.class_index = 0
        assert np.shares_memory(matrix, ds.to_matrix())
        assert ds.to_matrix()[0, 0] == 1.0

    def test_filter_and_subset_are_copies(self):
        ds = small()
        sub = ds.subset([0, 2])
        sub[0].set_value(0, 100.0)
        assert ds.to_matrix()[0, 0] == 1.0  # base unaffected
        filtered = ds.filter_rows(lambda inst: inst.value(0) > 2)
        assert filtered.num_instances == 2
        filtered[0].set_value(1, -1.0)
        assert ds.to_matrix()[1, 1] == 4.0

    def test_data_version_monotonic_across_all_mutators(self):
        ds = small()
        seen = [ds.data_version]
        ds.add_row([9.0, 9.0, "x"])
        seen.append(ds.data_version)
        ds[0].set_value(0, 8.0)
        seen.append(ds.data_version)
        ds[0].weight = 2.0
        seen.append(ds.data_version)
        ds.remove(3)
        seen.append(ds.data_version)
        assert seen == sorted(set(seen))  # strictly increasing

    def test_gather_view_refreshes_after_mutation(self):
        ds = small()
        view = ds.view([2, 0])
        assert view.to_matrix()[:, 0].tolist() == [5.0, 1.0]
        ds[0].set_value(0, 11.0)  # mutate base AFTER the gather cached
        assert view.to_matrix()[:, 0].tolist() == [5.0, 11.0]
        assert view.weights().shape == (2,)

    def test_added_instance_detaches_from_nothing(self):
        ds = small()
        loose = Instance([7.0, 7.0, 0.0], weight=2.0)
        ds.add(loose)
        assert loose.is_attached
        assert ds.weights()[-1] == 2.0
        loose.set_value(0, 70.0)
        assert ds.to_matrix()[-1, 0] == 70.0

    def test_adding_an_owned_instance_copies(self):
        a, b = small(), small()
        inst = a[0]
        b.add(inst)
        inst.set_value(0, 99.0)  # still bound to dataset a only
        assert a.to_matrix()[0, 0] == 99.0
        assert b.to_matrix()[-1, 0] == 1.0


class TestDatasetView:
    def test_contiguous_slice_shares_memory(self):
        ds = synthetic.weather_numeric()
        view = ds.view(slice(2, 9))
        assert isinstance(view, DatasetView)
        assert view.is_contiguous
        assert np.shares_memory(view.to_matrix(), ds.to_matrix())
        assert np.shares_memory(view.weights(), ds.weights())
        assert view.num_instances == 7

    def test_consecutive_index_list_promotes_to_slice(self):
        ds = synthetic.weather_numeric()
        view = ds.view([3, 4, 5, 6])
        assert view.is_contiguous
        assert np.shares_memory(view.to_matrix(), ds.to_matrix())

    def test_gather_view_matches_subset(self):
        ds = synthetic.weather_numeric()
        rows = [8, 1, 5]
        view = ds.view(rows)
        assert not view.is_contiguous
        sub = ds.subset(rows)
        assert np.array_equal(view.to_matrix(), sub.to_matrix(),
                              equal_nan=True)
        assert [i.value(0) for i in view] == [i.value(0) for i in sub]

    def test_view_rows_out_of_range(self):
        ds = small()
        with pytest.raises(DataError):
            ds.view([0, 5])

    def test_views_are_read_only(self):
        ds = small()
        view = ds.view(slice(0, 2))
        with pytest.raises(DataError):
            view.add_row([0.0, 0.0, "x"])
        with pytest.raises(DataError):
            view.remove(0)
        with pytest.raises(DataError):
            view.add(Instance([1.0, 1.0, 0.0]))

    def test_view_class_override_is_local(self):
        ds = small()
        view = ds.view(slice(0, 2))
        view.class_index = 0
        assert view.class_index == 0
        assert ds.class_index == 2

    def test_base_matrix_and_row_indices(self):
        ds = small()
        view = ds.view([2, 0])
        assert np.shares_memory(view.base_matrix, ds.to_matrix())
        assert view.row_indices.tolist() == [2, 0]
        assert view.base is ds

    def test_view_copy_materialises(self):
        ds = small()
        copy = ds.view([2, 0]).copy()
        assert type(copy) is Dataset
        copy.add_row([0.0, 0.0, "y"])  # mutable again
        assert copy.num_instances == 3
        assert ds.num_instances == 3

    def test_negative_and_stepped_selections(self):
        ds = small()
        assert ds.view([-1])[0].value(0) == 5.0
        stepped = ds.view(slice(0, 3, 2))
        assert stepped.to_matrix()[:, 0].tolist() == [1.0, 5.0]


class TestFoldSlicingZeroCopy:
    """Acceptance criterion: fold/chunk slicing ships views, not copies."""

    def test_cross_validate_uses_views(self, monkeypatch):
        from repro.ml import evaluation
        from repro.ml.classifiers import ZeroR
        ds = synthetic.weather_nominal()
        seen = []
        original = Dataset.view

        def spy(self, rows):
            out = original(self, rows)
            seen.append(out)
            return out

        monkeypatch.setattr(Dataset, "view", spy)
        evaluation.cross_validate(ZeroR, ds, k=3)
        assert len(seen) == 6  # train + test view per fold
        assert all(isinstance(v, DatasetView) for v in seen)
        assert all(np.shares_memory(v.base_matrix, ds.to_matrix())
                   for v in seen)

    def test_contiguous_chunk_of_large_pool_is_a_borrowed_block(self):
        pool = synthetic.numeric_two_class(200, 6, seed=3)
        chunk = pool.view(slice(50, 150))
        assert np.shares_memory(chunk.to_matrix(), pool.to_matrix())
