"""CSV IO and converter-registry tests."""

import math

import pytest

from repro.data import arff, converters, csvio
from repro.errors import DataError

CSV = """x,label,note
1.5,yes,alpha
2.5,no,beta
?,yes,alpha
"""


class TestCsvLoad:
    def test_schema_inference(self):
        ds = csvio.loads(CSV)
        assert ds.attribute("x").is_numeric
        assert ds.attribute("label").is_nominal
        assert ds.attribute("label").values == ("no", "yes")  # sorted
        assert ds.attribute("note").is_nominal

    def test_missing_tokens(self):
        ds = csvio.loads(CSV)
        assert math.isnan(ds[2].value(0))

    def test_no_header(self):
        ds = csvio.loads("1,2\n3,4\n", has_header=False)
        assert [a.name for a in ds.attributes] == ["attr0", "attr1"]
        assert ds.num_instances == 2

    def test_class_attribute(self):
        ds = csvio.loads(CSV, class_attribute="label")
        assert ds.class_attribute.name == "label"

    def test_empty_document(self):
        with pytest.raises(DataError):
            csvio.loads("")

    def test_ragged_rows(self):
        with pytest.raises(DataError):
            csvio.loads("a,b\n1\n")

    def test_all_missing_column_numeric(self):
        ds = csvio.loads("a,b\n?,x\n?,y\n")
        assert ds.attribute("a").is_numeric

    def test_na_tokens(self):
        ds = csvio.loads("a\nNA\nN/A\nnull\n1\n")
        assert ds.num_missing() == 3


class TestCsvDump:
    def test_roundtrip(self):
        ds = csvio.loads(CSV)
        again = csvio.loads(csvio.dumps(ds))
        assert again.num_instances == ds.num_instances
        assert [a.name for a in again.attributes] == \
            [a.name for a in ds.attributes]

    def test_missing_written_as_question_mark(self):
        ds = csvio.loads(CSV)
        assert "?" in csvio.dumps(ds)


class TestConverters:
    def test_csv_to_arff_to_csv(self):
        doc = converters.csv_to_arff(CSV)
        ds = arff.loads(doc)
        assert ds.num_instances == 3
        back = converters.arff_to_csv(doc)
        assert csvio.loads(back).num_instances == 3

    def test_convert_registry(self):
        out = converters.convert(CSV, "csv", "arff")
        assert out.startswith("@relation")

    def test_identity(self):
        assert converters.convert(CSV, "csv", "csv") == CSV

    def test_unknown_pair(self):
        with pytest.raises(DataError):
            converters.convert(CSV, "csv", "parquet")

    def test_available(self):
        assert ("csv", "arff") in converters.available()
        assert ("arff", "csv") in converters.available()

    def test_parse_serialise(self):
        ds = converters.parse(CSV, "csv")
        text = converters.serialise(ds, "arff")
        assert converters.parse(text, "arff").num_instances == 3

    def test_parse_unknown_format(self):
        with pytest.raises(DataError):
            converters.parse(CSV, "xml")
