"""Shared fixtures: canonical datasets and a hosted toolbox."""

import pytest

from repro.data import synthetic


@pytest.fixture(autouse=True)
def _reset_observability():
    """Keep the suite order-independent: every test starts and ends with
    an empty global metrics registry, a disabled, empty tracer, a
    disarmed chaos controller, and empty data-plane caches."""
    from repro import chaos, obs
    from repro.data import cache as datacache
    from repro.ws import client, container, payload

    def reset():
        obs.reset_metrics()
        obs.reset_tracing()
        chaos.uninstall()
        payload.set_enabled(True)
        payload.reset_payload_store()
        payload.set_shm_enabled(True)
        payload.reset_shm_segments()
        datacache.set_enabled(True)
        datacache.reset_parse_cache()
        client.reset_wsdl_cache()
        container.reset_result_cache()

    reset()
    yield
    reset()


@pytest.fixture(scope="session")
def breast_cancer():
    return synthetic.breast_cancer()


@pytest.fixture(scope="session")
def weather():
    return synthetic.weather_nominal()


@pytest.fixture(scope="session")
def weather_numeric():
    return synthetic.weather_numeric()


@pytest.fixture(scope="session")
def blobs():
    return synthetic.gaussians(n_clusters=3, n_per_cluster=40, seed=7)


@pytest.fixture(scope="session")
def blobs_labelled():
    return synthetic.gaussians(n_clusters=3, n_per_cluster=40,
                               labelled=True, seed=7)


@pytest.fixture(scope="session")
def baskets():
    return synthetic.baskets(n=250, seed=3)


@pytest.fixture(scope="session")
def two_class():
    return synthetic.numeric_two_class(n=160, seed=5)


@pytest.fixture(scope="session")
def hosted_toolbox():
    """One HTTP-hosted toolbox for the whole session (services are
    stateless or session-scoped internally)."""
    from repro.services import serve_toolbox
    host = serve_toolbox()
    yield host
    host.stop()
