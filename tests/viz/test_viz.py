"""Visualisation back-end tests."""

import numpy as np
import pytest

from repro.data import synthetic
from repro.errors import ReproError
from repro.viz import ascii_plot, attrviz, clusterviz, render_plot3d, \
    treeviz
from repro.viz.ppm import Raster
from repro.viz.svg import SvgCanvas


class TestSvgCanvas:
    def test_document_shape(self):
        c = SvgCanvas(100, 50)
        c.line(0, 0, 10, 10)
        c.circle(5, 5, 2)
        c.rect(1, 1, 3, 3)
        c.text(2, 2, "hi & <bye>")
        doc = c.render()
        assert doc.startswith("<svg")
        assert doc.rstrip().endswith("</svg>")
        assert "&amp;" in doc and "&lt;bye&gt;" in doc

    def test_polygon(self):
        c = SvgCanvas()
        c.polygon([(0, 0), (1, 0), (0, 1)])
        assert "<polygon" in c.render()


class TestRaster:
    def test_ppm_roundtrip(self):
        r = Raster(8, 4, background=(10, 20, 30))
        r.set_pixel(3, 2, (255, 0, 0))
        again = Raster.from_ppm(r.to_ppm())
        assert again.width == 8 and again.height == 4
        assert tuple(again.pixels[2, 3]) == (255, 0, 0)
        assert tuple(again.pixels[0, 0]) == (10, 20, 30)

    def test_out_of_bounds_ignored(self):
        r = Raster(4, 4)
        r.set_pixel(-1, 0, (0, 0, 0))
        r.set_pixel(9, 9, (0, 0, 0))  # no exception

    def test_line_endpoints(self):
        r = Raster(10, 10)
        r.line(0, 0, 9, 9, (0, 0, 0))
        assert tuple(r.pixels[0, 0]) == (0, 0, 0)
        assert tuple(r.pixels[9, 9]) == (0, 0, 0)

    def test_fill_triangle(self):
        r = Raster(20, 20)
        r.fill_triangle((2, 2), (17, 2), (2, 17), (1, 2, 3))
        assert tuple(r.pixels[3, 3]) == (1, 2, 3)
        assert tuple(r.pixels[18, 18]) == (255, 255, 255)

    def test_invalid_dimensions(self):
        with pytest.raises(ReproError):
            Raster(0, 5)

    def test_from_ppm_garbage(self):
        with pytest.raises(ReproError):
            Raster.from_ppm(b"PNG????")


class TestAsciiPlots:
    def test_scatter_contains_markers(self):
        out = ascii_plot.scatter([0, 1, 2], [0, 1, 4], width=20,
                                 height=8, title="t")
        assert "*" in out and "t" in out

    def test_scatter_series_markers(self):
        out = ascii_plot.scatter([0, 1], [0, 1], series=[0, 1],
                                 width=10, height=5)
        assert "*" in out and "+" in out

    def test_scatter_validation(self):
        with pytest.raises(ReproError):
            ascii_plot.scatter([1], [1, 2])
        with pytest.raises(ReproError):
            ascii_plot.scatter([], [])

    def test_histogram_scaling(self):
        out = ascii_plot.histogram(["x", "y"], [1, 10], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 1

    def test_line_plot(self):
        out = ascii_plot.line_plot([0, 1, 2, 3])
        assert "|" in out

    def test_surface_ascii(self):
        z = np.outer(np.linspace(0, 1, 10), np.linspace(0, 1, 10))
        out = ascii_plot.surface_ascii(z, width=20, height=10)
        assert "@" in out and " " in out

    def test_scatter_svg(self):
        doc = ascii_plot.scatter_svg([1, 2, 3], [1, 4, 9],
                                     series=[0, 1, 2])
        assert doc.startswith("<svg") and "circle" in doc

    def test_constant_values_plot(self):
        # degenerate bounds must not divide by zero
        out = ascii_plot.scatter([1, 1], [2, 2], width=10, height=5)
        assert "*" in out


class TestPlot3d:
    def test_grid_surface(self):
        surf = synthetic.surface3d(n=12)
        img = render_plot3d(surf.column("x"), surf.column("y"),
                            surf.column("z"), width=120, height=90)
        raster = Raster.from_ppm(img)
        assert raster.width == 120
        # something was painted (not all white)
        assert not (raster.pixels == 255).all()
        # several distinct ramp colours present
        colors = {tuple(raster.pixels[y, x])
                  for y in range(0, 90, 5) for x in range(0, 120, 5)}
        assert len(colors) > 5

    def test_scattered_points_fallback(self):
        rng = np.random.default_rng(0)
        xs, ys, zs = rng.random(50), rng.random(50), rng.random(50)
        img = render_plot3d(xs, ys, zs, width=60, height=60)
        raster = Raster.from_ppm(img)
        assert not (raster.pixels == 255).all()

    def test_input_validation(self):
        with pytest.raises(ReproError):
            render_plot3d([1], [1, 2], [1, 2])
        with pytest.raises(ReproError):
            render_plot3d([], [], [])


class TestTreeViz:
    @pytest.fixture(scope="class")
    def graph(self, breast_cancer):
        from repro.ml.classifiers import J48
        return J48().fit(breast_cancer).to_graph()

    def test_text(self, graph):
        text = treeviz.tree_text(graph)
        assert text.startswith("node-caps")
        assert "yes:" in text or "yes" in text

    def test_dot(self, graph):
        dot = treeviz.tree_dot(graph)
        assert "shape=box" in dot and "shape=ellipse" in dot

    def test_svg_layout(self, graph):
        svg = treeviz.tree_svg(graph, "Figure 4")
        assert svg.startswith("<svg")
        assert "Figure 4" in svg
        assert svg.count("<polygon") >= 2  # internal nodes are diamonds

    def test_rejects_forest(self):
        graph = {"nodes": [{"id": 0, "label": "a", "leaf": True},
                           {"id": 1, "label": "b", "leaf": True}],
                 "edges": []}
        with pytest.raises(ReproError):
            treeviz.tree_text(graph)

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            treeviz.tree_svg({"nodes": [], "edges": []})


class TestClusterAttrViz:
    def test_cluster_scatter(self, blobs):
        from repro.ml.clusterers import SimpleKMeans
        km = SimpleKMeans(k=3).fit(blobs)
        out = clusterviz.cluster_scatter_ascii(blobs, km.assign(blobs))
        assert "|" in out

    def test_cluster_svg(self, blobs):
        from repro.ml.clusterers import SimpleKMeans
        km = SimpleKMeans(k=2).fit(blobs)
        doc = clusterviz.cluster_scatter_svg(blobs, km.assign(blobs))
        assert doc.startswith("<svg")

    def test_cluster_sizes(self):
        out = clusterviz.cluster_sizes_text([0, 0, 1, 2, 2, 2])
        assert "cluster 2: 3" in out

    def test_cluster_needs_numeric(self, weather):
        with pytest.raises(ReproError):
            clusterviz.cluster_scatter_ascii(weather, [0] * 14)

    def test_attribute_histogram_nominal(self, breast_cancer):
        out = attrviz.attribute_histogram(breast_cancer, "node-caps")
        assert "yes" in out and "missing: 8" in out

    def test_attribute_histogram_numeric(self, weather_numeric):
        out = attrviz.attribute_histogram(weather_numeric, "humidity")
        assert "numeric" in out and "#" in out

    def test_dataset_overview(self, weather):
        out = attrviz.dataset_overview(weather)
        assert out.count("nominal") == 5
