"""The batched invocation plane: ``<repro:Multicall>`` envelopes,
``ServiceProxy.call_many``, the server-side ``multicall`` expansion
step, and the batch-plane observables.

The contract under test: a batch is ONE wire exchange (one envelope
each way, one transport span, one client-chain traversal) while every
per-item observable — invocation counts, result-cache hits, ``op:``
spans, faults — stays item-wise, exactly as if the items had been sent
one by one.
"""

import time

import pytest

from repro import obs
from repro.errors import DeadlineExceeded, ServiceError, WsdlError
from repro.ws import soap, wsdl
from repro.ws.client import ServiceProxy
from repro.ws.container import ServiceContainer
from repro.ws.deadline import deadline_scope
from repro.ws.service import operation
from repro.ws.soap import (DEADLINE_FAULTCODE, MULTICALL_OP, CallOutcome,
                           SoapFault, SoapResponse, SubCall)
from repro.ws.transport import InProcessTransport


class Echo:
    """Mixed-operation service for batching tests."""

    def __init__(self):
        self.computed = 0

    @operation
    def shout(self, text: str) -> str:
        """Upper-case *text*."""
        self.computed += 1
        return text.upper()

    @operation
    def add(self, a: int, b: int) -> int:
        """Sum of *a* and *b*."""
        self.computed += 1
        return a + b

    @operation(cacheable=True)
    def square(self, n: int) -> int:
        """Square of *n* (pure: result-cache eligible)."""
        self.computed += 1
        return n * n

    @operation
    def boom(self, reason: str) -> str:
        """Always faults."""
        raise ServiceError(f"boom: {reason}")

    @operation
    def nap(self, seconds: float) -> str:
        """Sleep, then answer."""
        time.sleep(seconds)
        return "rested"


@pytest.fixture
def stack(tmp_path):
    container = ServiceContainer(state_dir=tmp_path)
    echo = Echo()
    definition = container.deploy(Echo, "Echo", factory=lambda: echo)
    transport = InProcessTransport(container)
    proxy = ServiceProxy.from_wsdl_text(
        wsdl.generate(definition, "inproc://Echo"), transport)
    return container, echo, proxy


class TestWireProtocol:
    """Multicall envelopes round-trip through the SOAP codec."""

    def test_request_roundtrip_mixed_operations(self):
        request = soap.multicall_request("Echo", [
            SubCall("shout", {"text": "hi"}),
            SubCall("add", {"a": 2, "b": 3}),
        ])
        back = soap.decode_request(soap.encode_request(request))
        assert soap.is_multicall(back)
        assert back.service == "Echo"
        assert soap.calls_of(back) == [
            SubCall("shout", {"text": "hi"}),
            SubCall("add", {"a": 2, "b": 3}),
        ]

    def test_batch_size_of(self):
        request = soap.multicall_request(
            "Echo", [SubCall("shout", {"text": "x"})] * 3)
        assert soap.batch_size_of(request) == 3
        plain = soap.SoapRequest("Echo", "shout", {"text": "x"})
        assert soap.batch_size_of(plain) is None

    def test_response_roundtrip_with_per_item_fault(self):
        response = SoapResponse("Echo", MULTICALL_OP, [
            CallOutcome(result={"labels": ["yes"]}),
            CallOutcome(error=SoapFault("soapenv:Server", "bad row",
                                        detail="row 7")),
            CallOutcome(result=42),
        ])
        back = soap.decode_response(soap.encode_response(response))
        outcomes = back.result
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].result == {"labels": ["yes"]}
        assert outcomes[2].result == 42
        fault = outcomes[1].fault
        assert isinstance(fault, SoapFault)
        assert (fault.faultcode, fault.faultstring, fault.detail) == \
            ("soapenv:Server", "bad row", "row 7")

    def test_deadline_fault_resurfaces_typed(self):
        response = SoapResponse("Echo", MULTICALL_OP, [
            CallOutcome(error=SoapFault(DEADLINE_FAULTCODE, "too late")),
        ])
        back = soap.decode_response(soap.encode_response(response))
        with pytest.raises(DeadlineExceeded, match="too late"):
            back.result[0].unwrap()

    def test_decode_rejects_foreign_children(self):
        request = soap.multicall_request(
            "Echo", [SubCall("shout", {"text": "x"})])
        wire = soap.encode_request(request).replace(
            b"repro:Call", b"repro:Smuggle")
        with pytest.raises(ServiceError):
            soap.decode_request(wire)

    def test_calls_of_rejects_non_batches(self):
        plain = soap.SoapRequest("Echo", MULTICALL_OP, {"calls": "nope"})
        with pytest.raises(ServiceError):
            soap.calls_of(plain)


class TestCallMany:
    def test_mixed_operations_answer_in_input_order(self, stack):
        _, echo, proxy = stack
        outcomes = proxy.call_many([
            ("add", {"a": 1, "b": 2}),
            ("shout", {"text": "batch"}),
            SubCall("add", {"a": 10, "b": 20}),
        ])
        assert [o.unwrap() for o in outcomes] == [3, "BATCH", 30]
        assert echo.computed == 3

    def test_per_item_fault_does_not_fail_siblings(self, stack):
        _, _, proxy = stack
        outcomes = proxy.call_many([
            ("shout", {"text": "ok"}),
            ("boom", {"reason": "item 1"}),
            ("shout", {"text": "fine"}),
        ])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].result == "OK"
        assert outcomes[2].result == "FINE"
        assert "item 1" in outcomes[1].fault.faultstring

    def test_raise_on_fault_unwraps(self, stack):
        _, _, proxy = stack
        results = proxy.call_many(
            [("add", {"a": 1, "b": 1}), ("add", {"a": 2, "b": 2})],
            raise_on_fault=True)
        assert results == [2, 4]
        with pytest.raises(SoapFault, match="boom"):
            proxy.call_many([("shout", {"text": "x"}),
                             ("boom", {"reason": "y"})],
                            raise_on_fault=True)

    def test_empty_batch_never_touches_the_wire(self, stack):
        _, echo, proxy = stack
        assert proxy.call_many([]) == []
        assert echo.computed == 0

    def test_wsdl_validation_applies_per_item(self, stack):
        _, echo, proxy = stack
        with pytest.raises(WsdlError, match="no operation"):
            proxy.call_many([("shout", {"text": "x"}),
                             ("nonsuch", {})])
        with pytest.raises(WsdlError, match="unknown parameter"):
            proxy.call_many([("shout", {"text": "x", "volume": 11})])
        assert echo.computed == 0  # rejected before the wire

    def test_item_wise_invocation_stats_and_cache(self, stack):
        container, echo, proxy = stack
        proxy.call_many([("square", {"n": 4}),
                         ("square", {"n": 4}),
                         ("shout", {"text": "x"})])
        # three item-wise invocations billed, one answered from cache
        stats = container.stats("Echo")
        assert stats.invocations == 3
        assert stats.cache_hits == 1
        assert echo.computed == 2
        assert obs.get_metrics().counter("ws.cache.result.hits",
                                         service="Echo").value == 1

    def test_batch_metrics(self, stack):
        _, _, proxy = stack
        proxy.call_many([("add", {"a": i, "b": i}) for i in range(5)])
        metrics = obs.get_metrics()
        assert metrics.counter("ws.batch.calls_saved",
                               service="Echo").value == 4
        snap = metrics.snapshot()
        sizes = {name: summary for name, summary
                 in snap["histograms"].items()
                 if name.startswith("ws.batch.size")}
        assert sizes, snap["histograms"].keys()
        (summary,) = sizes.values()
        assert summary["count"] == 1

    def test_deadline_expiring_mid_batch_faults_the_tail(self, stack):
        container, _, _ = stack
        request = soap.multicall_request("Echo", [
            SubCall("nap", {"seconds": 0.08}),
            SubCall("shout", {"text": "late"}),
            SubCall("shout", {"text": "later"}),
        ])
        with deadline_scope(0.04):
            outcomes = container.invoke(request).result
        assert outcomes[0].ok  # already dispatched when time ran out
        for late in outcomes[1:]:
            assert not late.ok
            assert late.fault.faultcode == DEADLINE_FAULTCODE


class TestBatchTracing:
    """One transport span per batch; per-item server spans."""

    def test_span_tree_shape(self, stack):
        _, _, proxy = stack
        obs.enable_tracing()
        proxy.call_many([("shout", {"text": "a"}),
                         ("add", {"a": 1, "b": 1})])
        spans = obs.get_tracer().collector.spans()
        names = [s.name for s in spans]
        assert names.count("send:inprocess") == 1
        assert names.count(f"soap:Echo.{MULTICALL_OP}") == 1
        assert names.count(f"dispatch:Echo.{MULTICALL_OP}") == 1
        assert names.count("op:Echo.shout") == 1
        assert names.count("op:Echo.add") == 1
        soap_span = next(s for s in spans
                         if s.name == f"soap:Echo.{MULTICALL_OP}")
        assert soap_span.attributes["batch_size"] == 2
        # the per-item spans nest under the single batch dispatch
        dispatch = next(s for s in spans
                        if s.name == f"dispatch:Echo.{MULTICALL_OP}")
        for op_span in (s for s in spans if s.name.startswith("op:")):
            assert op_span.parent_id == dispatch.span_id
