"""Stale keep-alive recovery in :class:`HttpTransport`.

A server may close a pooled keep-alive connection between exchanges
(idle timeout, restart).  The next POST on the stale socket fails with
``RemoteDisconnected``/``BadStatusLine`` even though the endpoint is
healthy — that deserves one silent retry on a fresh connection, not a
:class:`TransportError` fed to the breaker.  A fresh connection that
fails the same way keeps failing loudly: that *is* endpoint health.

Connections live in a checkout/checkin pool so concurrent callers each
own their socket for the duration of one logical call: no interleaved
request/response pairs, at most one stale retry per call, and no
spuriously double-counted breaker verdicts under a racing client pool.
"""

import http.client
import threading

import pytest

from repro import obs
from repro.errors import TransportError
from repro.ws import wsdl
from repro.ws.breaker import CircuitBreaker
from repro.ws.client import HttpTransport, ServiceProxy
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.service import operation
from repro.ws.soap import SoapRequest


class Greeter:
    """Greets people."""

    @operation
    def greet(self, name: str) -> str:
        """Compose a greeting."""
        return f"hello {name}"


@pytest.fixture
def server():
    container = ServiceContainer()
    container.deploy(Greeter, "Greeter")
    with SoapHttpServer(container) as srv:
        yield srv


def _flaky_post(transport, fail_times: int):
    """Wrap ``transport._post`` to raise RemoteDisconnected *fail_times*
    times before delegating to the real implementation."""
    real_post = transport._post
    state = {"calls": 0}
    lock = threading.Lock()

    def post(conn, request, wire, headers):
        with lock:
            state["calls"] += 1
            fail = state["calls"] <= fail_times
        if fail:
            raise http.client.RemoteDisconnected(
                "Remote end closed connection without response")
        return real_post(conn, request, wire, headers)

    transport._post = post
    return state


class TestStaleKeepAlive:
    def test_pooled_connection_gone_stale_retries_once(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        request = SoapRequest("Greeter", "greet", {"name": "ada"})
        assert transport.send(request).result == "hello ada"  # pools conn
        assert len(transport._pool) == 1

        state = _flaky_post(transport, fail_times=1)
        response = transport.send(
            SoapRequest("Greeter", "greet", {"name": "bob"}))
        assert response.result == "hello bob"
        assert state["calls"] == 2  # stale attempt + fresh retry
        assert obs.get_metrics().counter(
            "ws.transport.stale_retries").value == 1
        # the endpoint was never marked unhealthy
        assert obs.get_metrics().counter(
            "ws.transport.errors", transport="http").value == 0
        transport.close()

    def test_fresh_connection_disconnect_is_a_real_failure(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        state = _flaky_post(transport, fail_times=1)
        with pytest.raises(TransportError):
            transport.send(SoapRequest("Greeter", "greet",
                                       {"name": "ada"}))
        assert state["calls"] == 1  # nothing was pooled: no retry
        assert obs.get_metrics().counter(
            "ws.transport.stale_retries").value == 0
        transport.close()

    def test_retry_failing_too_surfaces_transport_error(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        request = SoapRequest("Greeter", "greet", {"name": "ada"})
        transport.send(request)  # pool a healthy connection

        state = _flaky_post(transport, fail_times=2)
        with pytest.raises(TransportError):
            transport.send(SoapRequest("Greeter", "greet",
                                       {"name": "bob"}))
        assert state["calls"] == 2  # one retry, not a loop
        assert transport._pool == []  # nothing broken was pooled
        transport.close()

    def test_server_restart_between_exchanges(self, server):
        """End to end: the server restarting under a pooled connection
        looks like a stale keep-alive and is healed by the retry."""
        container = ServiceContainer()
        container.deploy(Greeter, "Greeter")
        srv = SoapHttpServer(container)
        srv.start()
        try:
            transport = HttpTransport(srv.endpoint("Greeter"))
            first = transport.send(
                SoapRequest("Greeter", "greet", {"name": "ada"}))
            assert first.result == "hello ada"
            port = srv.port
            srv.stop()
            srv = SoapHttpServer(container, port=port)
            srv.start()
            second = transport.send(
                SoapRequest("Greeter", "greet", {"name": "bob"}))
            assert second.result == "hello bob"
            transport.close()
        finally:
            srv.stop()


class TestConcurrentClients:
    """The regression the pool exists for: racing callers sharing one
    transport must not interleave exchanges, mistake each other's fresh
    connections for pooled ones, or feed phantom verdicts to a breaker."""

    N_THREADS = 8
    CALLS_PER_THREAD = 10

    def test_racing_client_pool_no_spurious_breaker_counts(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        breaker = CircuitBreaker(endpoint=server.endpoint("Greeter"),
                                 failure_threshold=2)
        document = wsdl.generate(server.container.definition("Greeter"),
                                 server.endpoint("Greeter"))
        proxy = ServiceProxy.from_wsdl_text(document, transport,
                                            breaker=breaker)
        errors: list[BaseException] = []

        def caller(tag: int) -> None:
            try:
                for i in range(self.CALLS_PER_THREAD):
                    result = proxy.call("greet", name=f"t{tag}-{i}")
                    assert result == f"hello t{tag}-{i}"
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=caller, args=(tag,))
                   for tag in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        total = self.N_THREADS * self.CALLS_PER_THREAD
        metrics = obs.get_metrics()
        # every logical call produced exactly one breaker verdict —
        # successes only, no delivery failures, and the breaker stayed
        # closed throughout
        assert breaker.state == "closed"
        endpoint = server.endpoint("Greeter")
        assert metrics.counter("ws.breaker.successes",
                               endpoint=endpoint).value == total
        assert metrics.counter("ws.breaker.failures",
                               endpoint=endpoint).value == 0
        assert metrics.counter(
            "ws.transport.errors", transport="http").value == 0
        # the pool never grew beyond the number of concurrent callers
        assert len(transport._pool) <= self.N_THREADS
        transport.close()

    def test_stale_retry_under_race_is_per_call(self, server):
        """Two callers racing over a pool of stale connections each get
        their own single retry; neither observes the other's."""
        transport = HttpTransport(server.endpoint("Greeter"))
        # pool two healthy keep-alive connections
        first = transport.send(
            SoapRequest("Greeter", "greet", {"name": "a"}))
        conn_extra, _ = transport._checkout()
        second = transport.send(
            SoapRequest("Greeter", "greet", {"name": "b"}))
        transport._checkin(conn_extra)
        assert first.result == "hello a" and second.result == "hello b"
        assert len(transport._pool) == 2

        # fail each caller's *first* post (their pooled, "stale"
        # connection) — a global fail-counter would race: one caller
        # could absorb both failures and exhaust its single retry
        real_post = transport._post
        local = threading.local()
        state = {"calls": 0}
        lock = threading.Lock()

        def post(conn, request, wire, headers):
            with lock:
                state["calls"] += 1
            if not getattr(local, "failed", False):
                local.failed = True
                raise http.client.RemoteDisconnected(
                    "Remote end closed connection without response")
            return real_post(conn, request, wire, headers)

        transport._post = post
        results: list[str] = []
        errors: list[BaseException] = []

        def caller(name: str) -> None:
            try:
                results.append(transport.send(
                    SoapRequest("Greeter", "greet",
                                {"name": name})).result)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=caller, args=(n,))
                   for n in ("x", "y")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert sorted(results) == ["hello x", "hello y"]
        # four posts: each call burned one stale attempt + one retry
        assert state["calls"] == 4
        assert obs.get_metrics().counter(
            "ws.transport.stale_retries").value == 2
        assert obs.get_metrics().counter(
            "ws.transport.errors", transport="http").value == 0
        transport.close()
