"""Stale keep-alive recovery in :class:`HttpTransport`.

A server may close a pooled keep-alive connection between exchanges
(idle timeout, restart).  The next POST on the stale socket fails with
``RemoteDisconnected``/``BadStatusLine`` even though the endpoint is
healthy — that deserves one silent retry on a fresh connection, not a
:class:`TransportError` fed to the breaker.  A fresh connection that
fails the same way keeps failing loudly: that *is* endpoint health.
"""

import http.client

import pytest

from repro import obs
from repro.errors import TransportError
from repro.ws.client import HttpTransport
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.service import operation
from repro.ws.soap import SoapRequest


class Greeter:
    """Greets people."""

    @operation
    def greet(self, name: str) -> str:
        """Compose a greeting."""
        return f"hello {name}"


@pytest.fixture
def server():
    container = ServiceContainer()
    container.deploy(Greeter, "Greeter")
    with SoapHttpServer(container) as srv:
        yield srv


def _flaky_post(transport, fail_times: int):
    """Wrap ``transport._post`` to raise RemoteDisconnected *fail_times*
    times before delegating to the real implementation."""
    real_post = transport._post
    state = {"calls": 0}

    def post(request, wire, headers):
        state["calls"] += 1
        if state["calls"] <= fail_times:
            raise http.client.RemoteDisconnected(
                "Remote end closed connection without response")
        return real_post(request, wire, headers)

    transport._post = post
    return state


class TestStaleKeepAlive:
    def test_pooled_connection_gone_stale_retries_once(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        request = SoapRequest("Greeter", "greet", {"name": "ada"})
        assert transport.send(request).result == "hello ada"  # pools conn
        assert transport._conn is not None and \
            transport._conn.sock is not None

        state = _flaky_post(transport, fail_times=1)
        response = transport.send(
            SoapRequest("Greeter", "greet", {"name": "bob"}))
        assert response.result == "hello bob"
        assert state["calls"] == 2  # stale attempt + fresh retry
        assert obs.get_metrics().counter(
            "ws.transport.stale_retries").value == 1
        # the endpoint was never marked unhealthy
        assert obs.get_metrics().counter(
            "ws.transport.errors", transport="http").value == 0
        transport.close()

    def test_fresh_connection_disconnect_is_a_real_failure(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        state = _flaky_post(transport, fail_times=1)
        with pytest.raises(TransportError):
            transport.send(SoapRequest("Greeter", "greet",
                                       {"name": "ada"}))
        assert state["calls"] == 1  # nothing was pooled: no retry
        assert obs.get_metrics().counter(
            "ws.transport.stale_retries").value == 0
        transport.close()

    def test_retry_failing_too_surfaces_transport_error(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        request = SoapRequest("Greeter", "greet", {"name": "ada"})
        transport.send(request)  # pool a healthy connection

        state = _flaky_post(transport, fail_times=2)
        with pytest.raises(TransportError):
            transport.send(SoapRequest("Greeter", "greet",
                                       {"name": "bob"}))
        assert state["calls"] == 2  # one retry, not a loop
        assert transport._conn is None  # closed for the next caller
        transport.close()

    def test_server_restart_between_exchanges(self, server):
        """End to end: the server restarting under a pooled connection
        looks like a stale keep-alive and is healed by the retry."""
        container = ServiceContainer()
        container.deploy(Greeter, "Greeter")
        srv = SoapHttpServer(container)
        srv.start()
        try:
            transport = HttpTransport(srv.endpoint("Greeter"))
            first = transport.send(
                SoapRequest("Greeter", "greet", {"name": "ada"}))
            assert first.result == "hello ada"
            port = srv.port
            srv.stop()
            srv = SoapHttpServer(container, port=port)
            srv.start()
            second = transport.send(
                SoapRequest("Greeter", "greet", {"name": "bob"}))
            assert second.result == "hello bob"
            transport.close()
        finally:
            srv.stop()
