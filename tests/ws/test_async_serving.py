"""The asyncio serving plane: same envelopes as the threaded server,
front-door admission on HTTP headers, cheap 503 sheds with Retry-After,
keep-alive connections, and the bounded dispatch pool."""

import asyncio
import threading
import time

import pytest

from repro import obs
from repro.errors import OverloadedError
from repro.ws import soap, wsdl
from repro.ws.admission import AdmissionController
from repro.ws.aserve import AsyncSoapHttpServer
from repro.ws.client import HttpTransport, ServiceProxy, fetch_url
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.service import operation
from repro.ws.soap import SoapFault, SoapRequest


class Greeter:
    """Greets people."""

    @operation
    def greet(self, name: str, excited: bool = False) -> str:
        """Compose a greeting."""
        return f"hello {name}" + ("!" if excited else "")


class Sleeper:
    """Holds its worker for a moment (concurrency probe)."""

    @operation
    def nap(self, seconds: float = 0.05) -> str:
        """Sleep then answer."""
        time.sleep(float(seconds))
        return "rested"


def make_container() -> ServiceContainer:
    container = ServiceContainer()
    container.deploy(Greeter, "Greeter")
    container.deploy(Sleeper, "Sleeper")
    return container


@pytest.fixture(scope="module")
def server():
    with AsyncSoapHttpServer(make_container()) as srv:
        yield srv


class TestServesLikeTheThreadedPlane:
    def test_wsdl_and_index(self, server):
        text = fetch_url(server.wsdl_url("Greeter"))
        assert "Greeter" in text and "greet" in text
        index = fetch_url(server.base_url + "/services")
        assert set(index.splitlines()) == {"Greeter", "Sleeper"}

    def test_sync_proxy_roundtrip(self, server):
        proxy = ServiceProxy.from_wsdl_url(server.wsdl_url("Greeter"))
        assert proxy.greet(name="ada", excited=True) == "hello ada!"
        proxy.close()

    def test_async_client_roundtrip(self, server):
        document = fetch_url(server.wsdl_url("Greeter"))
        transport = HttpTransport(server.endpoint("Greeter"))
        proxy = ServiceProxy.from_wsdl_text(document, transport)

        async def drive():
            return await asyncio.gather(*[
                proxy.call_async("greet", name=f"n{i}")
                for i in range(8)])

        assert asyncio.run(drive()) == [f"hello n{i}" for i in range(8)]
        proxy.close()

    def test_envelopes_match_the_threaded_server_byte_for_byte(self):
        """Both planes share HttpGateway, so the same POST must come
        back with the identical envelope over the real wire."""
        import http.client
        request = soap.encode_request(
            SoapRequest("Greeter", "greet", {"name": "ada"}))
        bodies = []
        for server_cls in (SoapHttpServer, AsyncSoapHttpServer):
            with server_cls(make_container(), compress=False) as srv:
                conn = http.client.HTTPConnection("127.0.0.1", srv.port,
                                                  timeout=10)
                conn.request("POST", "/services/Greeter", request,
                             {"Content-Type": "text/xml"})
                response = conn.getresponse()
                assert response.status == 200
                bodies.append(response.read())
                conn.close()
        assert bodies[0] == bodies[1]
        assert soap.decode_response(
            bodies[0].decode()).result == "hello ada"

    def test_fault_still_propagates(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        with pytest.raises(SoapFault):
            transport.send(SoapRequest("Greeter", "nope", {}))
        transport.close()

    def test_unknown_paths_404(self, server):
        from repro.errors import TransportError
        with pytest.raises(TransportError):
            fetch_url(server.base_url + "/elsewhere")

    def test_keep_alive_reuses_one_connection(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        for i in range(3):
            transport.send(SoapRequest("Greeter", "greet",
                                       {"name": f"n{i}"}))
        # all three answers came over the single pooled connection
        assert len(transport._pool) == 1
        transport.close()


class TestFrontDoorAdmission:
    def test_sheds_answer_503_with_retry_after(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=0)
        with AsyncSoapHttpServer(make_container(), admission=ctl) as srv:
            blocker = ctl.admit()   # consume the only slot externally
            transport = HttpTransport(srv.endpoint("Greeter"))
            with pytest.raises(OverloadedError) as exc:
                transport.send(SoapRequest("Greeter", "greet",
                                           {"name": "x"}))
            assert exc.value.retry_after_s is not None
            assert exc.value.retry_after_s > 0
            transport.close()
            blocker.release()
            metrics = obs.get_metrics()
            assert metrics.counter("ws.http.requests", service="Greeter",
                                   status=503).value == 1

    def test_priority_headers_reach_the_controller(self):
        """A high-priority caller outranks queued low-priority ones
        purely via the X-Repro-* headers — no XML decode needed."""
        ctl = AdmissionController(max_concurrent=1, max_queue=2,
                                  queue_timeout_s=5.0)
        with AsyncSoapHttpServer(make_container(), admission=ctl,
                                 max_workers=4) as srv:
            document = fetch_url(srv.wsdl_url("Sleeper"))
            order = []
            lock = threading.Lock()

            def call(priority, label):
                transport = HttpTransport(srv.endpoint("Sleeper"))
                proxy = ServiceProxy.from_wsdl_text(document, transport)
                proxy.priority = priority
                proxy.principal = label
                try:
                    proxy.call("nap", seconds=0.1)
                    with lock:
                        order.append(label)
                finally:
                    proxy.close()

            threads = [threading.Thread(target=call, args=args)
                       for args in [(0, "first"), (0, "low"),
                                    (9, "high")]]
            threads[0].start()
            while ctl.inflight == 0:
                time.sleep(0.001)
            threads[1].start()
            while ctl.queued < 1:
                time.sleep(0.001)
            threads[2].start()
            for t in threads:
                t.join(10)
            assert order[0] == "first"
            assert order[1] == "high"     # outran the earlier low call

    def test_admitted_calls_hold_the_slot_across_dispatch(self):
        """max_concurrent bounds real running work: with one slot, two
        overlapping naps serialize instead of overlapping."""
        ctl = AdmissionController(max_concurrent=1, max_queue=4,
                                  queue_timeout_s=5.0)
        with AsyncSoapHttpServer(make_container(), admission=ctl,
                                 max_workers=4) as srv:
            starts = []

            def call():
                transport = HttpTransport(srv.endpoint("Sleeper"))
                starts.append(time.perf_counter())
                transport.send(SoapRequest("Sleeper", "nap",
                                           {"seconds": 0.1}))
                transport.close()

            threads = [threading.Thread(target=call) for _ in range(2)]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join(10)
            # two 0.1s naps through a 1-wide gate take >= 0.2s
            assert time.perf_counter() - start >= 0.2

    def test_shed_cost_is_a_fraction_of_a_served_call(self):
        """The point of the front door: rejection must not pay for
        dispatch.  Compare a shed round-trip to a served nap."""
        ctl = AdmissionController(max_concurrent=1, max_queue=0)
        with AsyncSoapHttpServer(make_container(), admission=ctl) as srv:
            transport = HttpTransport(srv.endpoint("Sleeper"))
            start = time.perf_counter()
            transport.send(SoapRequest("Sleeper", "nap",
                                       {"seconds": 0.1}))
            served_s = time.perf_counter() - start
            blocker = ctl.admit()
            start = time.perf_counter()
            with pytest.raises(OverloadedError):
                transport.send(SoapRequest("Sleeper", "nap",
                                           {"seconds": 0.1}))
            shed_s = time.perf_counter() - start
            blocker.release()
            transport.close()
            assert shed_s < served_s / 2

    def test_default_worker_pool_tracks_max_concurrent(self):
        ctl = AdmissionController(max_concurrent=3)
        server = AsyncSoapHttpServer(make_container(), admission=ctl)
        assert server.max_workers == 3
        assert AsyncSoapHttpServer(make_container()).max_workers == 8
