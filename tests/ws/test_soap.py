"""SOAP envelope tests including a hypothesis round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ServiceError
from repro.ws import soap
from repro.ws.soap import (SoapFault, SoapRequest, SoapResponse,
                           decode_request, decode_response, encode_fault,
                           encode_request, encode_response)


class TestRequests:
    def test_roundtrip_basic(self):
        req = SoapRequest("Echo", "classify",
                          {"dataset": "@relation r", "folds": 10,
                           "ratio": 0.5, "flag": True, "nothing": None})
        again = decode_request(encode_request(req))
        assert again.service == "Echo"
        assert again.operation == "classify"
        assert again.params == req.params

    def test_bytes_payload(self):
        req = SoapRequest("Img", "plot", {"data": b"\x00\x01\xff"})
        again = decode_request(encode_request(req))
        assert again.params["data"] == b"\x00\x01\xff"

    def test_json_payload(self):
        value = {"list": [1, 2.5, "x"], "nested": {"k": True}}
        req = SoapRequest("S", "op", {"payload": value})
        assert decode_request(encode_request(req)).params["payload"] \
            == value

    def test_unencodable_value(self):
        with pytest.raises(ServiceError):
            encode_request(SoapRequest("S", "op", {"x": object()}))

    def test_malformed_document(self):
        with pytest.raises(ServiceError):
            decode_request(b"this is not xml")

    def test_not_an_envelope(self):
        with pytest.raises(ServiceError):
            decode_request(b"<other/>")

    def test_xml_special_chars(self):
        req = SoapRequest("S", "op", {"text": "<a> & 'b' \"c\""})
        assert decode_request(encode_request(req)).params["text"] \
            == "<a> & 'b' \"c\""


class TestResponses:
    def test_roundtrip(self):
        resp = SoapResponse("S", "op", {"out": [1, 2]})
        again = decode_response(encode_response(resp))
        assert again.operation == "op"
        assert again.result == {"out": [1, 2]}

    def test_none_result(self):
        resp = SoapResponse("S", "op", None)
        assert decode_response(encode_response(resp)).result is None

    def test_fault_raises(self):
        wire = encode_fault(SoapFault("soapenv:Server", "boom", "detail"))
        with pytest.raises(SoapFault) as err:
            decode_response(wire)
        assert err.value.faultstring == "boom"
        assert err.value.detail == "detail"

    def test_fault_is_service_error(self):
        assert issubclass(SoapFault, ServiceError)


_values = st.one_of(
    st.text(max_size=40),
    st.integers(-2 ** 31, 2 ** 31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.none(),
    st.binary(max_size=64),
    st.lists(st.integers(-100, 100), max_size=5),
    st.dictionaries(st.text(
        alphabet=st.characters(whitelist_categories=("Ll",)),
        min_size=1, max_size=6), st.integers(0, 9), max_size=4),
)

# operation and parameter names originate from Python identifiers
_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,11}", fullmatch=True)


@given(st.dictionaries(_names, _values, max_size=6), _names, _names)
@settings(max_examples=60, deadline=None)
def test_property_request_roundtrip(params, service, operation):
    """Property: any encodable parameter dict survives the wire."""
    req = SoapRequest(service, operation, params)
    again = decode_request(encode_request(req))
    assert again.operation == operation
    assert again.params == params
