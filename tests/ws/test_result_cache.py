"""Idempotent-result caching in the container + the WSDL parse cache."""

import pytest

from repro.data import cache as datacache
from repro.obs import get_metrics
from repro.ws.client import ServiceProxy, reset_wsdl_cache
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.service import operation


class Oracle:
    """Counts real computations behind a pure facade."""

    def __init__(self):
        self.computed = 0

    @operation(cacheable=True)
    def square(self, n: int) -> int:
        """Square of *n* (pure)."""
        self.computed += 1
        return n * n

    @operation(cacheable=True)
    def table(self, n: int) -> dict:
        """A structured result (pure)."""
        self.computed += 1
        return {"n": n, "squares": [i * i for i in range(n)]}

    @operation
    def roll(self, n: int) -> int:
        """Not pure: never cached."""
        self.computed += 1
        return self.computed * n


def hits():
    return get_metrics().counter("ws.cache.result.hits",
                                 service="Oracle").value


@pytest.fixture
def deployed():
    container = ServiceContainer()
    oracle = Oracle()
    container.deploy(Oracle, "Oracle", factory=lambda: oracle)
    return container, oracle


class TestResultCache:
    def test_repeat_call_hits_the_cache(self, deployed):
        container, oracle = deployed
        assert container.call("Oracle", "square", n=12) == 144
        assert container.call("Oracle", "square", n=12) == 144
        assert oracle.computed == 1
        assert hits() == 1

    def test_different_args_miss(self, deployed):
        container, oracle = deployed
        container.call("Oracle", "square", n=2)
        container.call("Oracle", "square", n=3)
        assert oracle.computed == 2
        assert hits() == 0

    def test_hits_still_count_as_invocations(self, deployed):
        container, _ = deployed
        container.call("Oracle", "square", n=5)
        container.call("Oracle", "square", n=5)
        stats = container.stats("Oracle")
        assert stats.invocations == 2
        assert stats.cache_hits == 1
        assert stats.as_dict()["cache_hits"] == 1

    def test_uncacheable_ops_always_dispatch(self, deployed):
        container, oracle = deployed
        first = container.call("Oracle", "roll", n=1)
        second = container.call("Oracle", "roll", n=1)
        assert (first, second) == (1, 2)
        assert oracle.computed == 2

    def test_cached_results_are_isolated_copies(self, deployed):
        container, _ = deployed
        first = container.call("Oracle", "table", n=4)
        first["squares"].append(999)
        second = container.call("Oracle", "table", n=4)
        assert second["squares"] == [0, 1, 4, 9]

    def test_disabled_cache_always_dispatches(self, deployed):
        container, oracle = deployed
        datacache.set_enabled(False)
        container.call("Oracle", "square", n=7)
        container.call("Oracle", "square", n=7)
        assert oracle.computed == 2

    def test_results_shared_across_containers(self, deployed):
        container, oracle = deployed
        container.call("Oracle", "square", n=9)
        other = ServiceContainer()
        other.deploy(Oracle, "Oracle", factory=lambda: oracle)
        # purity is a property of the class, not the deployment
        assert other.call("Oracle", "square", n=9) == 81
        assert oracle.computed == 1


class TestWsdlCache:
    def test_second_import_skips_the_fetch(self):
        container = ServiceContainer()
        container.deploy(Oracle, "Oracle")
        with SoapHttpServer(container) as server:
            url = server.wsdl_url("Oracle")
            first = ServiceProxy.from_wsdl_url(url)
            second = ServiceProxy.from_wsdl_url(url)
            assert second.operations() == first.operations()
            snap = get_metrics().snapshot()["counters"]
            assert snap["ws.wsdl.cache.misses"] == 1
            assert snap["ws.wsdl.cache.hits"] == 1
            first.close()
            second.close()

    def test_reset_forces_a_refetch(self):
        container = ServiceContainer()
        container.deploy(Oracle, "Oracle")
        with SoapHttpServer(container) as server:
            url = server.wsdl_url("Oracle")
            ServiceProxy.from_wsdl_url(url).close()
            reset_wsdl_cache()
            ServiceProxy.from_wsdl_url(url).close()
            snap = get_metrics().snapshot()["counters"]
            assert snap["ws.wsdl.cache.misses"] == 2
            assert "ws.wsdl.cache.hits" not in snap

    def test_disabled_cache_fetches_every_time(self):
        container = ServiceContainer()
        container.deploy(Oracle, "Oracle")
        with SoapHttpServer(container) as server:
            datacache.set_enabled(False)
            url = server.wsdl_url("Oracle")
            ServiceProxy.from_wsdl_url(url).close()
            ServiceProxy.from_wsdl_url(url).close()
            snap = get_metrics().snapshot()["counters"]
            assert snap["ws.wsdl.cache.misses"] == 2
