"""Registry lifecycle: leases, renewal, sweep, health, SOAP verbs."""

import pytest

from repro.clock import FakeClock
from repro.errors import RegistryError
from repro.ws.registry import (HEALTH_DOWN, HEALTH_UP, RegistryService,
                               UDDIRegistry)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    return UDDIRegistry(clock=clock)


class TestLeases:
    def test_published_at_uses_injected_clock(self, registry, clock):
        clock.advance(123.0)
        entry = registry.publish("Svc", "http://h/s?wsdl")
        assert entry.published_at == pytest.approx(clock.monotonic())

    def test_unleased_entry_never_expires(self, registry, clock):
        registry.publish("Svc", "http://h/s?wsdl")
        clock.advance(10_000.0)
        assert registry.lookup("Svc").name == "Svc"
        assert registry.sweep() == []

    def test_leased_entry_expires_after_ttl(self, registry, clock):
        registry.publish("Svc", "http://h/s?wsdl", lease_ttl_s=10.0)
        clock.advance(9.9)
        assert registry.lookup("Svc")
        clock.advance(0.2)
        with pytest.raises(RegistryError):
            registry.lookup("Svc")
        assert registry.inquire("*") == []

    def test_renew_restarts_the_lease(self, registry, clock):
        registry.publish("Svc", "http://h/s?wsdl", lease_ttl_s=10.0)
        for _ in range(5):
            clock.advance(8.0)
            registry.renew("Svc")
        assert registry.lookup("Svc")

    def test_renew_after_expiry_faults(self, registry, clock):
        registry.publish("Svc", "http://h/s?wsdl", lease_ttl_s=5.0)
        clock.advance(6.0)
        with pytest.raises(RegistryError):
            registry.renew("Svc")

    def test_sweep_reaps_only_expired(self, registry, clock):
        registry.publish("A", "http://h/a?wsdl", lease_ttl_s=5.0)
        registry.publish("B", "http://h/b?wsdl", lease_ttl_s=50.0)
        registry.publish("C", "http://h/c?wsdl")
        clock.advance(10.0)
        assert registry.sweep() == ["A"]
        assert len(registry) == 2
        assert registry.sweep() == []

    def test_unpublish_withdraws(self, registry):
        registry.publish("Svc", "http://h/s?wsdl")
        registry.unpublish("Svc")
        with pytest.raises(RegistryError):
            registry.lookup("Svc")
        with pytest.raises(RegistryError):
            registry.unpublish("Svc")

    def test_len_counts_only_live(self, registry, clock):
        registry.publish("A", "http://h/a?wsdl", lease_ttl_s=1.0)
        registry.publish("B", "http://h/b?wsdl")
        assert len(registry) == 2
        clock.advance(2.0)
        assert len(registry) == 1


class TestHealth:
    def test_healthy_only_hides_down_entries(self, registry):
        registry.publish("A", "http://h/a?wsdl",
                         categories=("service:X",))
        registry.publish("B", "http://h/b?wsdl",
                         categories=("service:X",))
        registry.set_health("A", HEALTH_DOWN)
        names = [e.name for e in registry.inquire(
            "*", "service:X", healthy_only=True)]
        assert names == ["B"]
        assert len(registry.inquire("*", "service:X")) == 2

    def test_health_recovers(self, registry):
        registry.publish("A", "http://h/a?wsdl")
        registry.set_health("A", HEALTH_DOWN)
        registry.set_health("A", HEALTH_UP)
        assert [e.name for e in registry.inquire(
            "*", healthy_only=True)] == ["A"]

    def test_find_equivalents_by_port_type(self, registry):
        registry.publish("Classifier@w1", "http://a/c?wsdl",
                         port_type="ClassifierPortType")
        registry.publish("Classifier@w2", "http://b/c?wsdl",
                         port_type="ClassifierPortType")
        registry.publish("Math@w1", "http://a/m?wsdl",
                         port_type="MathPortType")
        registry.set_health("Classifier@w1", HEALTH_DOWN)
        names = [e.name for e in
                 registry.find_equivalents("ClassifierPortType")]
        assert names == ["Classifier@w2"]


class TestRegistryService:
    def test_soap_surface_round_trips_leases(self, clock):
        service = RegistryService(UDDIRegistry(clock=clock))
        entry = service.publish("Svc", "http://h/s?wsdl",
                                lease_ttl_s=10.0,
                                port_type="SvcPortType")
        assert entry["lease_ttl_s"] == 10.0
        found = service.inquire(pattern="Svc*")
        assert found[0]["expires_in_s"] == pytest.approx(10.0)
        clock.advance(8.0)
        renewed = service.renew("Svc")
        assert renewed["expires_in_s"] == pytest.approx(10.0)
        assert service.unpublish("Svc")["unpublished"] is True

    def test_soap_zero_ttl_means_no_lease(self, clock):
        service = RegistryService(UDDIRegistry(clock=clock))
        entry = service.publish("Svc", "http://h/s?wsdl",
                                lease_ttl_s=0.0)
        assert entry["lease_ttl_s"] == 0.0
        clock.advance(10_000.0)
        assert service.lookup("Svc")["name"] == "Svc"
