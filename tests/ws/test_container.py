"""Container tests: deployment, dispatch, and the §4.5 lifecycles."""

import pytest

from repro.errors import ServiceError
from repro.ws.container import ServiceContainer
from repro.ws.service import operation
from repro.ws.soap import SoapFault, SoapRequest


class Counter:
    """Stateful service: increments an in-object counter."""

    def __init__(self) -> None:
        self.count = 0

    @operation
    def bump(self) -> int:
        """Increment and return the counter."""
        self.count += 1
        return self.count

    @operation
    def crash(self) -> str:
        raise RuntimeError("deliberate")


class TestDeployment:
    def test_deploy_and_call(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(Counter, "Counter")
        assert c.call("Counter", "bump") == 1
        assert c.services() == ["Counter"]

    def test_duplicate_deploy(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(Counter)
        with pytest.raises(ServiceError):
            c.deploy(Counter)

    def test_unknown_lifecycle(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        with pytest.raises(ServiceError):
            c.deploy(Counter, lifecycle="magic")

    def test_undeploy(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(Counter, "C")
        c.undeploy("C")
        assert c.services() == []
        with pytest.raises(ServiceError):
            c.undeploy("C")

    def test_unknown_service_fault(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        with pytest.raises(SoapFault):
            c.invoke(SoapRequest("Nope", "op", {}))

    def test_factory(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        shared = Counter()
        shared.count = 100
        c.deploy(Counter, "C", factory=lambda: shared)
        assert c.call("C", "bump") == 101


class TestLifecycles:
    def test_harness_keeps_state(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(Counter, "C", lifecycle="harness")
        assert [c.call("C", "bump") for _ in range(3)] == [1, 2, 3]
        assert c.stats("C").serialize_seconds == 0.0

    def test_serialize_keeps_state_via_disk(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(Counter, "C", lifecycle="serialize")
        assert [c.call("C", "bump") for _ in range(3)] == [1, 2, 3]
        stats = c.stats("C")
        assert stats.serialize_seconds > 0.0
        assert stats.serialized_bytes > 0
        assert (tmp_path / "C.pkl").exists()

    def test_serialize_costs_more_than_harness(self, tmp_path):
        fast = ServiceContainer(state_dir=tmp_path / "fast")
        slow = ServiceContainer(state_dir=tmp_path / "slow")
        fast.deploy(Counter, "C", lifecycle="harness")
        slow.deploy(Counter, "C", lifecycle="serialize")
        for _ in range(5):
            fast.call("C", "bump")
            slow.call("C", "bump")
        assert slow.stats("C").serialize_seconds > \
            fast.stats("C").serialize_seconds

    def test_reset_clears_state(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(Counter, "C", lifecycle="serialize")
        c.call("C", "bump")
        c.reset("C")
        assert not (tmp_path / "C.pkl").exists()
        assert c.call("C", "bump") == 1  # fresh instance

    def test_lifecycle_introspection(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(Counter, "C", lifecycle="serialize")
        assert c.lifecycle("C") == "serialize"


class TestFaults:
    def test_application_error_becomes_fault(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(Counter, "C")
        with pytest.raises(SoapFault) as err:
            c.call("C", "crash")
        assert "deliberate" in err.value.faultstring
        assert c.stats("C").faults == 1

    def test_stats_count_invocations(self, tmp_path):
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(Counter, "C")
        c.call("C", "bump")
        c.call("C", "bump")
        stats = c.stats("C")
        assert stats.invocations == 2
        assert stats.dispatch_seconds > 0
        assert stats.as_dict()["invocations"] == 2
