"""HTTP hosting, client proxies, registry and transports."""

import pytest

from repro.errors import RegistryError, TransportError, WsdlError
from repro.ws import soap
from repro.ws.client import HttpTransport, ServiceProxy, fetch_url
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.registry import RegistryService, UDDIRegistry
from repro.ws.service import operation
from repro.ws.soap import SoapFault, SoapRequest
from repro.ws.transport import (FailingTransport, InProcessTransport, LAN,
                                NetworkModel, SimulatedTransport, WAN)


class Greeter:
    """Greets people."""

    @operation
    def greet(self, name: str, excited: bool = False) -> str:
        """Compose a greeting."""
        return f"hello {name}" + ("!" if excited else "")


@pytest.fixture(scope="module")
def server():
    container = ServiceContainer()
    container.deploy(Greeter, "Greeter")
    with SoapHttpServer(container) as srv:
        yield srv


class TestHttp:
    def test_wsdl_endpoint(self, server):
        text = fetch_url(server.wsdl_url("Greeter"))
        assert "Greeter" in text and "greet" in text

    def test_service_index(self, server):
        assert fetch_url(server.base_url + "/services") == "Greeter"

    def test_unknown_service_404(self, server):
        with pytest.raises(TransportError):
            fetch_url(server.wsdl_url("Nothing"))

    def test_invoke_via_proxy(self, server):
        proxy = ServiceProxy.from_wsdl_url(server.wsdl_url("Greeter"))
        assert proxy.greet(name="ada") == "hello ada"
        assert proxy.call("greet", name="bob", excited=True) == \
            "hello bob!"
        proxy.close()

    def test_proxy_validates_params(self, server):
        proxy = ServiceProxy.from_wsdl_url(server.wsdl_url("Greeter"))
        with pytest.raises(WsdlError):
            proxy.call("greet", wrong="x")
        with pytest.raises(WsdlError):
            proxy.call("greet")  # missing required
        with pytest.raises(WsdlError):
            proxy.call("unknownOp")
        proxy.close()

    def test_fault_propagates_over_http(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        with pytest.raises(SoapFault):
            transport.send(SoapRequest("Greeter", "nope", {}))
        transport.close()

    def test_unreachable_endpoint(self):
        transport = HttpTransport("http://127.0.0.1:1/services/X",
                                  timeout=0.3)
        with pytest.raises(TransportError):
            transport.send(SoapRequest("X", "op", {}))

    def test_byte_accounting(self, server):
        transport = HttpTransport(server.endpoint("Greeter"))
        transport.send(SoapRequest("Greeter", "greet", {"name": "x"}))
        assert transport.bytes_sent > 0
        assert transport.bytes_received > 0
        transport.close()


class TestRegistry:
    def test_publish_inquire_lookup(self):
        reg = UDDIRegistry()
        reg.publish("J48", "http://host/services/J48?wsdl",
                    ("data-mining", "trees"))
        reg.publish("Plot", "http://host/services/Plot?wsdl",
                    ("visualisation",))
        assert len(reg) == 2
        assert [e.name for e in reg.inquire("J*")] == ["J48"]
        assert [e.name for e in reg.inquire(category="visualisation")] \
            == ["Plot"]
        assert reg.lookup("J48").wsdl_url.endswith("J48?wsdl")

    def test_republish_overwrites(self):
        reg = UDDIRegistry()
        reg.publish("S", "http://a")
        reg.publish("S", "http://b")
        assert reg.lookup("S").wsdl_url == "http://b"
        assert len(reg) == 1

    def test_unpublish(self):
        reg = UDDIRegistry()
        reg.publish("S", "http://a")
        reg.unpublish("S")
        with pytest.raises(RegistryError):
            reg.lookup("S")
        with pytest.raises(RegistryError):
            reg.unpublish("S")

    def test_publish_validation(self):
        with pytest.raises(RegistryError):
            UDDIRegistry().publish("", "http://a")

    def test_registry_as_service(self):
        container = ServiceContainer()
        container.deploy(RegistryService, "Registry")
        entry = container.call("Registry", "publish", name="X",
                               wsdl_url="http://x", categories=["c"])
        assert entry["name"] == "X"
        found = container.call("Registry", "inquire", pattern="X")
        assert len(found) == 1


class TestTransports:
    def test_in_process(self):
        container = ServiceContainer()
        container.deploy(Greeter, "Greeter")
        t = InProcessTransport(container)
        resp = t.send(SoapRequest("Greeter", "greet", {"name": "z"}))
        assert resp.result == "hello z"
        assert t.bytes_sent > 0

    def test_simulated_costs(self):
        container = ServiceContainer()
        container.deploy(Greeter, "Greeter")
        t = SimulatedTransport(InProcessTransport(container), WAN)
        t.send(SoapRequest("Greeter", "greet", {"name": "y" * 1000}))
        assert t.messages == 2  # request + response
        assert t.virtual_seconds > 2 * WAN.latency_s
        assert t.bytes_on_wire > 1000

    def test_lan_faster_than_wan(self):
        assert LAN.transfer_time(10 ** 6) < WAN.transfer_time(10 ** 6)

    def test_network_model_math(self):
        model = NetworkModel(latency_s=0.01, bandwidth_bps=1000)
        assert model.transfer_time(500) == pytest.approx(0.51)

    def test_failing_transport(self):
        container = ServiceContainer()
        container.deploy(Greeter, "Greeter")
        t = FailingTransport(InProcessTransport(container), failures=2)
        for _ in range(2):
            with pytest.raises(TransportError):
                t.send(SoapRequest("Greeter", "greet", {"name": "a"}))
        resp = t.send(SoapRequest("Greeter", "greet", {"name": "a"}))
        assert resp.result == "hello a"
        assert t.attempts == 3
