"""Data-plane fast path: payload store, by-reference transfer, gzip.

Covers the tentpole contracts: digest stability, LRU bounds, ref
round-trips over the in-process and HTTP transports, the transparent
full-payload fallback after a peer miss, gzip negotiation against a
non-compressing peer, and corrupt-ref rejection under chaos.
"""

import hashlib
import random
import string

import pytest

from repro import obs
from repro.chaos import ChaosController, ChaosTransport
from repro.errors import ReproError, TransportError
from repro.obs import get_metrics
from repro.ws import payload, soap
from repro.ws.client import HttpTransport
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.payload import (PayloadMissError, PayloadRef, PayloadStore,
                              payload_digest_ok)
from repro.ws.service import operation
from repro.ws.soap import SoapRequest
from repro.ws.transport import (InProcessTransport, SimulatedTransport,
                                payload_fallback)

# a large, high-entropy document: well above MIN_REF_BYTES, and barely
# compressible, so ref-sized envelopes beat even gzipped inline sends
BIG = "".join(random.Random(0).choices(
    string.ascii_letters + string.digits + ",.\n", k=8000))


class Echo:
    """Length-reporting echo service."""

    @operation
    def measure(self, document: str) -> int:
        """Length of *document*."""
        return len(document)

    @operation
    def tail(self, document: str, n: int = 10) -> str:
        """Last *n* characters of *document*."""
        return document[-n:]


def make_transport():
    container = ServiceContainer()
    container.deploy(Echo, "Echo")
    return InProcessTransport(container)


def counter_value(name, **labels):
    return get_metrics().counter(name, **labels).value


class TestDigestAndStore:
    def test_digest_stability(self):
        data = BIG.encode()
        assert payload.digest_bytes(data) == \
            hashlib.sha256(data).hexdigest()
        assert payload.digest_bytes(data) == payload.digest_bytes(data)
        assert payload.digest_bytes(b"x") != payload.digest_bytes(b"y")

    def test_put_is_idempotent(self):
        store = PayloadStore()
        d1 = store.put(b"hello world")
        d2 = store.put(b"hello world")
        assert d1 == d2
        assert len(store) == 1
        assert store.get(d1) == b"hello world"

    def test_entry_bound_evicts_lru(self):
        store = PayloadStore(max_entries=3)
        digests = [store.put(f"blob-{i}".encode()) for i in range(5)]
        assert len(store) == 3
        assert digests[0] not in store
        assert digests[1] not in store
        assert digests[4] in store

    def test_byte_bound_evicts_lru(self):
        store = PayloadStore(max_entries=100, max_bytes=250)
        digests = [store.put(bytes([i]) * 100) for i in range(4)]
        assert store.total_bytes <= 250
        assert digests[3] in store
        assert digests[0] not in store

    def test_integrity_verified_on_get(self):
        store = PayloadStore()
        digest = store.put(b"pristine")
        # corrupt the stored blob behind the digest's back
        store._cache.put(digest, b"tampered", weight=8)
        with pytest.raises(TransportError, match="digest mismatch"):
            store.get(digest)
        assert counter_value("ws.payload.integrity_failures") == 1

    def test_missing_digest_is_none(self):
        assert PayloadStore().get("0" * 64) is None


class TestExternalize:
    def test_first_send_inline_then_by_reference(self):
        peer = payload.PeerState()
        request = SoapRequest("Echo", "measure", {"document": BIG})
        first = payload.externalize(request, peer)
        assert first.params["document"] == BIG  # peer must absorb first
        second = payload.externalize(request, peer)
        ref = second.params["document"]
        assert isinstance(ref, PayloadRef)
        assert ref.size == len(BIG.encode())
        assert counter_value("ws.payload.inline_sends") == 1
        assert counter_value("ws.payload.ref_sends") == 1
        assert counter_value("ws.payload.bytes_saved") == len(BIG)

    def test_small_params_stay_inline(self):
        peer = payload.PeerState()
        request = SoapRequest("Echo", "measure", {"document": "tiny"})
        for _ in range(3):
            assert payload.externalize(request, peer) is request

    def test_disabled_passthrough(self):
        payload.set_enabled(False)
        peer = payload.PeerState()
        request = SoapRequest("Echo", "measure", {"document": BIG})
        assert payload.externalize(request, peer) is request
        assert payload.externalize(request, peer) is request

    def test_internalize_restores_values(self):
        peer = payload.PeerState()
        request = SoapRequest("Echo", "measure", {"document": BIG})
        payload.externalize(request, peer)
        ref_request = payload.externalize(request, peer)
        restored = payload.internalize(ref_request)
        assert restored.params["document"] == BIG

    def test_fallback_resends_inline_and_resets_peer(self):
        peer = payload.PeerState()
        request = SoapRequest("Echo", "measure", {"document": BIG})
        payload.externalize(request, peer)  # peer "learns" the digest
        seen = []

        def send_once(outbound):
            seen.append(outbound)
            if isinstance(outbound.params["document"], PayloadRef):
                raise PayloadMissError("deadbeef" * 8)
            return "response"

        assert payload_fallback(send_once, request, peer) == "response"
        assert isinstance(seen[0].params["document"], PayloadRef)
        assert seen[1].params["document"] == BIG
        assert len(peer) == 0
        assert counter_value("ws.payload.fallbacks") == 1


class TestRefRoundTrip:
    def test_inprocess_round_trip(self):
        transport = make_transport()
        request = SoapRequest("Echo", "measure", {"document": BIG})
        assert transport.send(request).result == len(BIG)
        sent_first = transport.bytes_sent
        assert transport.send(request).result == len(BIG)
        sent_second = transport.bytes_sent - sent_first
        assert sent_second < sent_first / 4  # ref, not document
        assert counter_value("ws.payload.ref_hits") == 1

    def test_http_round_trip(self):
        # pin the classic store-ref path: with the shm tier on, a
        # localhost HTTP peer negotiates same-host via X-Repro-Boot and
        # repeat sends ship via="shm" refs instead (tests/ws/test_shm_payload.py)
        payload.set_shm_enabled(False)
        container = ServiceContainer()
        container.deploy(Echo, "Echo")
        with SoapHttpServer(container) as server:
            transport = HttpTransport(server.endpoint("Echo"))
            request = SoapRequest("Echo", "tail", {"document": BIG,
                                                   "n": 5})
            assert transport.send(request).result == BIG[-5:]
            first = transport.bytes_sent
            assert transport.send(request).result == BIG[-5:]
            assert transport.bytes_sent - first < first
            assert counter_value("ws.payload.ref_hits") == 1
            transport.close()

    def test_simulated_bills_ref_sized_envelopes(self):
        transport = SimulatedTransport(make_transport())
        request = SoapRequest("Echo", "measure", {"document": BIG})
        transport.send(request)
        first_wire = transport.bytes_on_wire
        transport.send(request)
        transport.send(request)
        repeat_wire = (transport.bytes_on_wire - first_wire) / 2
        assert repeat_wire < first_wire / 2
        # and the first send itself was billed post-compression
        envelope = soap.encode_request(request)
        assert first_wire < len(envelope)

    def test_unknown_ref_raises_miss(self):
        transport = make_transport()
        request = SoapRequest(
            "Echo", "measure",
            {"document": PayloadRef("ab" * 32, 10, "str")})
        with pytest.raises(PayloadMissError):
            transport.send(request)

    def test_miss_error_is_transient_transport_error(self):
        err = PayloadMissError("ab" * 32)
        assert isinstance(err, TransportError)
        assert err.digest == "ab" * 32


class TestHttpMissFault:
    def test_server_answers_miss_fault_for_unknown_ref(self):
        container = ServiceContainer()
        container.deploy(Echo, "Echo")
        with SoapHttpServer(container) as server:
            # hand-craft a ref the server cannot hold, bypassing the
            # client-side externalization that would have shipped it
            request = SoapRequest(
                "Echo", "measure",
                {"document": PayloadRef(
                    payload.digest_bytes(b"never shipped"), 13, "str")})
            transport = HttpTransport(server.endpoint("Echo"))
            payload.reset_payload_store()
            with pytest.raises(PayloadMissError):
                transport._exchange(request, _NullSpan(), 0.0)
            transport.close()


class _NullSpan:
    recording = False

    def set_attribute(self, *a):
        pass


class TestGzipNegotiation:
    def test_round_trip_against_non_compressing_server(self):
        container = ServiceContainer()
        container.deploy(Echo, "Echo")
        with SoapHttpServer(container, compress=False) as server:
            transport = HttpTransport(server.endpoint("Echo"))
            request = SoapRequest("Echo", "tail",
                                  {"document": BIG, "n": 4})
            assert transport.send(request).result == BIG[-4:]
            transport.close()

    def test_non_compressing_client_against_compressing_server(self):
        container = ServiceContainer()
        container.deploy(Echo, "Echo")
        with SoapHttpServer(container) as server:
            transport = HttpTransport(server.endpoint("Echo"),
                                      compress=False)
            request = SoapRequest("Echo", "measure", {"document": BIG})
            assert transport.send(request).result == len(BIG)
            transport.close()

    def test_large_request_travels_compressed(self):
        container = ServiceContainer()
        container.deploy(Echo, "Echo")
        with SoapHttpServer(container) as server:
            transport = HttpTransport(server.endpoint("Echo"))
            request = SoapRequest("Echo", "measure", {"document": BIG})
            assert transport.send(request).result == len(BIG)
            envelope_size = len(soap.encode_request(request))
            assert transport.bytes_sent < envelope_size
            assert counter_value("ws.compress.messages") >= 1
            transport.close()

    def test_small_bodies_stay_identity(self):
        body = b"<tiny/>"
        wire, encoding = payload.maybe_compress(body)
        assert wire == body and encoding is None

    def test_decompress_rejects_unknown_encoding(self):
        with pytest.raises(TransportError):
            payload.decompress(b"x", "br")

    def test_decompress_rejects_corrupt_gzip(self):
        with pytest.raises(TransportError):
            payload.decompress(b"not gzip at all", "gzip")


class TestChaosCorruptRef:
    def test_corrupt_ref_is_rejected(self):
        controller = ChaosController("corrupt=1", seed=3)
        transport = SimulatedTransport(
            ChaosTransport(make_transport(), controller, "Echo"))
        request = SoapRequest("Echo", "measure", {"document": BIG})
        # first send is inline, so corruption hits the response (the
        # pre-existing behaviour); the payload still gets absorbed
        with pytest.raises(ReproError):
            transport.send(request)
        # second send goes by reference and the ref digest is mangled in
        # flight: the receiver must refuse to substitute other bytes
        with pytest.raises(PayloadMissError):
            transport.send(request)
        assert counter_value("ws.payload.miss") >= 1
        assert ("Echo", "corrupt") in controller.injections()

    def test_corruption_deterministic_for_fixed_seed(self):
        outcomes = []
        for _ in range(2):
            payload.reset_payload_store()
            obs.reset_metrics()
            controller = ChaosController("corrupt=0.5", seed=42)
            transport = SimulatedTransport(
                ChaosTransport(make_transport(), controller, "Echo"))
            request = SoapRequest("Echo", "measure", {"document": BIG})
            run = []
            for _ in range(6):
                try:
                    transport.send(request)
                    run.append("ok")
                except ReproError as exc:
                    run.append(type(exc).__name__)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert outcomes[0] != ["ok"] * 6  # the plan did fire

    def test_refless_traffic_never_rolls_the_extra_die(self):
        # a corrupt plan over small-payload traffic behaves exactly as
        # it did before payload refs existed: responses get truncated,
        # and the fault sequence for a fixed seed is unchanged
        controller = ChaosController("corrupt=1", seed=3)
        transport = ChaosTransport(make_transport(), controller, "Echo")
        request = SoapRequest("Echo", "measure", {"document": "small"})
        with pytest.raises(ReproError):
            transport.send(request)
        assert [k for _, k in controller.injections()] == ["corrupt"]


class TestResolveValidation:
    def test_malformed_digest_is_a_miss(self):
        with pytest.raises(PayloadMissError):
            payload.resolve("not-a-digest", "str")
        assert counter_value("ws.payload.miss") == 1

    def test_bytes_kind_round_trip(self):
        blob = bytes(range(256)) * 8
        digest = payload.get_payload_store().put(blob)
        assert payload.resolve(digest, "bytes") == blob

    def test_digest_helper(self):
        good = payload.digest_bytes(b"x")
        assert payload_digest_ok(good)
        assert not payload_digest_ok("xyz")
        assert not payload_digest_ok(good[:-1] + "G")
