"""What an overload *means* end to end: the ``repro:Overloaded`` fault
round-trips every wire, retry policies back off instead of re-offering,
circuit breakers treat sheds as proof of life, and chaos delays compose
deterministically with admission buckets on a shared fake clock."""

import pytest

from repro import obs
from repro.chaos.controller import ChaosController
from repro.clock import FakeClock
from repro.errors import OverloadedError, TransportError
from repro.workflow.faults import TRANSIENT_ERRORS, RetryPolicy
from repro.workflow.model import Task, make_tool
from repro.ws import soap
from repro.ws.admission import AdmissionController
from repro.ws.breaker import CircuitBreaker
from repro.ws.client import HttpTransport, ServiceProxy, fetch_url
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.service import operation
from repro.ws.soap import SoapRequest
from repro.ws.transport import InProcessTransport


class Greeter:
    """Greets people."""

    @operation
    def greet(self, name: str) -> str:
        """Compose a greeting."""
        return f"hello {name}"


def saturated_container() -> tuple[ServiceContainer, AdmissionController]:
    """A container whose admission chain step sheds every call."""
    ctl = AdmissionController(max_concurrent=1, max_queue=0)
    container = ServiceContainer(admission=ctl)
    container.deploy(Greeter, "Greeter")
    ctl.admit()   # hold the only slot forever: everything sheds
    return container, ctl


class TestFaultOnTheWire:
    def test_fault_encodes_and_decodes_symmetrically(self):
        fault = soap.fault_for(OverloadedError("busy", retry_after_s=0.25))
        assert fault.faultcode == soap.OVERLOAD_FAULTCODE
        wire = soap.encode_fault(fault)
        with pytest.raises(OverloadedError) as exc:
            soap.decode_response(wire)
        assert exc.value.retry_after_s == pytest.approx(0.25)

    def test_shed_round_trips_in_process(self):
        container, _ = saturated_container()
        transport = InProcessTransport(container)
        with pytest.raises(OverloadedError) as exc:
            transport.send(SoapRequest("Greeter", "greet", {"name": "x"}))
        assert exc.value.retry_after_s is not None

    def test_shed_round_trips_over_http(self):
        """The sync serving plane: the admission chain step sheds, the
        gateway encodes ``repro:Overloaded``, the client decodes it."""
        container, ctl = saturated_container()
        with SoapHttpServer(container) as server:
            transport = HttpTransport(server.endpoint("Greeter"))
            with pytest.raises(OverloadedError) as exc:
                transport.send(SoapRequest("Greeter", "greet",
                                           {"name": "x"}))
            assert exc.value.retry_after_s is not None
            transport.close()


class TestRetrySemantics:
    def test_overloaded_is_not_transient(self):
        assert not issubclass(OverloadedError, TRANSIENT_ERRORS)

    def test_retry_policy_does_not_reoffer_a_shed(self):
        tool = make_tool("t", ["x"], ["y"], lambda x: [x])
        task = Task("t1", tool)
        attempts = []

        def runner(inputs, parameters):
            attempts.append(1)
            raise OverloadedError("shed", retry_after_s=0.1)

        policy = RetryPolicy(max_retries=5)
        with pytest.raises(OverloadedError):
            policy.run_task(task, [1], {}, runner=runner)
        # exactly one offer: re-offering into an overloaded server is
        # how brownouts become outages
        assert attempts == [1]
        assert obs.get_metrics().counter("workflow.retries",
                                         task="t1").value == 0

    def test_transport_errors_still_retry(self):
        tool = make_tool("t", ["x"], ["y"], lambda x: [x])
        task = Task("t2", tool)
        attempts = []

        def runner(inputs, parameters):
            attempts.append(1)
            if len(attempts) < 3:
                raise TransportError("flaky")
            return [inputs[0]]

        assert RetryPolicy(max_retries=5).run_task(
            task, [1], {}, runner=runner) == [1]
        assert len(attempts) == 3


class TestBreakerSemantics:
    def test_sheds_do_not_trip_the_breaker(self):
        """A shed is an *answer* — the endpoint is alive, just busy.
        Tripping on it would turn recoverable brownouts into failover
        storms."""
        container, _ = saturated_container()
        breaker = CircuitBreaker(endpoint="inproc://Greeter",
                                 failure_threshold=2)
        with SoapHttpServer(container) as server:
            document = fetch_url(server.wsdl_url("Greeter"))
            proxy = ServiceProxy.from_wsdl_text(
                document, InProcessTransport(container), breaker=breaker)
            for _ in range(6):   # 3x the failure threshold
                with pytest.raises(OverloadedError):
                    proxy.call("greet", name="x")
        assert breaker.state == "closed"
        metrics = obs.get_metrics()
        assert metrics.counter("ws.breaker.failures",
                               endpoint="inproc://Greeter").value == 0
        assert metrics.counter("ws.breaker.successes",
                               endpoint="inproc://Greeter").value == 6


class TestChaosComposition:
    """Chaos delays and admission buckets share one fake clock, so
    their interplay is exactly reproducible: the injected latency *is*
    the pacing that refills the bucket."""

    @staticmethod
    def _drive(seed: int, spec: str, calls: int = 30) -> list[str]:
        clock = FakeClock()
        chaos = ChaosController(spec, seed=seed, clock=clock)
        ctl = AdmissionController(max_concurrent=8, max_queue=0,
                                  rate=25.0, burst=1.0, clock=clock)
        outcomes = []
        for _ in range(calls):
            try:
                chaos.perturb("ws:Greeter.greet")
            except TransportError:
                outcomes.append("dropped")
                continue
            try:
                ctl.admit(principal="c").release()
                outcomes.append("served")
            except OverloadedError:
                outcomes.append("shed")
        return outcomes

    def test_same_seed_same_interleaving(self):
        first = self._drive(seed=7, spec="delay=20ms~40ms,drop=0.2")
        second = self._drive(seed=7, spec="delay=20ms~40ms,drop=0.2")
        assert first == second
        # the mix is genuinely mixed: every outcome class occurred
        assert {"served", "shed", "dropped"} <= set(first)

    def test_different_seed_different_interleaving(self):
        baseline = self._drive(seed=7, spec="delay=20ms~40ms,drop=0.2")
        assert self._drive(seed=8, spec="delay=20ms~40ms,drop=0.2") \
            != baseline

    def test_enough_injected_delay_eliminates_sheds(self):
        """50ms of injected latency at a 25/s bucket means every call
        arrives with a token accrued: chaos *pacing* heals admission."""
        outcomes = self._drive(seed=3, spec="delay=50ms")
        assert "shed" not in outcomes
        fast = self._drive(seed=3, spec="delay=10ms")
        assert "shed" in fast
