"""Unix-socket transport: same SOAP conversation, no TCP stack.

The ``unix://`` scheme percent-encodes the socket path as the URL
authority; :class:`~repro.ws.transport.UnixSocketTransport` subclasses
the HTTP byte mover, so framing, pooling, stale-connection retry and
the interceptor chain are inherited — which the golden-parity test at
the bottom proves: an identical call sequence produces the *same span
tree* over TCP and over the socket, modulo the ``send:`` kind.
"""

import asyncio
import json
import os

import pytest

from repro import obs
from repro.errors import TransportError
from repro.ws import shm
from repro.ws.aserve import AsyncSoapHttpServer
from repro.ws.client import ServiceProxy, fetch_url
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.service import operation
from repro.ws.transport import (HttpTransport, UnixSocketTransport,
                                parse_unix_url, transport_for, unix_url)


class Greeter:
    """Greets people."""

    @operation
    def greet(self, name: str, excited: bool = False) -> str:
        """Compose a greeting."""
        return f"hello {name}" + ("!" if excited else "")


def make_container() -> ServiceContainer:
    container = ServiceContainer()
    container.deploy(Greeter, "Greeter")
    return container


class TestUnixUrls:
    def test_round_trip_encodes_the_path_as_authority(self, tmp_path):
        sock = str(tmp_path / "w.sock")
        url = unix_url(sock, "/services/Greeter")
        assert url.startswith("unix://")
        assert parse_unix_url(url) == (sock, "/services/Greeter")

    def test_resource_defaults_to_root(self, tmp_path):
        sock = str(tmp_path / "w.sock")
        assert parse_unix_url(unix_url(sock)) == (sock, "/")

    def test_case_of_the_socket_path_survives(self, tmp_path):
        # urlparse().hostname lowercases; the codec must not
        sock = str(tmp_path / "MixedCase.Sock")
        assert parse_unix_url(unix_url(sock))[0] == sock

    def test_non_unix_urls_are_rejected(self):
        with pytest.raises(TransportError, match="unsupported endpoint"):
            parse_unix_url("http://127.0.0.1:1/services/X")

    def test_transport_for_picks_the_mover_by_scheme(self, tmp_path):
        uds = transport_for(unix_url(str(tmp_path / "a.sock"), "/x"))
        tcp = transport_for("http://127.0.0.1:9/services/X")
        assert isinstance(uds, UnixSocketTransport) and uds.kind == "uds"
        assert isinstance(tcp, HttpTransport) and tcp.kind == "http"


class TestThreadedServerOverUds:
    @pytest.fixture()
    def server(self, tmp_path):
        path = str(tmp_path / "httpd.sock")
        with SoapHttpServer(make_container(), uds_path=path) as srv:
            yield srv

    def test_round_trip_and_socket_cleanup(self, server):
        transport = UnixSocketTransport(
            server.uds_endpoint("Greeter"))
        proxy = ServiceProxy.from_wsdl_text(
            fetch_url(server.wsdl_url("Greeter")), transport)
        assert proxy.greet(name="ada", excited=True) == "hello ada!"
        proxy.close()

    def test_wsdl_import_over_the_socket(self, server):
        # the whole conversation stays on the socket: fetch the WSDL
        # via unix:// and the bound proxy keeps the uds transport
        proxy = ServiceProxy.from_wsdl_url(
            server.uds_endpoint("Greeter") + "?wsdl")
        assert isinstance(proxy.transport, UnixSocketTransport)
        assert proxy.greet(name="grace") == "hello grace"
        proxy.close()

    def test_same_listener_shares_the_tcp_gateway(self, server):
        tcp = ServiceProxy.from_wsdl_url(server.wsdl_url("Greeter"))
        uds = ServiceProxy.from_wsdl_url(
            server.uds_endpoint("Greeter") + "?wsdl")
        assert tcp.greet(name="x") == uds.greet(name="x")
        tcp.close()
        uds.close()

    def test_stop_unlinks_the_socket(self, tmp_path):
        path = str(tmp_path / "gone.sock")
        server = SoapHttpServer(make_container(), uds_path=path).start()
        assert os.path.exists(path)
        server.stop()
        assert not os.path.exists(path)


class TestAsyncServerOverUds:
    @pytest.fixture()
    def server(self, tmp_path):
        path = str(tmp_path / "aserve.sock")
        with AsyncSoapHttpServer(make_container(),
                                 uds_path=path) as srv:
            yield srv

    def test_sync_round_trip(self, server):
        proxy = ServiceProxy.from_wsdl_url(
            server.uds_endpoint("Greeter") + "?wsdl")
        assert proxy.greet(name="ada") == "hello ada"
        proxy.close()

    def test_async_round_trip(self, server):
        proxy = ServiceProxy.from_wsdl_url(
            server.uds_endpoint("Greeter") + "?wsdl")

        async def drive():
            return await proxy.call_async("greet", name="alan",
                                          excited=True)

        assert asyncio.run(drive()) == "hello alan!"
        proxy.close()


class TestBootNegotiation:
    def test_transport_learns_the_peer_boot_id(self, tmp_path):
        path = str(tmp_path / "boot.sock")
        with SoapHttpServer(make_container(), uds_path=path) as srv:
            transport = UnixSocketTransport(
                srv.uds_endpoint("Greeter"))
            proxy = ServiceProxy.from_wsdl_text(
                fetch_url(srv.wsdl_url("Greeter")), transport)
            assert not transport.same_host()  # nothing learned yet
            proxy.greet(name="x")
            assert transport.peer_boot == shm.boot_id()
            assert transport.same_host()
            proxy.close()

    def test_tcp_transport_learns_it_too(self):
        # boot-id negotiation is header-based, not scheme-based: a TCP
        # peer on the same kernel is just as eligible for shm hand-off
        with SoapHttpServer(make_container()) as srv:
            transport = HttpTransport(srv.endpoint("Greeter"))
            proxy = ServiceProxy.from_wsdl_text(
                fetch_url(srv.wsdl_url("Greeter")), transport)
            proxy.greet(name="x")
            assert transport.same_host()
            proxy.close()


def _span_tree(spans):
    by_id = {s.span_id: s for s in spans}
    children: dict[str, list] = {}
    roots = []
    for span in spans:
        if span.parent_id and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    def node(span):
        name = span.name.replace("send:uds", "send:http")
        kids = sorted((node(c) for c in children.get(span.span_id, [])),
                      key=json.dumps)
        return [name, kids]

    return sorted((node(r) for r in roots), key=json.dumps)


class TestGoldenTraceParity:
    def test_uds_and_tcp_produce_the_same_span_tree(self, tmp_path):
        """The socket slots under the interceptor chain unchanged: an
        identical call sequence traces identically over either mover,
        modulo the ``send:`` kind (normalised here)."""
        path = str(tmp_path / "parity.sock")

        def run(wsdl_url: str):
            obs.reset_tracing()
            obs.enable_tracing()
            proxy = ServiceProxy.from_wsdl_url(wsdl_url)
            proxy.greet(name="ada")
            proxy.greet(name="grace", excited=True)
            with pytest.raises(Exception, match="unknown parameter"):
                proxy.call("greet", nobody="x")
            proxy.close()
            return _span_tree(obs.get_tracer().collector.spans())

        with SoapHttpServer(make_container(), uds_path=path) as srv:
            from repro.ws.client import reset_wsdl_cache
            tcp_tree = run(srv.wsdl_url("Greeter"))
            reset_wsdl_cache()
            uds_tree = run(srv.uds_endpoint("Greeter") + "?wsdl")
        assert tcp_tree == uds_tree
        assert tcp_tree  # the sequence actually traced something
