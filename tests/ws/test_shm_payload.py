"""The shared-memory payload tier: publish/map/verify/sweep.

Covers the :mod:`repro.ws.shm` segment store primitives and their
:mod:`repro.ws.payload` wrapping — ``via="shm"`` refs, zero-copy
resolution, miss fallbacks — plus the crash-hygiene regression: a
SIGKILLed producer's segments are reclaimed by :func:`sweep_orphans`,
never leaked.
"""

import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro.ws import payload, shm
from repro.ws.payload import PayloadMissError, PayloadRef
from repro.ws.soap import SoapRequest

pytestmark = pytest.mark.skipif(not shm.supported(),
                                reason="no POSIX shared memory here")

BLOB = os.urandom(64 * 1024)
DIGEST = payload.digest_bytes(BLOB)


def shm_path(digest: str) -> str:
    return "/dev/shm/" + shm.segment_name(digest)


class TestSegmentStore:
    def test_publish_then_attach_round_trips_zero_copy(self):
        store = shm.SegmentStore()
        try:
            assert store.publish(DIGEST, BLOB)
            assert store.holds(DIGEST)
            view = store.attach(DIGEST)
            assert isinstance(view, memoryview) and view.readonly
            assert bytes(view) == BLOB
            view.release()
        finally:
            store.close()
        assert not os.path.exists(shm_path(DIGEST))

    def test_publish_is_idempotent(self):
        store = shm.SegmentStore()
        try:
            assert store.publish(DIGEST, BLOB)
            assert store.publish(DIGEST, BLOB)
            assert len(store) == 1
        finally:
            store.close()

    def test_attach_unknown_digest_is_a_miss(self):
        store = shm.SegmentStore()
        try:
            assert store.attach("f" * 64) is None
        finally:
            store.close()

    def test_attach_refuses_a_segment_that_hashes_wrong(self):
        producer, consumer = shm.SegmentStore(), shm.SegmentStore()
        try:
            # published under a lying digest: the payload does not
            # hash to the name the consumer asks for
            liar = "0" * 64
            assert producer.publish(liar, BLOB)
            assert consumer.attach(liar) is None
        finally:
            consumer.close()
            producer.close()

    def test_eviction_unlinks_the_oldest_segment(self):
        store = shm.SegmentStore(max_segments=2)
        digests = []
        try:
            for i in range(3):
                blob = bytes([i]) * 2048
                digest = payload.digest_bytes(blob)
                digests.append(digest)
                assert store.publish(digest, blob)
            assert len(store) == 2
            assert not store.holds(digests[0])
            assert not os.path.exists(shm_path(digests[0]))
            assert os.path.exists(shm_path(digests[2]))
        finally:
            store.close()

    def test_byte_budget_evicts_too(self):
        store = shm.SegmentStore(max_bytes=8 * 1024)
        try:
            a = os.urandom(6 * 1024)
            b = os.urandom(6 * 1024)
            store.publish(payload.digest_bytes(a), a)
            store.publish(payload.digest_bytes(b), b)
            assert len(store) == 1
            assert store.owned_bytes <= 8 * 1024
        finally:
            store.close()

    def test_close_with_live_view_disarms_the_mapping(self):
        # regression: closing an attached segment while a consumer still
        # holds its zero-copy view must not leave SharedMemory.__del__ a
        # BufferError to spray at interpreter shutdown — the mapping is
        # disarmed and the surviving view stays readable.
        producer = shm.SegmentStore()
        consumer = shm.SegmentStore()
        try:
            assert producer.publish(DIGEST, BLOB)
            view = consumer.attach(DIGEST)
            assert bytes(view[:8]) == BLOB[:8]
            segment = consumer._attached[DIGEST][0]
            consumer.close()  # view still alive: BufferError path
            assert segment._mmap is None
            assert getattr(segment, "_fd", -1) < 0
            assert bytes(view[:8]) == BLOB[:8]  # mapping survives
            view.release()
            del segment  # __del__ now a no-op; nothing raises
        finally:
            consumer.close()
            producer.close()


class TestPayloadWiring:
    def test_same_host_send_goes_by_shm_ref_immediately(self):
        peer = payload.PeerState()
        request = SoapRequest("Data", "validate", {"dataset": BLOB})
        out = payload.externalize(request, peer, same_host=True)
        ref = out.params["dataset"]
        assert isinstance(ref, PayloadRef)
        assert ref.via == "shm" and ref.kind == "bytes"
        assert ref.digest == DIGEST and ref.size == len(BLOB)
        assert peer.knows(DIGEST)
        counters = payload.shm_counters()
        assert counters["ws.shm.publishes"] == 1

    def test_cross_host_send_keeps_the_classic_inline_first_pass(self):
        peer = payload.PeerState()
        request = SoapRequest("Data", "validate", {"dataset": BLOB})
        out = payload.externalize(request, peer, same_host=False)
        assert out.params["dataset"] is BLOB  # inline once
        again = payload.externalize(request, peer, same_host=False)
        ref = again.params["dataset"]
        assert isinstance(ref, PayloadRef) and ref.via == ""

    def test_resolve_maps_the_segment_as_a_readonly_view(self):
        peer = payload.PeerState()
        request = SoapRequest("Data", "validate", {"dataset": BLOB})
        payload.externalize(request, peer, same_host=True)
        # a fresh receiving store proves resolution is via the
        # segment, not the sender's blob cache
        payload.reset_payload_store()
        value = payload.resolve(DIGEST, "bytes", via="shm")
        assert isinstance(value, memoryview) and value.readonly
        assert bytes(value) == BLOB
        counters = payload.shm_counters()
        assert counters["ws.shm.hits"] == 1
        assert counters["ws.shm.bytes_mapped"] == len(BLOB)

    def test_resolve_str_kind_decodes(self):
        text = "x" * 4096
        data = text.encode()
        peer = payload.PeerState()
        request = SoapRequest("Data", "validate", {"doc": text})
        out = payload.externalize(request, peer, same_host=True)
        assert out.params["doc"].kind == "str"
        assert payload.resolve(out.params["doc"].digest, "str",
                               via="shm") == text
        assert payload.digest_bytes(data) == out.params["doc"].digest

    def test_shm_miss_falls_back_to_the_store(self):
        digest = payload.get_payload_store().put(BLOB)
        # via="shm" but no such segment: counted as a miss, answered
        # from the classic store
        value = payload.resolve(digest, "bytes", via="shm")
        assert bytes(value) == BLOB
        assert payload.shm_counters()["ws.shm.misses"] == 1

    def test_total_miss_raises_payload_miss(self):
        with pytest.raises(PayloadMissError):
            payload.resolve("a" * 64, "bytes", via="shm")

    def test_disabled_shm_never_publishes(self):
        payload.set_shm_enabled(False)
        peer = payload.PeerState()
        request = SoapRequest("Data", "validate", {"dataset": BLOB})
        out = payload.externalize(request, peer, same_host=True)
        assert out.params["dataset"] is BLOB
        assert "ws.shm.publishes" not in payload.shm_counters()

    def test_externalized_ref_reinlines_for_an_amnesiac_peer(self):
        peer = payload.PeerState()
        request = SoapRequest("Data", "validate", {"dataset": BLOB})
        out = payload.externalize(request, peer, same_host=True)
        ref = out.params["dataset"]
        # the fallback resend path: peer.clear() models a peer that
        # lost its mappings; the ref must round-trip back to bytes
        peer.clear()
        payload.reset_payload_store()  # store gone too: shm answers
        resent = payload.externalize(out, peer)
        assert resent.params["dataset"] == BLOB
        assert not isinstance(resent.params["dataset"], PayloadRef)
        assert isinstance(ref, PayloadRef)


class TestOrphanSweep:
    PRODUCER = textwrap.dedent("""
        import os, sys, time
        sys.path.insert(0, {src!r})
        from repro.ws import payload, shm
        blob = b"o" * 65536
        digest = payload.digest_bytes(blob)
        assert shm.get_segment_store().publish(digest, blob)
        print(digest, flush=True)
        time.sleep(120)  # murdered long before this returns
    """)

    def _spawn_producer(self):
        src = os.path.join(os.path.dirname(payload.__file__),
                           os.pardir, os.pardir)
        proc = subprocess.Popen(
            [sys.executable, "-c",
             self.PRODUCER.format(src=os.path.abspath(src))],
            stdout=subprocess.PIPE, text=True)
        digest = proc.stdout.readline().strip()
        assert len(digest) == 64
        return proc, digest

    def test_sigkilled_producer_segments_are_swept(self):
        proc, digest = self._spawn_producer()
        try:
            assert os.path.exists(shm_path(digest))
            # owner alive: the sweep must leave the segment alone
            shm.sweep_orphans()
            assert os.path.exists(shm_path(digest))
        finally:
            proc.kill()
            proc.wait(timeout=10)
        deadline = time.monotonic() + 10
        swept = 0
        while time.monotonic() < deadline and not swept:
            swept = payload.sweep_shm_orphans()
            if not swept:
                time.sleep(0.05)
        assert swept >= 1
        assert not os.path.exists(shm_path(digest))
        assert payload.shm_counters()["ws.shm.swept"] >= 1

    def test_sweep_reclaims_malformed_debris(self):
        from multiprocessing import shared_memory
        name = shm.SEGMENT_PREFIX + "deadbeefdeadbeef"
        seg = shared_memory.SharedMemory(name=name, create=True,
                                         size=64)
        shm._untrack(seg)
        seg.buf[:4] = b"JUNK"
        seg.close()
        assert shm.sweep_orphans() >= 1
        assert not os.path.exists("/dev/shm/" + name)

    def test_live_local_segments_survive_the_sweep(self):
        store = shm.get_segment_store()
        assert store.publish(DIGEST, BLOB)
        assert shm.sweep_orphans() == 0
        assert os.path.exists(shm_path(DIGEST))
