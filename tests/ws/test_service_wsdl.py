"""Service definition introspection and WSDL generation/parsing."""

import pytest

from repro.errors import ServiceError, WsdlError
from repro.ws import wsdl
from repro.ws.service import ServiceDefinition, operation
from repro.ws.soap import SoapFault


class Calculator:
    """A tiny calculator service."""

    @operation
    def add(self, a: int, b: int = 0) -> int:
        """Add two integers."""
        return a + b

    @operation(doc="multiply override doc")
    def mul(self, a: float, b: float) -> float:
        return a * b

    @operation
    def describe(self, payload: dict) -> dict:
        return {"echo": payload}

    def helper(self) -> None:
        """Not an operation."""


class TestDefinition:
    @pytest.fixture(scope="class")
    def definition(self):
        return ServiceDefinition.from_class(Calculator, "Calc")

    def test_operations_discovered(self, definition):
        assert set(definition.operations) == {"add", "mul", "describe"}

    def test_helper_excluded(self, definition):
        assert "helper" not in definition.operations

    def test_param_types(self, definition):
        add = definition.operations["add"]
        assert add.params == (("a", "xsd:int"), ("b", "xsd:int"))
        assert add.required == ("a",)
        assert add.returns == "xsd:int"

    def test_doc_capture(self, definition):
        assert definition.operations["add"].doc == "Add two integers."
        assert definition.operations["mul"].doc == "multiply override doc"

    def test_json_types(self, definition):
        describe = definition.operations["describe"]
        assert describe.params == (("payload", "repro:json"),)
        assert describe.returns == "repro:json"

    def test_dispatch(self, definition):
        assert definition.dispatch(Calculator(), "add",
                                   {"a": 2, "b": 3}) == 5

    def test_dispatch_defaults(self, definition):
        assert definition.dispatch(Calculator(), "add", {"a": 2}) == 2

    def test_dispatch_unknown_operation(self, definition):
        with pytest.raises(SoapFault):
            definition.dispatch(Calculator(), "pow", {})

    def test_dispatch_unknown_param(self, definition):
        with pytest.raises(SoapFault):
            definition.dispatch(Calculator(), "add", {"a": 1, "z": 2})

    def test_dispatch_missing_required(self, definition):
        with pytest.raises(SoapFault):
            definition.dispatch(Calculator(), "add", {"b": 1})

    def test_class_without_operations(self):
        class Empty:
            pass

        with pytest.raises(ServiceError):
            ServiceDefinition.from_class(Empty)


class TestWsdl:
    @pytest.fixture(scope="class")
    def document(self):
        definition = ServiceDefinition.from_class(Calculator, "Calc")
        return wsdl.generate(definition, "http://127.0.0.1:9/services/Calc")

    def test_parse_roundtrip(self, document):
        desc = wsdl.parse(document)
        assert desc.service == "Calc"
        assert desc.address == "http://127.0.0.1:9/services/Calc"
        assert set(desc.operations) == {"add", "mul", "describe"}

    def test_parameter_fidelity(self, document):
        desc = wsdl.parse(document)
        add = desc.operations["add"]
        assert add.params == (("a", "xsd:int"), ("b", "xsd:int"))
        assert add.required == ("a",)
        assert add.doc == "Add two integers."

    def test_service_doc_preserved(self, document):
        assert "calculator" in wsdl.parse(document).doc.lower()

    def test_malformed(self):
        with pytest.raises(WsdlError):
            wsdl.parse("not xml at all <")

    def test_wrong_root(self):
        with pytest.raises(WsdlError):
            wsdl.parse("<html/>")

    def test_no_porttype(self):
        with pytest.raises(WsdlError):
            wsdl.parse('<wsdl:definitions '
                       'xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"/>')
