"""Concurrency regression tests for the harness lifecycle.

The paper's harness keeps one algorithm instance in memory precisely so
repeated invocations are cheap; serialising every dispatch behind the
deployment lock would throw that away.  The :class:`~repro.ws.pipeline.
Lifecycle` handler therefore locks only instance creation and stats
mutation for ``harness`` deployments — dispatches run concurrently.
The ``serialize`` lifecycle intentionally stays one-at-a-time (the
state file is the serialisation point it models).
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.ws.container import ServiceContainer
from repro.ws.service import operation

CALLS = 8
WORKERS = 4
SLEEP_S = 0.05


class SlowService:
    """Op that sleeps, and records how many calls overlap in time."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._in_flight = 0
        self.max_in_flight = 0

    @operation
    def work(self, n: int) -> int:
        """Sleep a fixed interval and echo *n*."""
        with self._lock:
            self._in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self._in_flight)
        try:
            time.sleep(SLEEP_S)
            return n
        finally:
            with self._lock:
                self._in_flight -= 1


class PicklableSlowService:
    """Lock-free variant the serialize lifecycle can round-trip to disk."""

    @operation
    def work(self, n: int) -> int:
        """Sleep a fixed interval and echo *n*."""
        time.sleep(SLEEP_S)
        return n


def _run_calls(container, parallel: bool) -> float:
    start = time.perf_counter()
    if parallel:
        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            results = list(pool.map(
                lambda n: container.call("Slow", "work", n=n),
                range(CALLS)))
    else:
        results = [container.call("Slow", "work", n=n)
                   for n in range(CALLS)]
    assert sorted(results) == list(range(CALLS))
    return time.perf_counter() - start


class TestHarnessConcurrency:
    def test_harness_dispatches_overlap(self, tmp_path):
        """Parallel callers genuinely share the in-memory instance."""
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(SlowService, "Slow", lifecycle="harness")
        _run_calls(c, parallel=True)
        dep = c._deployment("Slow")
        assert dep.instance.max_in_flight > 1
        assert dep.stats.invocations == CALLS

    def test_harness_throughput_beats_serial(self, tmp_path):
        """4 workers on a sleepy op must beat serial by well over 1.5x.

        With dispatch outside the deployment lock the parallel run takes
        ~CALLS/WORKERS sleeps vs CALLS sleeps serially (ideal 4x); the
        1.5x gate leaves headroom for scheduler noise while still failing
        hard if the lock ever re-covers the dispatch.
        """
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(SlowService, "Slow", lifecycle="harness")
        serial = _run_calls(c, parallel=False)
        parallel = _run_calls(c, parallel=True)
        assert parallel < serial / 1.5, (
            f"parallel {parallel:.3f}s vs serial {serial:.3f}s — "
            "harness dispatches are serialised again")

    def test_serialize_lifecycle_stays_serial(self, tmp_path):
        """The 2005-era lifecycle still runs calls one at a time."""
        c = ServiceContainer(state_dir=tmp_path)
        c.deploy(PicklableSlowService, "Slow", lifecycle="serialize")
        _run_calls(c, parallel=True)
        # each call unpickles a fresh instance, so overlap is only
        # observable through the stats: every call must round-trip state
        assert c.stats("Slow").invocations == CALLS
        assert c.stats("Slow").serialized_bytes > 0
