"""Interceptor chain contracts: ordering, composition, and removal.

The chains are this stack's analogue of Axis handler chains, so their
shape is part of the API: the default orders are stable and documented,
user-supplied steps compose at declared positions, and splicing a step
out (e.g. the chaos interceptor) restores the unwrapped behaviour —
byte-for-byte on the wire.
"""

from repro.chaos import ChaosController, ChaosInterceptor
from repro.ws import soap
from repro.ws.container import ServiceContainer
from repro.ws.pipeline import (ClientInterceptor, chain_insert_after,
                               chain_insert_before, chain_names,
                               chain_without, default_proxy_interceptors,
                               default_server_handlers,
                               default_transport_interceptors)
from repro.ws.service import operation
from repro.ws.soap import SoapFault
from repro.ws.transport import InProcessTransport
from repro.ws.client import ServiceProxy
from repro.ws import wsdl

import pytest


class Echo:
    """Minimal service for chain plumbing tests."""

    @operation
    def shout(self, text: str) -> str:
        """Upper-case *text*."""
        return text.upper()


def _stack(tmp_path):
    container = ServiceContainer(state_dir=tmp_path)
    definition = container.deploy(Echo, "Echo")
    transport = InProcessTransport(container)
    proxy = ServiceProxy.from_wsdl_text(
        wsdl.generate(definition, "inproc://Echo"), transport)
    return container, transport, proxy


class TestDefaultOrders:
    """The documented chain orders are load-bearing — pin them."""

    def test_transport_chain_order(self):
        assert chain_names(default_transport_interceptors()) == \
            ["trace", "metrics", "deadline", "payload"]

    def test_transport_chain_order_with_gzip(self):
        assert chain_names(default_transport_interceptors(compress=True)) \
            == ["trace", "metrics", "deadline", "gzip", "payload"]

    def test_proxy_chain_order(self):
        assert chain_names(default_proxy_interceptors()) == \
            ["deadline", "breaker", "trace", "metrics"]

    def test_server_chain_order(self):
        assert chain_names(default_server_handlers()) == \
            ["trace", "resolve", "deadline", "multicall", "stats",
             "cache", "lifecycle", "faults"]

    def test_insert_helpers_place_steps(self):
        class Probe(ClientInterceptor):
            name = "probe"

        chain = default_transport_interceptors()
        before = chain_insert_before(chain, "deadline", Probe())
        after = chain_insert_after(chain, "deadline", Probe())
        assert chain_names(before) == \
            ["trace", "metrics", "probe", "deadline", "payload"]
        assert chain_names(after) == \
            ["trace", "metrics", "deadline", "probe", "payload"]
        # originals untouched: the helpers return copies
        assert chain_names(chain) == \
            ["trace", "metrics", "deadline", "payload"]

    def test_insert_unknown_step_lists_names(self):
        with pytest.raises(ValueError, match="trace"):
            chain_insert_before(default_transport_interceptors(),
                                "nope", ClientInterceptor())


class TestUserInterceptors:
    def test_user_step_observes_and_wraps_a_call(self, tmp_path):
        """A user interceptor sees the request and can rewrite the
        response — the Axis "custom handler" use case."""
        seen: list[str] = []

        class Decorate(ClientInterceptor):
            name = "decorate"

            def intercept(self, request, ctx, proceed):
                seen.append(f"{request.service}.{request.operation}")
                response = proceed(request)
                response.result = f"<<{response.result}>>"
                return response

        _, transport, proxy = _stack(tmp_path)
        proxy.interceptors = chain_insert_before(
            proxy.interceptors, "trace", Decorate())
        assert proxy.call("shout", text="hi") == "<<HI>>"
        assert seen == ["Echo.shout"]

    def test_user_step_can_short_circuit(self, tmp_path):
        """Not calling ``proceed`` vetoes the call entirely."""
        class Veto(ClientInterceptor):
            name = "veto"

            def intercept(self, request, ctx, proceed):
                raise SoapFault("soapenv:Client", "vetoed by policy")

        _, _, proxy = _stack(tmp_path)
        proxy.interceptors = [Veto()] + proxy.interceptors
        with pytest.raises(SoapFault, match="vetoed"):
            proxy.call("shout", text="hi")


class _WireTap(ClientInterceptor):
    """Records the exact envelopes crossing its position in the chain."""

    name = "wiretap"

    def __init__(self):
        self.requests: list[bytes] = []
        self.responses: list[bytes] = []

    def intercept(self, request, ctx, proceed):
        self.requests.append(soap.encode_request(request))
        response = proceed(request)
        self.responses.append(soap.encode_response(response))
        return response


class TestChaosSplicing:
    """ChaosInterceptor is just a chain step: splice in, splice out."""

    def _traffic(self, tmp_path, with_chaos: bool):
        _, transport, proxy = _stack(tmp_path)
        if with_chaos:
            controller = ChaosController("corrupt=1", seed=0)
            transport.interceptors = chain_insert_after(
                transport.interceptors, "payload",
                ChaosInterceptor(controller, "Echo"))
        tap = _WireTap()
        # innermost: sees exactly what reaches (and leaves) the mover
        transport.interceptors = transport.interceptors + [tap]
        outcome: list[str] = []
        for text in ("alpha", "beta"):
            try:
                outcome.append(proxy.call("shout", text=text))
            except Exception as exc:  # corrupted envelopes decode-fail
                outcome.append(type(exc).__name__)
        return tap, outcome

    def test_removing_chaos_restores_byte_identical_traffic(self, tmp_path):
        baseline, clean_outcome = self._traffic(tmp_path, with_chaos=False)
        assert clean_outcome == ["ALPHA", "BETA"]

        chaotic, chaotic_outcome = self._traffic(tmp_path, with_chaos=True)
        assert chaotic_outcome != clean_outcome

        # now build the chaotic chain again and splice the step back out
        _, transport, proxy = _stack(tmp_path)
        controller = ChaosController("corrupt=1", seed=0)
        transport.interceptors = chain_insert_after(
            transport.interceptors, "payload",
            ChaosInterceptor(controller, "Echo"))
        transport.interceptors = chain_without(
            transport.interceptors, "chaos")
        tap = _WireTap()
        transport.interceptors = transport.interceptors + [tap]
        healed = [proxy.call("shout", text=t) for t in ("alpha", "beta")]

        assert healed == clean_outcome
        assert tap.requests == baseline.requests
        assert tap.responses == baseline.responses
