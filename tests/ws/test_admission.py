"""Admission-control contracts: token buckets, the concurrency gate,
priority queueing with eviction, queue timeouts, and the async entry
point — all deterministic via :class:`~repro.clock.FakeClock` (bucket
math) and tiny wall-clock queue timeouts (queue waits are real)."""

import asyncio
import threading

import pytest

from repro import obs
from repro.clock import FakeClock
from repro.errors import OverloadedError
from repro.ws.admission import (DEFAULT_RETRY_HINT_S, AdmissionController,
                                AdmissionHandler, TokenBucket)


class TestTokenBucket:
    def test_burst_then_refill_on_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(3)] == [True] * 3
        assert not bucket.try_take()          # burst spent
        clock.advance(0.5)                    # +1 token at 2/s
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_retry_after_names_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        # 1 token at 4/s = 0.25s away
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.0)

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60)
        assert bucket.tokens == pytest.approx(2.0)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)


class TestConcurrencyGate:
    def test_admits_up_to_max_concurrent_then_sheds(self):
        ctl = AdmissionController(max_concurrent=2, max_queue=0)
        t1, t2 = ctl.admit(), ctl.admit()
        assert ctl.inflight == 2
        with pytest.raises(OverloadedError) as exc:
            ctl.admit()
        assert exc.value.retry_after_s == pytest.approx(
            DEFAULT_RETRY_HINT_S)
        t1.release()
        t1.release()  # idempotent: the slot comes back exactly once
        assert ctl.inflight == 1
        with ctl.admit():
            assert ctl.inflight == 2
        t2.release()
        assert ctl.inflight == 0

    def test_global_rate_limit_sheds_with_bucket_hint(self):
        clock = FakeClock()
        ctl = AdmissionController(max_concurrent=8, rate=1.0, burst=1.0,
                                  clock=clock)
        ctl.admit().release()
        with pytest.raises(OverloadedError) as exc:
            ctl.admit()
        assert exc.value.retry_after_s == pytest.approx(1.0)
        assert obs.get_metrics().counter(
            "ws.admission.shed", reason="rate").value == 1
        clock.advance(1.0)
        ctl.admit().release()

    def test_per_principal_buckets_are_isolated(self):
        clock = FakeClock()
        ctl = AdmissionController(max_concurrent=8, principal_rate=1.0,
                                  principal_burst=1.0, clock=clock)
        ctl.admit(principal="greedy").release()
        with pytest.raises(OverloadedError):
            ctl.admit(principal="greedy")
        # the other tenant is untouched by greedy's exhaustion
        ctl.admit(principal="polite").release()
        assert obs.get_metrics().counter(
            "ws.admission.shed_by_principal",
            principal="greedy").value == 1

    def test_admitted_and_shed_are_counted(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=0)
        ticket = ctl.admit()
        with pytest.raises(OverloadedError):
            ctl.admit()
        ticket.release()
        metrics = obs.get_metrics()
        assert metrics.counter("ws.admission.admitted").value == 1
        assert metrics.counter("ws.admission.shed",
                               reason="queue_full").value == 1


class TestPriorityQueue:
    def test_release_hands_the_slot_to_a_waiter(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=4,
                                  queue_timeout_s=5.0)
        first = ctl.admit()
        admitted = threading.Event()

        def waiter():
            with ctl.admit():
                admitted.set()

        t = threading.Thread(target=waiter)
        t.start()
        while ctl.queued == 0:    # the waiter is parked in the queue
            pass
        first.release()
        assert admitted.wait(5)
        t.join(5)
        assert obs.get_metrics().counter("ws.admission.queued").value == 1

    def test_higher_priority_waiter_runs_first(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=4,
                                  queue_timeout_s=5.0)
        first = ctl.admit()
        order = []
        started = []

        def waiter(name, priority):
            started.append(name)
            with ctl.admit(priority=priority):
                order.append(name)

        threads = []
        for name, priority in [("low", 0), ("high", 5)]:
            t = threading.Thread(target=waiter, args=(name, priority))
            threads.append(t)
            t.start()
            while ctl.queued < len(started):
                pass
        first.release()
        for t in threads:
            t.join(5)
        assert order[0] == "high"

    def test_full_queue_evicts_the_weakest_for_an_outranking_newcomer(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=1,
                                  queue_timeout_s=5.0)
        first = ctl.admit()
        low_shed = []
        queued = threading.Event()

        def low_waiter():
            queued.set()
            try:
                with ctl.admit(priority=0):
                    pass
            except OverloadedError as exc:
                low_shed.append(exc)

        t = threading.Thread(target=low_waiter)
        t.start()
        queued.wait(5)
        while ctl.queued == 0:
            pass
        # the queue is full; an equal-priority newcomer is shed outright
        with pytest.raises(OverloadedError):
            ctl.admit(priority=0)
        # ... but a higher-priority one trades places with the tail
        high = []

        def high_waiter():
            with ctl.admit(priority=9):
                high.append(True)

        t2 = threading.Thread(target=high_waiter)
        t2.start()
        t.join(5)           # the low waiter was evicted and shed
        assert low_shed and "evicted" in str(low_shed[0])
        first.release()
        t2.join(5)
        assert high == [True]
        assert obs.get_metrics().counter("ws.admission.evicted").value == 1

    def test_queue_timeout_sheds_with_timeout_reason(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=4,
                                  queue_timeout_s=0.05)
        ticket = ctl.admit()
        with pytest.raises(OverloadedError) as exc:
            ctl.admit()
        assert "queue_timeout" in str(exc.value)
        assert ctl.queued == 0    # the abandoned waiter left the queue
        ticket.release()
        assert obs.get_metrics().counter(
            "ws.admission.shed", reason="queue_timeout").value == 1


class TestAsyncEntryPoint:
    def test_admit_async_mirrors_sync_policy(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=0)

        async def drive():
            ticket = await ctl.admit_async()
            with pytest.raises(OverloadedError):
                await ctl.admit_async()
            ticket.release()
            ticket2 = await ctl.admit_async()
            ticket2.release()

        asyncio.run(drive())
        assert ctl.inflight == 0

    def test_async_waiter_is_woken_by_sync_release(self):
        """The queue crosses the thread/loop boundary: a sync release
        must wake a waiter parked on an asyncio future."""
        ctl = AdmissionController(max_concurrent=1, max_queue=4,
                                  queue_timeout_s=5.0)
        ticket = ctl.admit()    # taken from the test thread

        async def drive():
            task = asyncio.ensure_future(ctl.admit_async())
            while ctl.queued == 0:
                await asyncio.sleep(0.001)
            # release from a foreign thread, as a sync server would
            await asyncio.to_thread(ticket.release)
            got = await asyncio.wait_for(task, 5)
            got.release()

        asyncio.run(drive())
        assert ctl.inflight == 0

    def test_async_queue_timeout_sheds(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=4,
                                  queue_timeout_s=0.05)
        ticket = ctl.admit()

        async def drive():
            with pytest.raises(OverloadedError) as exc:
                await ctl.admit_async()
            assert "queue_timeout" in str(exc.value)

        asyncio.run(drive())
        assert ctl.queued == 0
        ticket.release()


class TestHandlerStep:
    def test_handler_wraps_proceed_in_a_ticket(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=0)
        handler = AdmissionHandler(ctl)

        class Request:
            principal = "alice"
            priority = 3

        seen = {}

        def proceed(request):
            seen["inflight"] = ctl.inflight
            return "ok"

        assert handler(Request(), None, proceed) == "ok"
        assert seen["inflight"] == 1    # slot held across the dispatch
        assert ctl.inflight == 0        # and returned afterwards

    def test_handler_propagates_the_shed(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=0)
        handler = AdmissionHandler(ctl)

        class Request:
            principal = ""
            priority = 0

        with ctl.admit():
            with pytest.raises(OverloadedError):
                handler(Request(), None, lambda r: "never")
