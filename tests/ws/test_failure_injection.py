"""Failure injection: hostile/malformed traffic against the HTTP host and
concurrent access to shared containers."""

import http.client
import threading

import pytest

from repro.ws import ServiceContainer, SoapHttpServer, SoapRequest
from repro.ws.service import operation


class Slowish:
    """Service with shared mutable state to stress thread safety."""

    def __init__(self) -> None:
        self.total = 0
        self._lock = threading.Lock()

    @operation
    def accumulate(self, amount: int) -> int:
        with self._lock:
            self.total += amount
            return self.total


@pytest.fixture(scope="module")
def server():
    container = ServiceContainer()
    container.deploy(Slowish, "Slowish")
    with SoapHttpServer(container) as srv:
        yield srv


def raw_post(server, path, body: bytes, content_type="text/xml"):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
    conn.request("POST", path, body=body,
                 headers={"Content-Type": content_type})
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, data


class TestHostileTraffic:
    def test_garbage_body_returns_soap_fault(self, server):
        status, body = raw_post(server, "/services/Slowish",
                                b"\x00\xff not xml")
        assert status == 500
        assert b"Fault" in body

    def test_empty_body(self, server):
        status, body = raw_post(server, "/services/Slowish", b"")
        assert status == 500
        assert b"Fault" in body

    def test_valid_xml_wrong_root(self, server):
        status, body = raw_post(server, "/services/Slowish",
                                b"<html><body/></html>")
        assert status == 500

    def test_post_to_unknown_path(self, server):
        status, _ = raw_post(server, "/other/thing", b"<x/>")
        assert status == 404

    def test_get_unknown_service_wsdl(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=5)
        conn.request("GET", "/services/Ghost?wsdl")
        assert conn.getresponse().status == 404
        conn.close()

    def test_envelope_with_multiple_body_children(self, server):
        doc = (b'<?xml version="1.0"?>'
               b'<soapenv:Envelope xmlns:soapenv='
               b'"http://schemas.xmlsoap.org/soap/envelope/">'
               b'<soapenv:Body><a/><b/></soapenv:Body>'
               b'</soapenv:Envelope>')
        status, body = raw_post(server, "/services/Slowish", doc)
        assert status == 500
        assert b"exactly one element" in body

    def test_server_survives_hostile_burst(self, server):
        for payload in (b"<", b"{}", b"\xff" * 100, b"<x>" * 50):
            raw_post(server, "/services/Slowish", payload)
        # still serves good requests afterwards
        from repro.ws import ServiceProxy
        proxy = ServiceProxy.from_wsdl_url(server.wsdl_url("Slowish"))
        assert isinstance(proxy.accumulate(amount=0), int)
        proxy.close()


class TestConcurrency:
    def test_concurrent_invocations_are_serialised_per_service(self,
                                                               server):
        """The container locks per deployment: concurrent accumulates must
        not lose updates."""
        from repro.ws import HttpTransport
        n_threads, n_calls = 8, 20
        errors: list[Exception] = []

        def hammer():
            transport = HttpTransport(server.endpoint("Slowish"))
            try:
                for _ in range(n_calls):
                    transport.send(SoapRequest("Slowish", "accumulate",
                                               {"amount": 1}))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                transport.close()

        before = server.container.call("Slowish", "accumulate", amount=0)
        threads = [threading.Thread(target=hammer)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        after = server.container.call("Slowish", "accumulate", amount=0)
        assert after - before == n_threads * n_calls

    def test_concurrent_wsdl_fetches(self, server):
        from repro.ws.client import fetch_url
        results = []

        def fetch():
            results.append(fetch_url(server.wsdl_url("Slowish")))

        threads = [threading.Thread(target=fetch) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 10
        assert all("Slowish" in r for r in results)
