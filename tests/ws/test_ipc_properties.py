"""Property: shipping a document by shm ref never changes a byte.

For *any* dataset — zero rows, all-missing cells, unicode nominals —
the same-host fast path (publish into a shared-memory segment, ship a
``via="shm"`` ref, map on the far side) must hand the consumer content
byte-identical to what an inline send would have carried, for both the
ARFF text codec and the RCF1 binary columnar codec, and the mapped
frame must decode to the same dataset.  Runs derandomised so CI is
reproducible.
"""

import pytest
from hypothesis import given, settings

from repro.data import arff, codec
from repro.data.attribute import Attribute
from repro.data.dataset import Dataset
from repro.ws import payload, shm, soap
from repro.ws.payload import PayloadRef
from repro.ws.soap import SoapRequest

from tests.data.test_roundtrip_properties import (assert_same_cells,
                                                  datasets, decoded_rows)

pytestmark = pytest.mark.skipif(not shm.supported(),
                                reason="no POSIX shared memory here")

PROP = settings(max_examples=40, deadline=None, derandomize=True)


def ship_by_shm(doc):
    """One same-host send: externalize → SOAP wire → decode.

    ``decode_request`` resolves refs eagerly, and the payload store is
    cleared between encode and decode, so the value handed back can
    only have come from the mapped segment.
    """
    peer = payload.PeerState()
    request = SoapRequest("Data", "validate", {"doc": doc})
    out = payload.externalize(request, peer, min_bytes=1,
                              same_host=True)
    ref = out.params["doc"]
    assert isinstance(ref, PayloadRef) and ref.via == "shm"
    assert ref.size == len(doc if isinstance(doc, bytes)
                           else doc.encode("utf-8", "surrogatepass"))
    wire = soap.encode_request(out)
    payload.reset_payload_store()
    before = payload.shm_counters().get("ws.shm.hits", 0)
    decoded = soap.decode_request(wire)
    assert payload.shm_counters()["ws.shm.hits"] == before + 1
    return decoded.params["doc"]


class TestShmByteIdentity:
    @PROP
    @given(datasets())
    def test_arff_text_is_byte_identical(self, ds):
        text = arff.dumps(ds)
        value = ship_by_shm(text)
        assert isinstance(value, str)
        assert value == text
        back = arff.loads(value)
        assert list(back.attributes) == list(ds.attributes)
        assert_same_cells(decoded_rows(back), decoded_rows(ds))

    @PROP
    @given(datasets(kinds=("numeric", "nominal")))
    def test_rcf1_frame_is_byte_identical(self, ds):
        frame = codec.encode(ds)
        value = ship_by_shm(frame)
        # bytes come back as a read-only view INTO the shared pages;
        # the columnar codec decodes straight from it
        assert isinstance(value, memoryview) and value.readonly
        assert bytes(value) == frame
        back = codec.decode(value)
        assert list(back.attributes) == list(ds.attributes)
        assert_same_cells(decoded_rows(back), decoded_rows(ds))

    def test_zero_row_dataset(self):
        ds = Dataset("empty", [Attribute.numeric("x"),
                               Attribute.nominal("c", ["a", "b"])])
        frame = codec.encode(ds)
        assert bytes(ship_by_shm(frame)) == frame
        assert ship_by_shm(arff.dumps(ds)) == arff.dumps(ds)
        assert codec.decode(ship_by_shm(frame)).num_instances == 0

    def test_all_missing_dataset(self):
        ds = Dataset("holes", [Attribute.numeric("x"),
                               Attribute.nominal("c", ["a", "b"]),
                               Attribute.string("s")])
        for _ in range(5):
            ds.add_row([None, None, None])
        text = arff.dumps(ds)
        assert ship_by_shm(text) == text
        numeric = Dataset("holes2", [Attribute.numeric("x"),
                                     Attribute.nominal("c", ["a"])])
        for _ in range(5):
            numeric.add_row([None, None])
        frame = codec.encode(numeric)
        back = codec.decode(ship_by_shm(frame))
        assert_same_cells(decoded_rows(back), decoded_rows(numeric))
