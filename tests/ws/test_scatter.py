"""Scatter-gather contracts: input-order merge, adaptive chunk sizing,
migration off dead endpoints, and deadline behaviour."""

import threading

import pytest

from repro import obs
from repro.errors import (DeadlineExceeded, TransportError, WorkflowError)
from repro.ws.deadline import deadline_scope
from repro.ws.scatter import (DEFAULT_CHUNK, ScatterGather, default_chunk,
                              set_default_chunk)


@pytest.fixture
def restore_default_chunk():
    yield
    set_default_chunk(DEFAULT_CHUNK)


class TestMergeOrder:
    def test_results_come_back_in_input_order(self):
        sg = ScatterGather(3, chunk=4)
        items = list(range(100))

        def dispatch(endpoint, chunk_items, indices):
            return [item * 10 for item in chunk_items]

        report = sg.run(items, dispatch)
        assert report.results == [i * 10 for i in items]
        assert report.rebalances == 0
        # every item accounted for exactly once across the dispatches
        dispatched = sorted(i for d in report.dispatches
                            for i in d.indices)
        assert dispatched == items

    def test_endpoint_loads_sum_to_the_item_count(self):
        sg = ScatterGather(4, chunk=7)
        report = sg.run(list(range(50)),
                        lambda e, chunk, idx: list(chunk))
        assert sum(report.endpoint_loads().values()) == 50

    def test_empty_input(self):
        sg = ScatterGather(2)
        report = sg.run([], lambda e, chunk, idx: list(chunk))
        assert report.results == []
        assert report.dispatches == []


class TestAdaptiveChunks:
    def test_chunk_grows_for_fast_endpoints_and_shrinks_for_slow(self):
        sg = ScatterGather(2, chunk=8, min_chunk=2, max_chunk=64,
                           target_chunk_s=1.0)
        assert sg.chunk_for(0) == 8  # no feedback yet: the initial size
        sg._states[0].observe(0.01)   # fast: 100 items/s
        sg._states[1].observe(0.5)    # slow: 2 items/s
        assert sg.chunk_for(0) == 64  # 1.0/0.01 = 100, clamped to max
        assert sg.chunk_for(1) == 2   # 1.0/0.5 = 2, at the floor

    def test_ewma_smooths_observations(self):
        sg = ScatterGather(1, target_chunk_s=1.0, alpha=0.5,
                           min_chunk=1, max_chunk=10_000)
        sg._states[0].observe(0.1)
        sg._states[0].observe(0.3)   # EWMA: 0.5*0.3 + 0.5*0.1 = 0.2
        assert sg.chunk_for(0) == 5  # round(1.0 / 0.2)

    def test_run_feeds_the_ewma(self):
        sg = ScatterGather(1, chunk=5)
        sg.run(list(range(10)), lambda e, chunk, idx: list(chunk))
        assert sg._states[0].ewma_s is not None

    def test_default_chunk_is_process_configurable(
            self, restore_default_chunk):
        assert default_chunk() == DEFAULT_CHUNK
        set_default_chunk(17)
        assert default_chunk() == 17
        assert ScatterGather(1).chunk == 17
        set_default_chunk(0)     # clamped to the floor
        assert default_chunk() == 1


class TestMigration:
    def test_failed_endpoints_chunks_migrate_to_survivors(self):
        sg = ScatterGather(2, chunk=3)
        items = list(range(12))

        def dispatch(endpoint, chunk_items, indices):
            if endpoint == 0:
                raise TransportError("endpoint 0 is gone")
            return [item + 100 for item in chunk_items]

        report = sg.run(items, dispatch)
        assert report.results == [i + 100 for i in items]
        assert report.rebalances >= 1
        loads = report.endpoint_loads()
        assert loads.get(0, 0) == 0
        assert loads[1] == 12
        failed = [d for d in report.dispatches if not d.completed]
        assert failed and all(d.endpoint == 0 and d.migrated
                              for d in failed)

    def test_rebalance_metric_counts_migrations(self):
        sg = ScatterGather(2, chunk=2)

        def dispatch(endpoint, chunk_items, indices):
            if endpoint == 0:
                raise TransportError("dead")
            return list(chunk_items)

        report = sg.run(list(range(8)), dispatch)
        assert obs.get_metrics().counter("ws.scatter.rebalance").value \
            == report.rebalances >= 1

    def test_all_endpoints_dead_raises_workflow_error(self):
        sg = ScatterGather(3, chunk=2, name="doomed")

        def dispatch(endpoint, chunk_items, indices):
            raise TransportError(f"endpoint {endpoint} unreachable")

        with pytest.raises(WorkflowError, match="doomed.*endpoint"):
            sg.run(list(range(10)), dispatch)

    def test_late_failure_salvaged_by_survivor(self):
        """An endpoint that dies after the others finished: its chunk is
        drained by a survivor in the post-join salvage pass."""
        sg = ScatterGather(2, chunk=2)
        gate = threading.Event()

        def dispatch(endpoint, chunk_items, indices):
            if endpoint == 0:
                gate.wait(5)  # die only after endpoint 1 drained
                raise TransportError("slow death")
            if not indices or indices[0] + len(indices) >= 8:
                gate.set()
            return list(chunk_items)

        report = sg.run(list(range(8)), dispatch)
        assert report.results == list(range(8))
        salvaged = [d for d in report.dispatches
                    if d.completed and d.attempts > 1]
        assert all(d.endpoint == 1 for d in salvaged)


class TestBackpressure:
    """Overloaded replicas slow down instead of dying: sheds requeue
    the chunk, halve the bite, and back off on the injectable clock."""

    def test_shed_chunks_are_retried_on_the_same_endpoint(self):
        from repro.clock import FakeClock
        from repro.errors import OverloadedError
        clock = FakeClock()
        sg = ScatterGather(1, chunk=4, clock=clock, max_overloads=8)
        sheds = [2]   # shed the first two dispatches, then recover

        def dispatch(endpoint, chunk_items, indices):
            if sheds[0]:
                sheds[0] -= 1
                raise OverloadedError("busy", retry_after_s=0.2)
            return list(chunk_items)

        report = sg.run(list(range(20)), dispatch)
        assert report.results == list(range(20))
        # no migration happened: the only endpoint kept all the work
        assert report.endpoint_loads() == {0: 20}
        assert report.rebalances == 0
        # each shed backed off for the server's hint on the fake clock
        assert clock.sleeps == [0.2, 0.2]
        assert obs.get_metrics().counter(
            "ws.scatter.backpressure").value == 2

    def test_shed_halves_the_next_bite(self):
        from repro.clock import FakeClock
        from repro.errors import OverloadedError
        clock = FakeClock()
        sg = ScatterGather(1, chunk=8, min_chunk=1, clock=clock)
        assert sg.chunk_for(0) == 8
        sg._note_overload(0)
        assert sg.chunk_for(0) == 4     # seeded at half the start size
        sg._note_overload(0)
        assert sg.chunk_for(0) == 2     # EWMA doubles → bite halves

    def test_persistent_saturation_migrates_to_survivors(self):
        from repro.clock import FakeClock
        from repro.errors import OverloadedError
        clock = FakeClock()
        sg = ScatterGather(2, chunk=4, clock=clock, max_overloads=2)

        def dispatch(endpoint, chunk_items, indices):
            if endpoint == 0:   # saturated beyond patience, forever
                raise OverloadedError("busy", retry_after_s=0.1)
            return list(chunk_items)

        report = sg.run(list(range(16)), dispatch)
        assert report.results == list(range(16))
        loads = report.endpoint_loads()
        assert loads.get(0, 0) == 0 and loads[1] == 16
        assert report.rebalances == 1
        assert obs.get_metrics().counter(
            "ws.scatter.rebalance").value == 1

    def test_success_resets_the_patience_counter(self):
        from repro.clock import FakeClock
        from repro.errors import OverloadedError
        clock = FakeClock()
        sg = ScatterGather(1, chunk=2, clock=clock, max_overloads=2)
        pattern = iter([True, False, True, False, True, False,
                        False, False, False, False])

        def dispatch(endpoint, chunk_items, indices):
            # alternate shed/serve: never two consecutive sheds, so
            # patience (max_overloads=2) must never run out
            if next(pattern, False):
                raise OverloadedError("busy", retry_after_s=0.05)
            return list(chunk_items)

        report = sg.run(list(range(8)), dispatch)
        assert report.results == list(range(8))
        assert report.rebalances == 0


class TestContracts:
    def test_wrong_result_count_is_a_contract_violation(self):
        sg = ScatterGather(2, chunk=4, name="short")
        with pytest.raises(WorkflowError, match="result"):
            sg.run(list(range(8)),
                   lambda e, chunk, idx: list(chunk)[:-1])

    def test_expired_deadline_stops_the_run(self):
        sg = ScatterGather(2, chunk=1, name="timed")
        with deadline_scope(0.000001):
            with pytest.raises(DeadlineExceeded):
                sg.run(list(range(4)),
                       lambda e, chunk, idx: list(chunk))

    def test_needs_at_least_one_endpoint(self):
        with pytest.raises(WorkflowError):
            ScatterGather(0)


class TestOnChunk:
    """Per-chunk completion callbacks: the checkpoint hook the
    experiment runner builds its crash safety on."""

    def test_callback_sees_every_item_exactly_once(self):
        sg = ScatterGather(3, chunk=4)
        seen = []

        def on_chunk(endpoint, indices, results):
            seen.append((endpoint, list(indices), list(results)))

        report = sg.run(list(range(25)),
                        lambda e, chunk, idx: [i * 2 for i in chunk],
                        on_chunk=on_chunk)
        flat = sorted(i for _, indices, _ in seen for i in indices)
        assert flat == list(range(25))
        for _, indices, results in seen:
            assert results == [i * 2 for i in indices]
        assert len(seen) == len(report.dispatches)

    def test_callback_fires_per_chunk_not_per_run(self):
        sg = ScatterGather(1, chunk=2, min_chunk=2, max_chunk=2)
        calls = []
        sg.run(list(range(6)), lambda e, chunk, idx: list(chunk),
               on_chunk=lambda e, idx, out: calls.append(idx))
        assert len(calls) == 3
        assert all(len(idx) == 2 for idx in calls)

    def test_failed_chunks_never_reach_the_callback(self):
        """Endpoint death mid-run: only genuinely completed chunks are
        reported, and migrated work appears exactly once — from the
        survivor that actually finished it."""
        sg = ScatterGather(2, chunk=2)
        seen = []

        def dispatch(endpoint, chunk_items, indices):
            if endpoint == 0:
                raise TransportError("endpoint 0 died mid-scatter")
            return list(chunk_items)

        sg.run(list(range(10)), dispatch,
               on_chunk=lambda e, idx, out: seen.append((e, idx)))
        assert all(endpoint == 1 for endpoint, _ in seen)
        flat = sorted(i for _, idx in seen for i in idx)
        assert flat == list(range(10))

    def test_callback_failure_is_fatal_and_chunk_not_recorded(self):
        """A checkpoint that cannot be written must not be papered
        over: the run dies, and the chunk whose callback failed is not
        marked completed."""
        sg = ScatterGather(1, chunk=2, name="ckpt")

        def on_chunk(endpoint, indices, results):
            raise OSError("disk full")

        with pytest.raises(OSError, match="disk full"):
            sg.run(list(range(4)), lambda e, chunk, idx: list(chunk),
                   on_chunk=on_chunk)
