"""Renderers and snapshot IO for ``repro trace`` / ``repro metrics``."""

from repro import obs
from repro.obs.trace import Span


def make_trace():
    tracer = obs.get_tracer()
    obs.enable_tracing()
    with tracer.span("workflow:demo") as wf:
        with tracer.span("task:read", {"bytes": 42}):
            pass
        with tracer.span("task:classify"):
            pass
    return wf


class TestSpanTree:
    def test_empty(self):
        text = obs.render_span_tree([])
        assert "no spans" in text

    def test_tree_nesting_and_attrs(self):
        make_trace()
        text = obs.render_span_tree(obs.get_tracer().collector.spans())
        assert "workflow:demo" in text
        assert "task:read" in text and "[bytes=42]" in text
        # children indent one level deeper than the root
        wf_line = next(ln for ln in text.splitlines()
                       if "workflow:demo" in ln)
        task_line = next(ln for ln in text.splitlines()
                         if "task:read" in ln)
        assert task_line.index("task:read") > wf_line.index("workflow:demo")

    def test_accepts_dicts(self):
        wf = make_trace()
        dicts = [s.to_dict() for s in obs.get_tracer().collector.spans()]
        text = obs.render_span_tree(dicts)
        assert f"trace {wf.trace_id}" in text

    def test_error_status_flagged(self):
        span = Span(name="bad", trace_id="t" * 32, span_id="s" * 16,
                    status="error")
        assert "!error" in obs.render_span_tree([span])


class TestMetricsTable:
    def test_empty(self):
        assert "no metrics" in obs.render_metrics({})

    def test_tables(self):
        reg = obs.get_metrics()
        reg.counter("ws.client.calls", op="J48.classify").inc(3)
        reg.histogram("ws.client.seconds", op="J48.classify").observe(0.2)
        text = obs.render_metrics()
        assert "counters:" in text and "histograms:" in text
        assert "ws.client.calls{op=J48.classify}" in text
        assert "200.00ms" in text  # *seconds series rendered as ms


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        wf = make_trace()
        obs.get_metrics().counter("n").inc(2)
        path = obs.write_snapshot(tmp_path / "snap.json")
        data = obs.load_snapshot(path)
        assert data["dropped_spans"] == 0
        assert data["metrics"]["counters"]["n"] == 2.0
        names = {s["name"] for s in data["spans"]}
        assert names == {"workflow:demo", "task:read", "task:classify"}
        assert all(s["trace_id"] == wf.trace_id for s in data["spans"])
        # the loaded document renders the same way the live registry does
        assert "workflow:demo" in obs.render_span_tree(data["spans"])
