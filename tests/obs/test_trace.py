"""Unit tests for spans, the tracer and the span collector."""

import threading

import pytest

from repro.obs.trace import (NOOP_SPAN, TRACE_ENV_VAR, Span, SpanCollector,
                             SpanContext, Tracer, enable_tracing, get_tracer,
                             maybe_enable_tracing_from_env, new_id,
                             tracing_enabled)


class TestIds:
    def test_lengths(self):
        assert len(new_id()) == 16
        assert len(new_id(32)) == 32

    def test_hex_and_unique(self):
        ids = {new_id(32) for _ in range(50)}
        assert len(ids) == 50
        assert all(int(i, 16) >= 0 for i in ids)


class TestTracer:
    def test_disabled_hands_out_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            assert span is NOOP_SPAN
            assert not span.recording
        assert len(tracer.collector) == 0

    def test_nesting_via_contextvar(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert tracer.current_span() is None
        names = [s.name for s in tracer.collector.spans()]
        assert names == ["inner", "outer"]  # completion order

    def test_explicit_parent_span_wins(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a") as a:
            pass
        with tracer.span("b", parent=a) as b:
            assert b.trace_id == a.trace_id
            assert b.parent_id == a.span_id

    def test_remote_parent_context(self):
        tracer = Tracer(enabled=True)
        ctx = SpanContext(trace_id="ab" * 16, span_id="cd" * 8)
        with tracer.span("server", parent=ctx) as span:
            assert span.trace_id == ctx.trace_id
            assert span.parent_id == ctx.span_id

    def test_noop_parent_roots_fresh_trace(self):
        # the engine passes parent=wf_span even when wf_span is the no-op
        tracer = Tracer(enabled=True)
        with tracer.span("task", parent=NOOP_SPAN) as span:
            assert span.trace_id and span.parent_id == ""

    def test_error_status_and_reraise(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kapow")
        (span,) = tracer.collector.spans()
        assert span.status == "error"
        assert "kapow" in span.attributes["error"]

    def test_attributes_and_duration(self):
        tracer = Tracer(enabled=True)
        with tracer.span("op", {"preset": 1}) as span:
            span.set_attribute("extra", "yes")
        (done,) = tracer.collector.spans()
        assert done.attributes == {"preset": 1, "extra": "yes"}
        assert done.duration_s >= 0.0

    def test_threads_do_not_inherit_current_span(self):
        tracer = Tracer(enabled=True)
        seen = {}

        def worker():
            seen["current"] = tracer.current_span()

        with tracer.span("outer"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["current"] is None  # hence the explicit parent= calls


class TestCollector:
    def test_capacity_drops_excess(self):
        collector = SpanCollector(capacity=3)
        for i in range(5):
            collector.record(Span(name=f"s{i}", trace_id="t",
                                  span_id=str(i)))
        assert len(collector) == 3
        assert collector.dropped == 2
        collector.clear()
        assert len(collector) == 0 and collector.dropped == 0


class TestSerialisation:
    def test_round_trip(self):
        span = Span(name="x", trace_id="t" * 32, span_id="s" * 16,
                    parent_id="p" * 16, started_at=1.0, ended_at=2.0,
                    status="error", attributes={"k": "v"})
        assert Span.from_dict(span.to_dict()) == span


class TestGlobals:
    def test_enable_disable(self):
        assert not tracing_enabled()  # conftest fixture resets
        enable_tracing()
        assert tracing_enabled()
        with get_tracer().span("visible") as span:
            assert span.recording
        enable_tracing(False)
        assert not tracing_enabled()

    def test_env_hook_opt_in(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        assert maybe_enable_tracing_from_env()
        assert tracing_enabled()

    def test_env_hook_never_disables(self, monkeypatch):
        enable_tracing()
        monkeypatch.setenv(TRACE_ENV_VAR, "0")
        assert maybe_enable_tracing_from_env()
        assert tracing_enabled()

    def test_env_hook_off_by_default(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        assert not maybe_enable_tracing_from_env()
