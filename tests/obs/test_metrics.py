"""Unit tests for the metrics half of the observability spine."""

import threading

import pytest

from repro.obs.metrics import (RESERVOIR_SIZE, Counter, Histogram,
                               MetricsRegistry, format_series, get_metrics,
                               reset_metrics)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_monotonic(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_thread_safety(self):
        c = Counter()

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0 and h.sum == 0.0 and h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_nearest_rank_percentiles(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0

    def test_summary_shape(self):
        h = Histogram()
        h.observe(2.0)
        h.observe(4.0)
        s = h.summary()
        assert s["count"] == 2 and s["sum"] == 6.0 and s["mean"] == 3.0
        assert set(s) == {"count", "sum", "mean", "p50", "p95", "p99"}

    def test_reservoir_bounds_memory_but_not_count(self):
        h = Histogram()
        n = RESERVOIR_SIZE + 500
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert h.sum == sum(range(n))
        assert len(h._values) == RESERVOIR_SIZE


class TestRegistry:
    def test_same_series_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("calls", service="J48")
        b = reg.counter("calls", service="J48")
        other = reg.counter("calls", service="Data")
        assert a is b and a is not other

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.histogram("lat", op="x", svc="y")
        b = reg.histogram("lat", svc="y", op="x")
        assert a is b

    def test_snapshot_series_ids(self):
        reg = MetricsRegistry()
        reg.counter("n", k="v").inc(3)
        reg.histogram("t.seconds").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"n{k=v}": 3.0}
        assert snap["histograms"]["t.seconds"]["count"] == 1

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}

    def test_global_registry_reset(self):
        get_metrics().counter("stray").inc()
        reset_metrics()
        assert get_metrics().snapshot()["counters"] == {}


def test_format_series():
    assert format_series("plain", ()) == "plain"
    assert format_series("n", (("a", "1"), ("b", "2"))) == "n{a=1,b=2}"
