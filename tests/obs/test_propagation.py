"""Trace-context propagation: SOAP header round trips and the end-to-end
client → HTTP → server span join (the acceptance scenario)."""

import pytest

from repro import obs
from repro.ws import soap
from repro.ws.client import HttpTransport, ServiceProxy
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.service import operation
from repro.ws.soap import SoapRequest
from repro.ws.transport import (InProcessTransport, NetworkModel,
                                SimulatedTransport)


class Echo:
    """Echoes text."""

    @operation
    def shout(self, text: str) -> str:
        """Upper-case the text."""
        return text.upper()


@pytest.fixture()
def server():
    container = ServiceContainer()
    container.deploy(Echo, "Echo")
    with SoapHttpServer(container) as srv:
        yield srv


def spans_by_name():
    return {s.name: s for s in obs.get_tracer().collector.spans()}


class TestSoapHeaderRoundTrip:
    def test_header_carried(self):
        req = SoapRequest("Echo", "shout", {"text": "hi"},
                          trace_id="ab" * 16, parent_span_id="cd" * 8)
        wire = soap.encode_request(req)
        assert b"TraceContext" in wire
        decoded = soap.decode_request(wire)
        assert decoded.trace_id == "ab" * 16
        assert decoded.parent_span_id == "cd" * 8
        assert decoded.params == {"text": "hi"}

    def test_no_header_when_unset(self):
        wire = soap.encode_request(SoapRequest("Echo", "shout",
                                               {"text": "hi"}))
        assert b"TraceContext" not in wire
        decoded = soap.decode_request(wire)
        assert decoded.trace_id == "" and decoded.parent_span_id == ""

    def test_malformed_ids_dropped_not_fatal(self):
        trace_id = "ab" * 16
        wire = soap.encode_request(
            SoapRequest("Echo", "shout", {"text": "hi"},
                        trace_id=trace_id, parent_span_id="cd" * 8))
        # corrupt the trace id in-flight: still a valid envelope, but the
        # id no longer matches the hex grammar -> advisory context dropped
        mangled = wire.replace(trace_id.encode(), b"NOT-HEX!")
        decoded = soap.decode_request(mangled)
        assert decoded.trace_id == ""
        assert decoded.params == {"text": "hi"}


class TestEndToEndJoin:
    def test_client_trace_reaches_server_over_http(self, server):
        """The tentpole acceptance path: one trace id spans the client
        proxy call, the wire hop, the HTTP handler and the dispatch."""
        obs.enable_tracing()
        proxy = ServiceProxy.from_wsdl_url(server.wsdl_url("Echo"))
        assert proxy.shout(text="hi") == "HI"
        proxy.close()

        spans = spans_by_name()
        client = spans["soap:Echo.shout"]
        send = spans["send:http"]
        handler = spans["http:POST /services/Echo"]
        dispatch = spans["dispatch:Echo.shout"]
        op = spans["op:Echo.shout"]
        # one coherent trace across both sides of the socket
        assert {send.trace_id, handler.trace_id, dispatch.trace_id,
                op.trace_id} == {client.trace_id}
        # the handler runs on the server thread, so its parent is the
        # propagated client-side context, not a local span
        assert handler.parent_id == client.span_id
        assert dispatch.parent_id == handler.span_id
        assert op.parent_id == dispatch.span_id

    def test_inprocess_dispatch_joins_too(self):
        obs.enable_tracing()
        container = ServiceContainer()
        container.deploy(Echo, "Echo")
        transport = InProcessTransport(container)
        response = transport.send(SoapRequest("Echo", "shout",
                                              {"text": "ok"}))
        assert response.result == "OK"
        spans = spans_by_name()
        assert spans["dispatch:Echo.shout"].trace_id == \
            spans["send:inprocess"].trace_id

    def test_untraced_call_stays_clean(self, server):
        """With tracing off, nothing is recorded and nothing propagates."""
        transport = HttpTransport(server.endpoint("Echo"))
        request = SoapRequest("Echo", "shout", {"text": "quiet"})
        assert transport.send(request).result == "QUIET"
        transport.close()
        assert request.trace_id == ""
        assert len(obs.get_tracer().collector) == 0


class TestSimulatedTransportCharges:
    def test_charges_recorded_as_span_attributes(self):
        obs.enable_tracing()
        container = ServiceContainer()
        container.deploy(Echo, "Echo")
        model = NetworkModel(latency_s=0.25, bandwidth_bps=1e6)
        transport = SimulatedTransport(InProcessTransport(container),
                                       model=model)
        transport.send(SoapRequest("Echo", "shout", {"text": "hi"}))

        span = spans_by_name()["send:simulated"]
        # request + response both charged: two messages of latency plus
        # the byte transfer time, mirroring transport.virtual_seconds
        assert span.attributes["charge_seconds"] == pytest.approx(
            transport.virtual_seconds, abs=1e-6)
        assert span.attributes["wire_bytes"] == transport.bytes_on_wire
        assert span.attributes["latency_s"] == 0.25
        assert transport.virtual_seconds >= 0.5  # 2 x latency, no sleep
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["ws.transport.simulated_cost_seconds"] == \
            pytest.approx(transport.virtual_seconds, abs=1e-6)
