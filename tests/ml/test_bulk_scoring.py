"""Vectorized bulk scoring parity: one numpy pass over many rows must
answer exactly like the scalar per-instance path, for every registered
classifier — and per-item faults must keep their positions through a
batch."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import synthetic
from repro.errors import DataError, NotFittedError
from repro.ml import evaluation
from repro.ml.base import CLASSIFIERS, CLUSTERERS
from repro.ml.classifiers import NaiveBayes, ZeroR
from repro.services.classifier_service import ClassifierService

#: Models that ship a true vectorised kernel; the hook must stay wired
#: (a silently dropped kernel would still pass parity via the fallback).
VECTORISED_CLASSIFIERS = ("NaiveBayes", "ZeroR", "J48", "REPTree", "IBk",
                          "Logistic")
VECTORISED_CLUSTERERS = ("SimpleKMeans", "FarthestFirst", "EM")


@pytest.fixture(scope="module")
def fitted_models(request):
    """One fitted instance per registered classifier (weather data)."""
    ds = synthetic.weather_nominal()
    models = {}
    for name in CLASSIFIERS.names():
        clf = CLASSIFIERS.create(name)
        clf.fit(ds)
        models[name] = clf
    return ds, models


@pytest.fixture(scope="module")
def fitted_numeric_models(request):
    """The full catalogue again on numeric data with missing cells, so
    numeric tree splits / distance kernels / encoders all take their
    vectorised paths."""
    ds = synthetic.weather_numeric()
    ds[2].set_value(1, float("nan"))
    ds[5].set_value(2, float("nan"))
    ds[11].set_value(1, float("nan"))
    models = {}
    for name in CLASSIFIERS.names():
        clf = CLASSIFIERS.create(name)
        try:
            clf.fit(ds)
        except DataError:
            continue  # nominal-only learners (e.g. ID3) sit this one out
        models[name] = clf
    return ds, models


@pytest.fixture(scope="module")
def fitted_clusterers(request):
    """One fitted instance per registered clusterer (gaussian blobs)."""
    ds = synthetic.gaussians(n_per_cluster=20)
    models = {}
    for name in CLUSTERERS.names():
        c = CLUSTERERS.create(name)
        c.fit(ds)
        models[name] = c
    return ds, models


class TestVectorizedParity:
    @pytest.mark.parametrize("name", sorted(CLASSIFIERS.names()))
    def test_every_registered_classifier_matches_scalar_path(
            self, name, fitted_models):
        ds, models = fitted_models
        clf = models[name]
        batch = clf.distribution_many(ds)
        scalar = np.vstack([clf.distribution(inst) for inst in ds])
        assert batch.shape == scalar.shape
        assert np.allclose(batch, scalar, atol=1e-9), name
        assert clf.predict_many(ds) == clf.predict(ds)

    def test_vectorized_hook_agrees_with_loop_fallback(self, weather):
        """NaiveBayes has a true vectorized path; forcing the loop
        fallback must not change a single probability."""
        clf = NaiveBayes().fit(weather)
        hooked = clf.distribution_many(weather)
        hook = clf._distribution_many
        try:
            clf._distribution_many = None  # disable: loop fallback
            looped = clf.distribution_many(weather)
        finally:
            clf._distribution_many = hook
        assert np.allclose(hooked, looped, atol=1e-12)

    def test_indices_subset_in_order(self, weather):
        clf = NaiveBayes().fit(weather)
        rows = [5, 0, 9, 0]
        batch = clf.distribution_many(weather, rows)
        for out, row in zip(batch, rows):
            assert np.allclose(out, clf.distribution(weather[row]))

    def test_missing_values_survive_vectorization(self):
        ds = synthetic.weather_nominal()
        ds.instances[2].set_value(0, float("nan"))
        ds.instances[7].set_value(1, float("nan"))
        clf = NaiveBayes().fit(ds)
        batch = clf.distribution_many(ds)
        scalar = np.vstack([clf.distribution(inst) for inst in ds])
        assert np.allclose(batch, scalar, atol=1e-9)

    def test_empty_batch(self, weather):
        clf = ZeroR().fit(weather)
        out = clf.distribution_many(weather, [])
        assert out.shape == (0, len(weather.class_attribute.values))

    def test_unfitted_raises(self, weather):
        with pytest.raises(NotFittedError):
            ZeroR().distribution_many(weather)

    @pytest.mark.parametrize("name", sorted(CLASSIFIERS.names()))
    def test_numeric_data_with_missing_matches_scalar_path(
            self, name, fitted_numeric_models):
        """Same parity sweep on numeric attributes with NaN cells: the
        batched tree descent, distance tables and encoders must handle
        missing exactly like their scalar twins."""
        ds, models = fitted_numeric_models
        if name not in models:
            pytest.skip(f"{name} does not accept numeric attributes")
        clf = models[name]
        batch = clf.distribution_many(ds)
        scalar = np.vstack([clf.distribution(inst) for inst in ds])
        assert np.allclose(batch, scalar, atol=1e-9), name
        assert clf.predict_many(ds) == clf.predict(ds)


class TestVectorisedHooks:
    """The newly vectorised kernels must stay wired in: parity alone
    cannot tell a fast path from its loop fallback."""

    @pytest.mark.parametrize("name", VECTORISED_CLASSIFIERS)
    def test_classifier_kernel_present(self, name):
        assert getattr(CLASSIFIERS.create(name),
                       "_distribution_many", None) is not None, name

    @pytest.mark.parametrize("name", VECTORISED_CLUSTERERS)
    def test_clusterer_kernel_present(self, name):
        assert getattr(CLUSTERERS.create(name),
                       "_cluster_many", None) is not None, name

    @pytest.mark.parametrize("name", ("J48", "REPTree", "IBk", "Logistic"))
    def test_new_kernel_agrees_with_loop_fallback(
            self, name, fitted_numeric_models):
        """Force the loop fallback on each new kernel: not a single
        probability may move."""
        ds, models = fitted_numeric_models
        clf = models[name]
        hooked = clf.distribution_many(ds)
        hook = clf._distribution_many
        try:
            clf._distribution_many = None
            looped = clf.distribution_many(ds)
        finally:
            clf._distribution_many = hook
        assert np.allclose(hooked, looped, atol=1e-9), name

    @pytest.mark.parametrize("name", VECTORISED_CLUSTERERS)
    def test_cluster_kernel_agrees_with_loop_fallback(
            self, name, fitted_clusterers):
        ds, models = fitted_clusterers
        c = models[name]
        hooked = c.assign_many(ds)
        hook = c._cluster_many
        try:
            c._cluster_many = None
            looped = c.assign_many(ds)
        finally:
            c._cluster_many = hook
        assert hooked == looped, name


class TestClustererParity:
    @pytest.mark.parametrize("name", sorted(CLUSTERERS.names()))
    def test_every_registered_clusterer_matches_scalar_path(
            self, name, fitted_clusterers):
        ds, models = fitted_clusterers
        c = models[name]
        batch = c.assign_many(ds)
        scalar = [c.cluster_instance(inst) for inst in ds]
        assert batch == scalar, name
        assert c.assign(ds) == scalar

    def test_indices_subset_in_order(self, fitted_clusterers):
        ds, models = fitted_clusterers
        c = models["SimpleKMeans"]
        rows = [7, 0, 13, 0]
        assert c.assign_many(ds, rows) == \
            [c.cluster_instance(ds[r]) for r in rows]

    def test_empty_batch(self, fitted_clusterers):
        ds, models = fitted_clusterers
        assert models["EM"].assign_many(ds, []) == []

    def test_unfitted_raises(self, fitted_clusterers):
        ds, _ = fitted_clusterers
        from repro.ml.clusterers import SimpleKMeans
        with pytest.raises(NotFittedError):
            SimpleKMeans().assign_many(ds)

    def test_views_cluster_like_their_subset(self, fitted_clusterers):
        ds, models = fitted_clusterers
        c = models["FarthestFirst"]
        rows = [2, 19, 4]
        assert c.assign_many(ds.view(rows)) == c.assign_many(ds.subset(rows))


class TestBulkScore:
    def test_error_positions_survive_batching(self, weather):
        clf = NaiveBayes().fit(weather)
        out = evaluation.bulk_score(clf, weather, [0, 99, 3, -1, 5])
        assert out["scored"] == 3
        assert [e[0] for e in out["errors"]] == [1, 3]
        assert out["labels"][1] is None and out["labels"][3] is None
        assert out["distributions"][1] is None
        good = [out["labels"][i] for i in (0, 2, 4)]
        assert good == [clf.predict_label(weather[r]) for r in (0, 3, 5)]

    def test_all_rows_by_default(self, weather):
        clf = ZeroR().fit(weather)
        out = evaluation.bulk_score(clf, weather)
        assert out["scored"] == weather.num_instances
        assert out["errors"] == []


ROWS = st.lists(st.integers(min_value=-3, max_value=25),
                min_size=0, max_size=12)


@given(name=st.sampled_from(sorted(CLASSIFIERS.names())), rows=ROWS)
@settings(max_examples=40, deadline=None)
def test_batch_equals_singles_property(name, rows, fitted_models):
    """For every registered classifier: a batch answers exactly like the
    equivalent sequence of single calls, per-item faults included."""
    ds, models = fitted_models
    clf = models[name]
    out = evaluation.bulk_score(clf, ds, rows)
    n = ds.num_instances
    bad = [pos for pos, r in enumerate(rows) if not 0 <= r < n]
    assert [e[0] for e in out["errors"]] == bad
    assert out["scored"] == len(rows) - len(bad)
    for pos, row in enumerate(rows):
        if pos in bad:
            assert out["labels"][pos] is None
            assert out["distributions"][pos] is None
        else:
            assert out["labels"][pos] == clf.predict_label(ds[row])
            assert np.allclose(out["distributions"][pos],
                               clf.distribution(ds[row]), atol=1e-9)


class TestServiceBatchOps:
    def test_classify_batch_matches_predict(self, weather):
        from repro.data import arff
        doc = arff.dumps(weather)
        service = ClassifierService()
        batch = service.classifyBatch("NaiveBayes", doc, "play")
        single = service.predict("NaiveBayes", doc, doc, "play")
        assert batch["labels"] == single["labels"]
        assert batch["errors"] == []
        assert batch["classifier"] == "NaiveBayes"

    def test_distribution_batch_projects(self, weather):
        from repro.data import arff
        doc = arff.dumps(weather)
        service = ClassifierService()
        out = service.distributionBatch("ZeroR", doc, "play",
                                        rows=[0, 50, 1])
        assert len(out["distributions"]) == 3
        assert out["distributions"][1] is None
        assert [e[0] for e in out["errors"]] == [1]
        assert out["scored"] == 2
        assert "labels" not in out
