"""Evaluation machinery tests: confusion matrices, kappa, stratified CV."""

import pytest

from repro.errors import DataError
from repro.ml import evaluation
from repro.ml.classifiers import J48, ZeroR
from repro.ml.evaluation import (EvaluationResult, cross_validate, evaluate,
                                 stratified_folds, train_test_evaluate)


def result_with(pairs, labels=("a", "b")):
    r = EvaluationResult(tuple(labels))
    for actual, predicted in pairs:
        r.record(actual, predicted)
    return r


class TestEvaluationResult:
    def test_accuracy(self):
        r = result_with([(0, 0), (0, 0), (1, 1), (1, 0)])
        assert r.accuracy == 0.75
        assert r.error_rate == 0.25

    def test_confusion_layout(self):
        r = result_with([(0, 1), (1, 0)])
        assert r.confusion[0, 1] == 1
        assert r.confusion[1, 0] == 1

    def test_kappa_perfect(self):
        r = result_with([(0, 0), (1, 1)])
        assert r.kappa == pytest.approx(1.0)

    def test_kappa_chance(self):
        # predictions independent of truth -> kappa ~ 0
        r = result_with([(0, 0), (0, 1), (1, 0), (1, 1)])
        assert r.kappa == pytest.approx(0.0, abs=1e-9)

    def test_precision_recall_f1(self):
        r = result_with([(0, 0), (0, 0), (0, 1), (1, 0), (1, 1)])
        assert r.precision(0) == pytest.approx(2 / 3)
        assert r.recall(0) == pytest.approx(2 / 3)
        assert r.f1(0) == pytest.approx(2 / 3)

    def test_zero_denominators(self):
        r = result_with([(0, 0)])
        assert r.precision(1) == 0.0
        assert r.recall(1) == 0.0
        assert r.f1(1) == 0.0

    def test_merge(self):
        a = result_with([(0, 0)])
        b = result_with([(1, 1)])
        a.merge(b)
        assert a.total == 2 and a.accuracy == 1.0

    def test_merge_label_mismatch(self):
        a = result_with([(0, 0)])
        b = EvaluationResult(("x", "y"))
        with pytest.raises(DataError):
            a.merge(b)

    def test_weighted_records(self):
        r = EvaluationResult(("a", "b"))
        r.record(0, 0, weight=3.0)
        r.record(1, 0, weight=1.0)
        assert r.accuracy == 0.75

    def test_reports_render(self):
        r = result_with([(0, 0), (1, 0)])
        assert "Correctly Classified" in r.summary()
        assert "classified as" in r.confusion_text()
        assert "Precision" in r.detailed_text()
        assert len(r.full_report()) > 100


class TestEvaluate:
    def test_skips_missing_class(self, weather):
        clf = ZeroR().fit(weather)
        test = weather.copy()
        test[0].set_value(test.class_index, float("nan"))
        r = evaluate(clf, test)
        assert r.total == 13

    def test_train_test_evaluate(self, breast_cancer):
        r = train_test_evaluate(J48(), breast_cancer, 0.66, seed=2)
        assert r.total == pytest.approx(286 * 0.34, abs=2)
        assert r.accuracy > 0.6


class TestStratifiedFolds:
    def test_partition_property(self, breast_cancer):
        folds = stratified_folds(breast_cancer, 10, seed=3)
        flat = sorted(i for fold in folds for i in fold)
        assert flat == list(range(286))

    def test_stratification(self, breast_cancer):
        folds = stratified_folds(breast_cancer, 10, seed=3)
        for fold in folds:
            sub = breast_cancer.subset(fold)
            counts = sub.value_counts("Class")
            frac = counts["recurrence-events"] / len(sub)
            assert 0.15 < frac < 0.45  # global fraction is 0.297

    def test_too_many_folds(self, weather):
        with pytest.raises(DataError):
            stratified_folds(weather, 100)

    def test_minimum_two_folds(self, weather):
        with pytest.raises(DataError):
            stratified_folds(weather, 1)

    def test_deterministic(self, weather):
        assert stratified_folds(weather, 3, 7) == \
            stratified_folds(weather, 3, 7)


class TestCrossValidate:
    def test_total_covers_everything(self, breast_cancer):
        r = cross_validate(lambda: ZeroR(), breast_cancer, k=10)
        assert r.total == 286

    def test_zero_r_matches_prior(self, breast_cancer):
        r = cross_validate(lambda: ZeroR(), breast_cancer, k=10)
        assert r.accuracy == pytest.approx(201 / 286, abs=0.01)

    def test_fresh_model_per_fold(self, weather):
        fitted = []

        def factory():
            clf = ZeroR()
            fitted.append(clf)
            return clf

        cross_validate(factory, weather, k=3)
        assert len(fitted) == 3
