"""Cluster-evaluation tests (silhouette, classes-to-clusters)."""

import pytest

from repro.data import synthetic
from repro.errors import DataError
from repro.ml.cluster_eval import (classes_to_clusters, evaluate_clusterer,
                                   silhouette)
from repro.ml.clusterers import SimpleKMeans


@pytest.fixture(scope="module")
def separated():
    return synthetic.gaussians(3, 40, 2, spread=0.3, labelled=True,
                               seed=23)


class TestSilhouette:
    def test_good_clustering_scores_high(self, separated):
        features = separated.select_attributes([0, 1])
        km = SimpleKMeans(k=3, seed=1).fit(features)
        score = silhouette(features, km.assign(features))
        assert score > 0.6

    def test_random_assignment_scores_low(self, separated):
        import numpy as np
        features = separated.select_attributes([0, 1])
        rng = np.random.default_rng(0)
        random_labels = [int(v) for v in rng.integers(0, 3,
                                                      len(features))]
        good = SimpleKMeans(k=3, seed=1).fit(features)
        assert silhouette(features, random_labels) < \
            silhouette(features, good.assign(features))

    def test_single_cluster_is_zero(self, separated):
        features = separated.select_attributes([0, 1])
        assert silhouette(features, [0] * len(features)) == 0.0

    def test_singletons_handled(self, separated):
        features = separated.select_attributes([0, 1])
        labels = [0] * len(features)
        labels[0] = 1  # one singleton cluster
        score = silhouette(features, labels)
        assert -1.0 <= score <= 1.0

    def test_length_mismatch(self, separated):
        with pytest.raises(DataError):
            silhouette(separated, [0])

    def test_k_sweep_peaks_at_true_k(self, separated):
        features = separated.select_attributes([0, 1])
        scores = {}
        for k in (2, 3, 5):
            km = SimpleKMeans(k=k, seed=1).fit(features)
            scores[k] = silhouette(features, km.assign(features))
        assert scores[3] == max(scores.values())


class TestClassesToClusters:
    def test_perfect_recovery(self, separated):
        features = separated.select_attributes([0, 1])
        km = SimpleKMeans(k=3, seed=1).fit(features)
        out = classes_to_clusters(separated, km.assign(features))
        assert out["error_rate"] < 0.05
        assert out["total"] == len(separated)
        assert len(out["mapping"]) == 3

    def test_requires_class(self, blobs):
        with pytest.raises(DataError):
            classes_to_clusters(blobs, [0] * len(blobs))

    def test_evaluate_clusterer_report(self, separated):
        features = separated.select_attributes([0, 1])
        km = SimpleKMeans(k=3, seed=1).fit(features)
        # evaluate against the labelled dataset: same rows + class column
        report = evaluate_clusterer(km, features)
        assert report["n_clusters"] == 3
        assert "silhouette" in report

    def test_breast_cancer_clusters_vs_class(self, breast_cancer):
        km = SimpleKMeans(k=2, seed=1).fit(breast_cancer)
        out = classes_to_clusters(breast_cancer,
                                  km.assign(breast_cancer))
        # clustering is unsupervised; it should still beat random (50%)
        assert out["error_rate"] < 0.5
