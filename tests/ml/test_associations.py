"""Association-rule tests: Apriori semantics, FP-Growth equivalence,
support monotonicity properties."""

import pytest
from hypothesis import given, settings, strategies as st

import numpy as np

from repro.data import Attribute, Dataset
from repro.errors import DataError
from repro.ml.associations import Apriori, FPGrowth


@pytest.fixture(scope="module")
def mined(baskets):
    return Apriori(min_support=0.1, min_confidence=0.7,
                   max_rules=10000).fit(baskets)


class TestApriori:
    def test_planted_rule_found(self, mined, baskets):
        bread = baskets.attribute_index("bread")
        butter = baskets.attribute_index("butter")
        t_bread = baskets.attribute("bread").index_of("t")
        t_butter = baskets.attribute("butter").index_of("t")
        found = any(
            ((bread, t_bread),) == rule.antecedent
            and ((butter, t_butter),) == rule.consequent
            for rule in mined.rules)
        assert found, "bread=t ==> butter=t should be mined"

    def test_supports_are_fractions(self, mined):
        for itemset, support in mined.itemsets.items():
            assert 0 < support <= 1.0

    def test_support_antimonotone(self, mined):
        """Every subset of a frequent itemset is frequent with >= support."""
        for itemset, support in mined.itemsets.items():
            if len(itemset) < 2:
                continue
            for drop in range(len(itemset)):
                subset = tuple(v for i, v in enumerate(itemset)
                               if i != drop)
                assert subset in mined.itemsets
                assert mined.itemsets[subset] >= support - 1e-12

    def test_confidence_definition(self, mined):
        for rule in mined.rules:
            ant = mined.itemsets[rule.antecedent]
            both = mined.itemsets.get(
                tuple(sorted(rule.antecedent + rule.consequent)))
            assert both is not None
            assert rule.confidence == pytest.approx(both / ant)

    def test_confidence_threshold_respected(self, mined):
        assert all(rule.confidence >= 0.7 for rule in mined.rules)

    def test_lift_definition(self, mined):
        for rule in mined.rules:
            con = mined.itemsets[rule.consequent]
            assert rule.lift == pytest.approx(rule.confidence / con)

    def test_max_rules_cap(self, baskets):
        capped = Apriori(min_support=0.05, min_confidence=0.3,
                         max_rules=5).fit(baskets)
        assert len(capped.rules) == 5

    def test_max_size_cap(self, baskets):
        small = Apriori(min_support=0.05, max_size=2).fit(baskets)
        assert max(len(i) for i in small.itemsets) <= 2

    def test_rules_text(self, mined, baskets):
        text = mined.rules_text()
        assert "==>" in text and "conf:" in text

    def test_numeric_attribute_rejected(self, two_class):
        with pytest.raises(DataError):
            Apriori().fit(two_class)

    def test_empty_dataset_rejected(self, baskets):
        with pytest.raises(DataError):
            Apriori().fit(baskets.copy_header())

    def test_higher_support_fewer_itemsets(self, baskets):
        low = Apriori(min_support=0.05).fit(baskets)
        high = Apriori(min_support=0.4).fit(baskets)
        assert len(high.itemsets) < len(low.itemsets)
        assert set(high.itemsets) <= set(low.itemsets)


class TestFPGrowthEquivalence:
    def test_same_itemsets_as_apriori(self, baskets):
        a = Apriori(min_support=0.15, max_size=4).fit(baskets)
        f = FPGrowth(min_support=0.15, max_size=4).fit(baskets)
        assert set(a.itemsets) == set(f.itemsets)
        for itemset in a.itemsets:
            assert a.itemsets[itemset] == pytest.approx(
                f.itemsets[itemset])

    def test_same_rules(self, baskets):
        a = Apriori(min_support=0.15, min_confidence=0.6,
                    max_rules=10 ** 6).fit(baskets)
        f = FPGrowth(min_support=0.15, min_confidence=0.6,
                     max_rules=10 ** 6).fit(baskets)
        a_rules = {(r.antecedent, r.consequent) for r in a.rules}
        f_rules = {(r.antecedent, r.consequent) for r in f.rules}
        assert a_rules == f_rules


@st.composite
def transaction_datasets(draw):
    n_items = draw(st.integers(2, 5))
    n_rows = draw(st.integers(5, 40))
    attrs = [Attribute.nominal(f"i{j}", ("f", "t"))
             for j in range(n_items)]
    ds = Dataset("txns", attrs)
    for _ in range(n_rows):
        ds.add_row([draw(st.sampled_from(["f", "t"]))
                    for _ in range(n_items)])
    return ds


@given(transaction_datasets(),
       st.sampled_from([0.1, 0.25, 0.5]))
@settings(max_examples=25, deadline=None)
def test_property_apriori_fpgrowth_agree(ds, min_support):
    """Property: both miners find identical itemsets with equal supports."""
    a = Apriori(min_support=min_support, max_size=4).fit(ds)
    f = FPGrowth(min_support=min_support, max_size=4).fit(ds)
    assert set(a.itemsets) == set(f.itemsets)
    for k, v in a.itemsets.items():
        assert f.itemsets[k] == pytest.approx(v)


@given(transaction_datasets())
@settings(max_examples=20, deadline=None)
def test_property_supports_match_bruteforce(ds):
    """Property: mined supports equal brute-force counting."""
    mined = Apriori(min_support=0.2, max_size=3).fit(ds)
    matrix = ds.to_matrix()
    n = matrix.shape[0]
    for itemset, support in mined.itemsets.items():
        mask = np.ones(n, dtype=bool)
        for attr, value in itemset:
            mask &= matrix[:, attr] == value
        assert support == pytest.approx(mask.sum() / n)
