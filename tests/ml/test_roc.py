"""ROC curve and AUC tests."""

import pytest

from repro.data import Attribute, Dataset, synthetic
from repro.errors import DataError
from repro.ml.classifiers import J48, Logistic, ZeroR
from repro.ml.evaluation import auc, roc_points


class TestRocPoints:
    @pytest.fixture(scope="class")
    def fitted(self):
        train = synthetic.numeric_two_class(n=200, separation=3.0, seed=6)
        test = synthetic.numeric_two_class(n=150, separation=3.0, seed=7)
        return Logistic().fit(train), test

    def test_endpoints(self, fitted):
        clf, test = fitted
        points = roc_points(clf, test)
        assert points[0][:2] == (0.0, 0.0)
        assert points[-1][:2] == (1.0, 1.0)

    def test_monotone(self, fitted):
        clf, test = fitted
        points = roc_points(clf, test)
        fprs = [p[0] for p in points]
        tprs = [p[1] for p in points]
        assert fprs == sorted(fprs)
        assert tprs == sorted(tprs)

    def test_thresholds_descend(self, fitted):
        clf, test = fitted
        thresholds = [p[2] for p in roc_points(clf, test)]
        assert thresholds == sorted(thresholds, reverse=True)

    def test_good_model_high_auc(self, fitted):
        clf, test = fitted
        assert auc(clf, test) > 0.95

    def test_zero_r_auc_is_half(self):
        ds = synthetic.numeric_two_class(n=100, seed=8)
        clf = ZeroR().fit(ds)
        # constant scores -> one diagonal step -> AUC 0.5
        assert auc(clf, ds) == pytest.approx(0.5)

    def test_auc_bounded(self, breast_cancer):
        clf = J48().fit(breast_cancer)
        value = auc(clf, breast_cancer, positive_class=1)
        assert 0.5 < value <= 1.0

    def test_positive_class_symmetry(self, fitted):
        clf, test = fitted
        a = auc(clf, test, positive_class=1)
        b = auc(clf, test, positive_class=0)
        # for a two-class scorer p0 = 1 - p1, the two AUCs coincide
        assert a == pytest.approx(b, abs=1e-9)

    def test_single_class_test_set_rejected(self):
        ds = Dataset("d", [Attribute.numeric("x"),
                           Attribute.nominal("c", ["a", "b"])],
                     class_index=1)
        for i in range(5):
            ds.add_row([float(i), "a"])
        clf = ZeroR().fit(ds)
        with pytest.raises(DataError):
            roc_points(clf, ds)

    def test_empty_test_set_rejected(self, breast_cancer):
        clf = ZeroR().fit(breast_cancer)
        with pytest.raises(DataError):
            roc_points(clf, breast_cancer.copy_header())
