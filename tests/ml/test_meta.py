"""Meta-classifier tests (ensembles + composition schemes)."""

import pytest

from repro.data import synthetic
from repro.errors import DataError, OptionError
from repro.ml import evaluation
from repro.ml.classifiers import (AdaBoostM1, Bagging,
                                  ClassificationViaClustering,
                                  FilteredClassifier, MultiScheme,
                                  RandomForest, RandomTree, Stacking, Vote)


class TestBagging:
    def test_improves_on_unstable_base(self):
        train = synthetic.numeric_two_class(n=120, separation=1.2, seed=21)
        test = synthetic.numeric_two_class(n=200, separation=1.2, seed=22)
        single = RandomTree(seed=1).fit(train)
        bagged = Bagging(base="RandomTree", iterations=15).fit(train)
        acc_single = evaluation.evaluate(single, test).accuracy
        acc_bagged = evaluation.evaluate(bagged, test).accuracy
        assert acc_bagged >= acc_single - 0.02

    def test_deterministic_given_seed(self, two_class):
        a = Bagging(seed=3, iterations=3).fit(two_class)
        b = Bagging(seed=3, iterations=3).fit(two_class)
        inst = two_class[0]
        assert a.distribution(inst) == pytest.approx(b.distribution(inst))

    def test_base_options_forwarded(self, two_class):
        clf = Bagging(base="J48", base_options="min_obj=5",
                      iterations=2).fit(two_class)
        assert clf._members[0].opt("min_obj") == 5

    def test_bad_base_options_rejected(self, two_class):
        with pytest.raises(OptionError):
            Bagging(base="J48", base_options="nope").fit(two_class)


class TestAdaBoost:
    def test_boosting_beats_single_stump(self, breast_cancer):
        from repro.ml.classifiers import DecisionStump
        stump = DecisionStump().fit(breast_cancer)
        boosted = AdaBoostM1(iterations=15).fit(breast_cancer)
        assert evaluation.evaluate(boosted, breast_cancer).accuracy > \
            evaluation.evaluate(stump, breast_cancer).accuracy

    def test_member_weights_positive(self, two_class):
        clf = AdaBoostM1(iterations=5).fit(two_class)
        assert all(alpha > 0 for _, alpha in clf._members)

    def test_early_stop_on_perfect_base(self, two_class):
        # J48 memorises the separable set -> err ~ 0 -> stops early
        clf = AdaBoostM1(base="IBk", iterations=10).fit(two_class)
        assert len(clf._members) <= 10


class TestRandomForest:
    def test_accuracy(self):
        train = synthetic.numeric_two_class(n=150, separation=2.0, seed=31)
        test = synthetic.numeric_two_class(n=100, separation=2.0, seed=32)
        forest = RandomForest(trees=15).fit(train)
        assert evaluation.evaluate(forest, test).accuracy > 0.85

    def test_model_text(self, two_class):
        forest = RandomForest(trees=3).fit(two_class)
        assert "RandomForest of 3 trees" in forest.model_text()

    def test_random_tree_respects_k(self, breast_cancer):
        tree = RandomTree(k=1, seed=5).fit(breast_cancer)
        assert tree.root is not None


class TestVoteStacking:
    def test_vote_members(self, weather_numeric):
        clf = Vote(members="J48,NaiveBayes").fit(weather_numeric)
        assert len(clf._members) == 2
        assert evaluation.evaluate(clf, weather_numeric).accuracy > 0.7

    def test_vote_empty_members(self, weather_numeric):
        with pytest.raises(DataError):
            Vote(members=" , ").fit(weather_numeric)

    def test_stacking_runs_and_predicts(self, two_class):
        clf = Stacking(members="DecisionStump,NaiveBayes", meta="Logistic",
                       folds=3).fit(two_class)
        acc = evaluation.evaluate(clf, two_class).accuracy
        assert acc > 0.8

    def test_multischeme_picks_best(self, two_class):
        clf = MultiScheme(members="ZeroR,NaiveBayes", folds=3)
        clf.fit(two_class)
        assert clf.chosen == "NaiveBayes"
        assert clf.cv_scores["NaiveBayes"] > clf.cv_scores["ZeroR"]


class TestFilteredAndViaClustering:
    def test_filtered_discretize_naive_bayes(self, two_class):
        clf = FilteredClassifier(filter="Discretize",
                                 base="NaiveBayes").fit(two_class)
        assert evaluation.evaluate(clf, two_class).accuracy > 0.8

    def test_filtered_replace_missing_enables_id3(self, breast_cancer):
        clf = FilteredClassifier(filter="ReplaceMissing",
                                 base="Id3").fit(breast_cancer)
        assert evaluation.evaluate(clf, breast_cancer).accuracy > 0.7

    def test_filtered_unknown_filter(self, two_class):
        with pytest.raises(DataError):
            FilteredClassifier(filter="Quantize").fit(two_class)

    @pytest.fixture(scope="class")
    def separated(self):
        return synthetic.gaussians(3, 40, 2, spread=0.3, labelled=True,
                                   seed=13)

    def test_via_clustering(self, separated):
        clf = ClassificationViaClustering().fit(separated)
        acc = evaluation.evaluate(clf, separated).accuracy
        assert acc > 0.9  # well-separated blobs

    def test_via_clustering_em(self, separated):
        clf = ClassificationViaClustering(
            clusterer="EM", clusterer_options="k=3").fit(separated)
        assert evaluation.evaluate(clf, separated).accuracy > 0.8
