"""Cross-cutting behaviour of every registered classifier, plus targeted
tests for the simple/bayes/lazy/function families."""

import pytest

from repro.data import Attribute, Dataset, synthetic
from repro.errors import DataError
from repro.ml import CLASSIFIERS, evaluation
from repro.ml.classifiers import (IBk, Id3, Logistic, MultilayerPerceptron,
                                  NaiveBayes, NaiveBayesUpdateable, OneR,
                                  Prism, ZeroR)

NOMINAL_ONLY = {"Id3", "Prism"}


@pytest.mark.parametrize("name", CLASSIFIERS.names())
def test_every_classifier_full_protocol(name, weather, weather_numeric):
    """fit → distribution → predict → to_text works for every classifier,
    and every distribution is a valid probability vector."""
    ds = weather if name in NOMINAL_ONLY else weather_numeric
    clf = CLASSIFIERS.create(name)
    clf.fit(ds)
    for inst in ds:
        dist = clf.distribution(inst)
        assert dist.shape == (2,)
        assert dist.min() >= -1e-12
        assert dist.sum() == pytest.approx(1.0, abs=1e-9)
    text = clf.to_text()
    assert isinstance(text, str) and len(text) > 10
    labels = {clf.predict_label(inst) for inst in ds}
    assert labels <= {"yes", "no"}


@pytest.mark.parametrize("name", sorted(set(CLASSIFIERS.names())
                                        - NOMINAL_ONLY
                                        - {"ZeroR"}))
def test_every_classifier_beats_chance_on_separable_data(name):
    """On a well-separated two-class problem every non-trivial classifier
    should clearly beat the 50% floor out of sample."""
    train = synthetic.numeric_two_class(n=160, separation=4.0, seed=11)
    test = synthetic.numeric_two_class(n=80, separation=4.0, seed=12)
    clf = CLASSIFIERS.create(name)
    clf.fit(train)
    acc = evaluation.evaluate(clf, test).accuracy
    assert acc > 0.75, f"{name} reached only {acc:.2f}"


class TestZeroROneR:
    def test_zero_r_majority(self, weather):
        clf = ZeroR().fit(weather)
        assert all(label == "yes" for label in
                   (clf.predict_label(i) for i in weather))

    def test_one_r_picks_outlook(self, weather):
        clf = OneR().fit(weather)
        # outlook is the canonical 1R attribute for weather (10/14 correct)
        assert "outlook" in clf.model_text()

    def test_one_r_numeric_buckets(self, weather_numeric):
        clf = OneR(min_bucket=3).fit(weather_numeric)
        acc = evaluation.evaluate(clf, weather_numeric).accuracy
        assert acc >= 0.6


class TestId3Prism:
    def test_id3_perfect_on_weather(self, weather):
        clf = Id3().fit(weather)
        assert evaluation.evaluate(clf, weather).accuracy == 1.0

    def test_id3_rejects_numeric(self, weather_numeric):
        with pytest.raises(DataError):
            Id3().fit(weather_numeric)

    def test_id3_rejects_missing(self, breast_cancer):
        with pytest.raises(DataError):
            Id3().fit(breast_cancer)

    def test_prism_rules_cover_weather(self, weather):
        clf = Prism().fit(weather)
        assert evaluation.evaluate(clf, weather).accuracy >= 0.9
        assert "If " in clf.model_text()

    def test_prism_rejects_numeric(self, weather_numeric):
        with pytest.raises(DataError):
            Prism().fit(weather_numeric)


class TestNaiveBayes:
    def test_batch_equals_streaming(self, weather):
        batch = NaiveBayes().fit(weather)
        inc = NaiveBayesUpdateable()
        inc.begin(weather)
        for inst in weather:
            inc.update(inst)
        for inst in weather:
            assert batch.distribution(inst) == pytest.approx(
                inc.distribution(inst))

    def test_gaussian_estimates(self, weather_numeric):
        clf = NaiveBayes().fit(weather_numeric)
        text = clf.model_text()
        assert "N(mu=" in text

    def test_streaming_requires_begin(self):
        clf = NaiveBayesUpdateable()
        from repro.errors import NotFittedError
        with pytest.raises(NotFittedError):
            clf.update(None)

    def test_missing_attribute_skipped(self, breast_cancer):
        clf = NaiveBayes().fit(breast_cancer)
        # instance with a missing cell still classifiable
        idx = breast_cancer.attribute_index("node-caps")
        inst = breast_cancer[0].copy()
        inst.set_value(idx, float("nan"))
        assert clf.distribution(inst).sum() == pytest.approx(1.0)

    def test_smoothing_prevents_zero_probability(self, weather):
        clf = NaiveBayes(smoothing=1.0).fit(weather)
        for inst in weather:
            assert (clf.distribution(inst) > 0).all()


class TestIBk:
    def test_ib1_memorises_training(self, two_class):
        clf = IBk(k=1).fit(two_class)
        assert evaluation.evaluate(clf, two_class).accuracy == 1.0

    def test_k_larger_than_dataset(self, weather_numeric):
        clf = IBk(k=100).fit(weather_numeric)
        # k clipped to dataset size -> majority vote
        assert clf.predict_label(weather_numeric[0]) == "yes"

    def test_distance_weighting_prefers_close(self, two_class):
        clf = IBk(k=5, distance_weighting=True).fit(two_class)
        assert evaluation.evaluate(clf, two_class).accuracy > 0.9

    def test_incremental_update(self, weather_numeric):
        clf = IBk(k=1)
        clf.begin(weather_numeric)
        for inst in weather_numeric:
            clf.update(inst)
        assert evaluation.evaluate(clf, weather_numeric).accuracy == 1.0

    def test_mixed_attributes_and_missing(self, breast_cancer):
        clf = IBk(k=3).fit(breast_cancer)
        acc = evaluation.evaluate(clf, breast_cancer).accuracy
        assert acc > 0.7


class TestGradientLearners:
    def test_logistic_separable(self):
        ds = synthetic.numeric_two_class(n=200, separation=5.0, seed=3)
        clf = Logistic().fit(ds)
        assert evaluation.evaluate(clf, ds).accuracy > 0.95

    def test_logistic_on_nominal_data(self, weather):
        clf = Logistic().fit(weather)  # one-hot path
        assert evaluation.evaluate(clf, weather).accuracy > 0.7

    def test_mlp_solves_xor(self):
        ds = synthetic.xor_problem(n=240, noise=0.08, seed=4)
        clf = MultilayerPerceptron(hidden_neurons=8, epochs=400,
                                   learning_rate=0.5, seed=2)
        clf.fit(ds)
        acc = evaluation.evaluate(clf, ds).accuracy
        assert acc > 0.9, f"XOR accuracy {acc:.2f}"

    def test_mlp_paper_options_exposed(self):
        names = {s["name"] for s in
                 MultilayerPerceptron.describe_options()}
        # §4.4: "number of neurons in the hidden layer, the momentum and
        # the learning rate"
        assert {"hidden_neurons", "momentum", "learning_rate"} <= names

    def test_mlp_deterministic_given_seed(self, two_class):
        a = MultilayerPerceptron(seed=7, epochs=20).fit(two_class)
        b = MultilayerPerceptron(seed=7, epochs=20).fit(two_class)
        inst = two_class[0]
        assert a.distribution(inst) == pytest.approx(b.distribution(inst))


class TestEdgeCases:
    def test_single_attribute_dataset(self):
        ds = Dataset("d", [Attribute.nominal("c", ["a", "b"])],
                     class_index=0)
        ds.add_row(["a"])
        ds.add_row(["b"])
        clf = ZeroR().fit(ds)
        assert clf.distribution(ds[0]).sum() == pytest.approx(1.0)

    def test_three_class_problem(self):
        ds = synthetic.gaussians(3, 30, 2, labelled=True, seed=9)
        clf = NaiveBayes().fit(ds)
        assert evaluation.evaluate(clf, ds).accuracy > 0.9
        assert clf.distribution(ds[0]).shape == (3,)
