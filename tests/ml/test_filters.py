"""Filter tests: fit/apply contract and each transformation's semantics."""

import math

import pytest

from repro.data import Attribute, Dataset
from repro.errors import DataError
from repro.ml.filters import (Discretize, NominalToBinary, Normalize,
                              RemoveAttributes, ReplaceMissing, Standardize)


class TestContract:
    def test_apply_before_fit(self, weather_numeric):
        with pytest.raises(DataError):
            Normalize().apply(weather_numeric)

    def test_schema_mismatch(self, weather, weather_numeric):
        f = Normalize().fit(weather_numeric)
        with pytest.raises(DataError):
            f.apply(weather)

    def test_fit_apply_shortcut(self, weather_numeric):
        out = Normalize().fit_apply(weather_numeric)
        assert out.num_instances == weather_numeric.num_instances


class TestReplaceMissing:
    def test_no_missing_after(self, breast_cancer):
        out = ReplaceMissing().fit_apply(breast_cancer)
        assert out.num_missing() == 0
        assert out.num_instances == 286

    def test_mode_imputation(self, breast_cancer):
        out = ReplaceMissing().fit_apply(breast_cancer)
        # node-caps mode is 'no'; the 8 missing become 'no'
        assert out.value_counts("node-caps")["no"] == 222 + 8

    def test_mean_imputation(self):
        ds = Dataset("d", [Attribute.numeric("x")])
        ds.add_row([1.0])
        ds.add_row([3.0])
        ds.add_row([None])
        out = ReplaceMissing().fit_apply(ds)
        assert out[2].value(0) == pytest.approx(2.0)

    def test_train_statistics_applied_to_test(self):
        train = Dataset("d", [Attribute.numeric("x")])
        train.add_row([10.0])
        train.add_row([20.0])
        test = train.copy_header()
        test.add_row([None])
        f = ReplaceMissing().fit(train)
        assert f.apply(test)[0].value(0) == pytest.approx(15.0)


class TestScaling:
    def test_normalize_range(self, weather_numeric):
        out = Normalize().fit_apply(weather_numeric)
        col = out.column("temperature")
        assert col.min() == pytest.approx(0.0)
        assert col.max() == pytest.approx(1.0)

    def test_normalize_leaves_nominal(self, weather_numeric):
        out = Normalize().fit_apply(weather_numeric)
        assert out.value_counts("outlook") == \
            weather_numeric.value_counts("outlook")

    def test_standardize_moments(self, weather_numeric):
        out = Standardize().fit_apply(weather_numeric)
        col = out.column("humidity")
        assert float(col.mean()) == pytest.approx(0.0, abs=1e-9)
        assert float(col.std()) == pytest.approx(1.0, abs=1e-9)

    def test_missing_preserved(self):
        ds = Dataset("d", [Attribute.numeric("x")])
        ds.add_row([1.0])
        ds.add_row([None])
        out = Normalize().fit_apply(ds)
        assert math.isnan(out[1].value(0))


class TestDiscretize:
    def test_width_bins(self, two_class):
        out = Discretize(bins=4, strategy="width").fit_apply(two_class)
        for j in range(4):
            assert out.attribute(j).is_nominal
            assert out.attribute(j).num_values == 4
        # class untouched
        assert out.class_attribute.is_nominal

    def test_frequency_bins_balanced(self):
        ds = Dataset("d", [Attribute.numeric("x"),
                           Attribute.nominal("c", ["a", "b"])],
                     class_index=1)
        for i in range(100):
            ds.add_row([float(i), "a"])
        out = Discretize(bins=4, strategy="frequency").fit_apply(ds)
        counts = out.value_counts("x")
        assert max(counts.values()) - min(counts.values()) <= 2

    def test_bad_parameters(self):
        with pytest.raises(DataError):
            Discretize(bins=1)
        with pytest.raises(DataError):
            Discretize(strategy="entropy")

    def test_constant_column(self):
        ds = Dataset("d", [Attribute.numeric("x")])
        ds.add_row([5.0])
        ds.add_row([5.0])
        out = Discretize(bins=3).fit_apply(ds)
        assert out.attribute("x").num_values == 1


class TestNominalToBinary:
    def test_expansion(self, weather):
        out = NominalToBinary().fit_apply(weather)
        names = [a.name for a in out.attributes]
        assert "outlook=sunny" in names
        assert "outlook=rainy" in names
        # binary attributes stay as-is
        assert "humidity" in names
        assert out.class_attribute.name == "play"

    def test_one_hot_semantics(self, weather):
        out = NominalToBinary().fit_apply(weather)
        idx = [i for i, a in enumerate(out.attributes)
               if a.name.startswith("outlook=")]
        row = out[0]
        hot = [row.value(i) for i in idx]
        assert sum(hot) == 1.0

    def test_instances_preserved(self, weather):
        out = NominalToBinary().fit_apply(weather)
        assert out.num_instances == 14


class TestRemoveAttributes:
    def test_remove(self, weather):
        out = RemoveAttributes(["windy"]).fit_apply(weather)
        assert out.num_attributes == 4
        assert out.class_attribute.name == "play"

    def test_cannot_remove_class(self, weather):
        with pytest.raises(DataError):
            RemoveAttributes(["play"]).fit(weather)

    def test_unknown_attribute(self, weather):
        with pytest.raises(DataError):
            RemoveAttributes(["nope"]).fit(weather)


class TestPipelineComposition:
    def test_filters_chain(self, breast_cancer):
        step1 = ReplaceMissing().fit_apply(breast_cancer)
        step2 = NominalToBinary().fit_apply(step1)
        assert step2.num_missing() == 0
        assert step2.num_attributes > breast_cancer.num_attributes

    def test_discretize_then_apriori(self, two_class):
        nominal = Discretize(bins=3).fit_apply(two_class)
        from repro.ml.associations import Apriori
        mined = Apriori(min_support=0.1, min_confidence=0.5).fit(nominal)
        assert len(mined.itemsets) > 0
