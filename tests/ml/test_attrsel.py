"""Attribute search & selection tests — the '20 approaches' subsystem."""

import pytest

from repro.errors import OptionError
from repro.ml.attrsel import (BestFirst, CfsSubsetEvaluator,
                              ConsistencyEvaluator, GeneticSearch,
                              GreedyStepwise, RANKERS, Ranker, RandomSearch,
                              approaches, rank_attributes,
                              select_attributes)
from repro.ml.attrsel.evaluators import (chi_squared, gain_ratio, info_gain,
                                         one_r_accuracy, relief_f_all,
                                         symmetrical_uncertainty)


class TestCatalogue:
    def test_at_least_twenty_approaches(self):
        # the paper: "20 different approaches are provided"
        assert len(approaches()) >= 20

    def test_genetic_search_present(self):
        names = {a.name for a in approaches()}
        assert any("GeneticSearch" in n for n in names)

    def test_unique_names(self):
        names = [a.name for a in approaches()]
        assert len(names) == len(set(names))


class TestRankers:
    @pytest.mark.parametrize("measure", sorted(RANKERS))
    def test_node_caps_ranks_high(self, breast_cancer, measure):
        """Every measure should place the planted predictor in the top 3."""
        ranking = rank_attributes(breast_cancer, measure)
        top3 = [name for name, _ in ranking[:3]]
        assert "node-caps" in top3, f"{measure}: {ranking[:3]}"

    def test_info_gain_nonnegative(self, breast_cancer):
        for i in range(breast_cancer.num_attributes):
            if i == breast_cancer.class_index:
                continue
            assert info_gain(breast_cancer, i) >= -1e-12

    def test_gain_ratio_bounded(self, breast_cancer):
        for i in range(breast_cancer.num_attributes - 1):
            assert gain_ratio(breast_cancer, i) <= 1.0 + 1e-9

    def test_symmetrical_uncertainty_bounds(self, breast_cancer):
        for i in range(breast_cancer.num_attributes - 1):
            su = symmetrical_uncertainty(breast_cancer, i)
            assert -1e-12 <= su <= 1.0 + 1e-9

    def test_chi_squared_nonnegative(self, breast_cancer):
        assert chi_squared(breast_cancer, 0) >= 0

    def test_one_r_accuracy_bounds(self, breast_cancer):
        acc = one_r_accuracy(
            breast_cancer, breast_cancer.attribute_index("node-caps"))
        assert 0.5 < acc <= 1.0

    def test_numeric_attributes_binned(self, two_class):
        ranking = rank_attributes(two_class, "InfoGain")
        assert len(ranking) == 4
        assert all(score >= 0 for _, score in ranking)

    def test_relief_f_prefers_informative(self, two_class):
        weights = relief_f_all(two_class, n_samples=60, seed=1)
        class_idx = two_class.class_index
        informative = [w for i, w in enumerate(weights) if i != class_idx]
        assert max(informative) > 0

    def test_unknown_measure(self, breast_cancer):
        with pytest.raises(OptionError):
            rank_attributes(breast_cancer, "Magic")


class TestSearchers:
    @pytest.fixture(scope="class")
    def evaluator(self, breast_cancer):
        return CfsSubsetEvaluator(breast_cancer)

    def test_best_first_finds_planted(self, evaluator, breast_cancer):
        subset = BestFirst().search(evaluator)
        names = {breast_cancer.attribute(i).name for i in subset}
        assert "node-caps" in names

    def test_greedy_forward(self, evaluator, breast_cancer):
        subset = GreedyStepwise().search(evaluator)
        names = {breast_cancer.attribute(i).name for i in subset}
        assert "node-caps" in names

    def test_genetic_search_deterministic(self, evaluator):
        a = GeneticSearch(seed=5, generations=5).search(evaluator)
        b = GeneticSearch(seed=5, generations=5).search(evaluator)
        assert a == b

    def test_genetic_beats_random_floor(self, evaluator):
        genetic = GeneticSearch(generations=10, seed=1).search(evaluator)
        assert evaluator.evaluate(genetic) > 0

    def test_random_search(self, evaluator):
        subset = RandomSearch(probes=30, seed=2).search(evaluator)
        assert evaluator.evaluate(subset) > 0

    def test_ranker_top_n(self, breast_cancer):
        evaluator = CfsSubsetEvaluator(breast_cancer)
        subset = Ranker("InfoGain", top=3).search(evaluator)
        assert len(subset) == 3


class TestSubsetEvaluators:
    def test_cfs_prefers_predictive_subset(self, breast_cancer):
        ev = CfsSubsetEvaluator(breast_cancer)
        node_caps = breast_cancer.attribute_index("node-caps")
        breast = breast_cancer.attribute_index("breast")
        assert ev.evaluate([node_caps]) > ev.evaluate([breast])

    def test_cfs_empty_subset(self, breast_cancer):
        assert CfsSubsetEvaluator(breast_cancer).evaluate([]) == 0.0

    def test_consistency_monotone(self, breast_cancer):
        ev = ConsistencyEvaluator(breast_cancer)
        full = ev.evaluate(ev.candidates)
        single = ev.evaluate(ev.candidates[:1])
        assert full >= single - 1e-12

    def test_consistency_bounds(self, weather):
        ev = ConsistencyEvaluator(weather)
        assert 0 <= ev.evaluate(ev.candidates) <= 1.0


class TestSelectAttributes:
    def test_genetic_cfs_selects_planted(self, breast_cancer):
        names, projected = select_attributes(
            breast_cancer, "GeneticSearch+CfsSubset")
        assert "node-caps" in names
        assert projected.class_attribute.name == "Class"
        assert projected.num_attributes == len(names) + 1

    def test_ranker_approach(self, breast_cancer):
        names, projected = select_attributes(breast_cancer,
                                             "Ranker+InfoGain")
        assert 1 <= len(names) <= 9

    def test_unknown_approach(self, breast_cancer):
        with pytest.raises(OptionError):
            select_attributes(breast_cancer, "Oracle+Magic")

    def test_projection_preserves_instances(self, breast_cancer):
        _, projected = select_attributes(breast_cancer,
                                         "BestFirst+CfsSubset")
        assert projected.num_instances == 286
