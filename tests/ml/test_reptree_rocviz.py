"""REPTree (reduced-error pruning) and ROC visualisation tests."""

import pytest

from repro.data import synthetic
from repro.ml import evaluation
from repro.ml.classifiers import J48, REPTree
from repro.ml.evaluation import auc, roc_points
from repro.viz import rocviz
from repro.errors import ReproError


class TestREPTree:
    def test_learns_breast_cancer(self, breast_cancer):
        model = REPTree().fit(breast_cancer)
        result = evaluation.cross_validate(lambda: REPTree(),
                                           breast_cancer, k=5)
        assert result.accuracy > 0.72
        assert "REPTree" in model.model_text()

    def test_root_is_node_caps(self, breast_cancer):
        model = REPTree(seed=3).fit(breast_cancer)
        if not model.root.is_leaf:
            root_name = breast_cancer.attribute(
                model.root.attribute).name
            assert root_name == "node-caps"

    def test_pruned_tree_is_small_and_valid(self, breast_cancer):
        """Reduced-error pruning collapses subtrees whose hold-out error
        ties a leaf's, so REPTree stays compact; predictions must remain
        valid distributions even when the tree collapses to a leaf."""
        model = REPTree(prune_fraction=0.3, seed=1).fit(breast_cancer)
        unpruned_j48 = J48(unpruned=True, min_obj=2).fit(breast_cancer)
        assert model.root.size() <= unpruned_j48.root.size()
        for inst in list(breast_cancer)[:10]:
            dist = model.distribution(inst)
            assert dist.sum() == pytest.approx(1.0)

    def test_numeric_splits(self, two_class):
        model = REPTree().fit(two_class)
        assert evaluation.evaluate(model, two_class).accuracy > 0.8

    def test_max_depth(self, breast_cancer):
        shallow = REPTree(max_depth=1, prune_fraction=0.05,
                          seed=1).fit(breast_cancer)
        assert shallow.root.depth() <= 1

    def test_graph_export(self, breast_cancer):
        model = REPTree().fit(breast_cancer)
        graph = model.to_graph()
        assert len(graph["nodes"]) >= 1

    def test_comparable_to_j48(self, breast_cancer):
        """The ablation claim: both pruning styles land in the same
        accuracy band on this dataset."""
        rep = evaluation.cross_validate(lambda: REPTree(), breast_cancer,
                                        k=5).accuracy
        j48 = evaluation.cross_validate(lambda: J48(), breast_cancer,
                                        k=5).accuracy
        assert abs(rep - j48) < 0.12

    def test_deterministic_given_seed(self, breast_cancer):
        a = REPTree(seed=9).fit(breast_cancer)
        b = REPTree(seed=9).fit(breast_cancer)
        assert a.model_text() == b.model_text()


class TestRocViz:
    @pytest.fixture(scope="class")
    def points(self):
        ds = synthetic.numeric_two_class(n=120, separation=2.5, seed=4)
        from repro.ml.classifiers import Logistic
        clf = Logistic().fit(ds)
        return roc_points(clf, ds), auc(clf, ds)

    def test_ascii(self, points):
        curve, _ = points
        out = rocviz.roc_ascii(curve, title="demo ROC")
        assert "demo ROC" in out
        assert "*" in out and "+" in out  # curve + diagonal markers

    def test_svg(self, points):
        curve, auc_value = points
        doc = rocviz.roc_svg(curve, auc_value)
        assert doc.startswith("<svg")
        assert f"AUC = {auc_value:.3f}" in doc
        assert "false positive rate" in doc

    def test_too_few_points(self):
        with pytest.raises(ReproError):
            rocviz.roc_ascii([(0.0, 0.0, 1.0)])
        with pytest.raises(ReproError):
            rocviz.roc_svg([(0.0, 0.0, 1.0)])
