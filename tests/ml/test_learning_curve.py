"""Learning-curve utility tests."""

import pytest

from repro.data import synthetic
from repro.errors import DataError
from repro.ml.classifiers import NaiveBayes, ZeroR
from repro.ml.evaluation import learning_curve


class TestLearningCurve:
    def test_shape(self, breast_cancer):
        curve = learning_curve(lambda: NaiveBayes(), breast_cancer,
                               fractions=(0.2, 0.6, 1.0))
        assert len(curve) == 3
        fractions = [f for f, _, _ in curve]
        sizes = [n for _, n, _ in curve]
        assert fractions == [0.2, 0.6, 1.0]
        assert sizes == sorted(sizes)
        assert all(0.0 <= acc <= 1.0 for _, _, acc in curve)

    def test_more_data_helps_on_learnable_problem(self):
        ds = synthetic.numeric_two_class(n=400, separation=1.5, seed=2)
        curve = learning_curve(lambda: NaiveBayes(), ds,
                               fractions=(0.05, 1.0), seed=3)
        assert curve[-1][2] >= curve[0][2] - 0.05

    def test_zero_r_is_flat(self, breast_cancer):
        curve = learning_curve(lambda: ZeroR(), breast_cancer,
                               fractions=(0.3, 1.0), seed=1)
        assert curve[0][2] == pytest.approx(curve[1][2], abs=0.02)

    def test_bad_parameters(self, breast_cancer):
        with pytest.raises(DataError):
            learning_curve(lambda: ZeroR(), breast_cancer,
                           test_fraction=1.5)
        with pytest.raises(DataError):
            learning_curve(lambda: ZeroR(), breast_cancer,
                           fractions=(0.0,))

    def test_deterministic(self, breast_cancer):
        a = learning_curve(lambda: NaiveBayes(), breast_cancer, seed=9)
        b = learning_curve(lambda: NaiveBayes(), breast_cancer, seed=9)
        assert a == b
