"""Algorithm-advice tests (§3 requirements: algorithm choice + user
experience)."""

import pytest

from repro.errors import DataError
from repro.ml.advisor import (ExperienceStore, advise_text, characterise,
                              recommend)


class TestCharacterise:
    def test_breast_cancer_features(self, breast_cancer):
        ch = characterise(breast_cancer)
        assert ch.n_instances == 286
        assert ch.n_attributes == 9
        assert ch.n_numeric == 0 and ch.n_nominal == 9
        assert ch.n_classes == 2
        assert ch.majority_fraction == pytest.approx(201 / 286)
        assert 0 < ch.missing_fraction < 0.01
        assert ch.max_info_gain > 0.15  # node-caps

    def test_numeric_dataset(self, two_class):
        ch = characterise(two_class)
        assert ch.n_numeric == 4 and ch.n_nominal == 0

    def test_requires_class(self, blobs):
        with pytest.raises(DataError):
            characterise(blobs)

    def test_empty_rejected(self, weather):
        with pytest.raises(DataError):
            characterise(weather.copy_header())

    def test_vector_shape(self, breast_cancer):
        assert characterise(breast_cancer).vector().shape == (9,)

    def test_as_dict_round(self, weather):
        d = characterise(weather).as_dict()
        assert d["n_instances"] == 14


class TestRecommend:
    def test_top_n(self, breast_cancer):
        recs = recommend(breast_cancer, top=3)
        assert len(recs) == 3
        assert recs[0].score >= recs[1].score >= recs[2].score

    def test_reasons_attached(self, breast_cancer):
        recs = recommend(breast_cancer)
        assert all(rec.reasons for rec in recs)

    def test_strong_attribute_favours_simple_hypotheses(self,
                                                        breast_cancer):
        names = [r.algorithm for r in recommend(breast_cancer, top=4)]
        assert "OneR" in names or "J48" in names

    def test_numeric_data_favours_linear(self, two_class):
        names = [r.algorithm for r in recommend(two_class, top=5)]
        assert "Logistic" in names or "SMO" in names

    def test_tiny_dataset_penalises_networks(self, weather):
        recs = {r.algorithm: r.score for r in recommend(weather, top=20)}
        if "MultilayerPerceptron" in recs and "NaiveBayes" in recs:
            assert recs["NaiveBayes"] > recs["MultilayerPerceptron"]

    def test_advice_text_renders(self, breast_cancer):
        text = advise_text(breast_cancer)
        assert "Recommendations" in text and "node-caps" not in text
        assert "n_instances" in text


class TestExperienceStore:
    def test_record_and_similarity(self, breast_cancer, two_class):
        store = ExperienceStore()
        store.record(breast_cancer, "J48", 0.82)
        store.record(breast_cancer, "ZeroR", 0.70)
        store.record(two_class, "Logistic", 0.97)
        assert len(store) == 3
        neighbours = store.similar(characterise(breast_cancer), k=2)
        assert {n.algorithm for n in neighbours} == {"J48", "ZeroR"}

    def test_experience_biases_recommendation(self, breast_cancer):
        store = ExperienceStore()
        # record a fake stellar history for an otherwise mid-ranked scheme
        for _ in range(5):
            store.record(breast_cancer, "DecisionTable", 0.99)
        plain = {r.algorithm: r.score for r in
                 recommend(breast_cancer, top=20)}
        biased = {r.algorithm: r.score for r in
                  recommend(breast_cancer, top=20, experience=store)}
        assert biased["DecisionTable"] > plain["DecisionTable"]

    def test_negative_experience_penalises(self, breast_cancer):
        store = ExperienceStore()
        store.record(breast_cancer, "IB3", 0.2)  # below coin flip
        plain = {r.algorithm: r.score for r in
                 recommend(breast_cancer, top=20)}
        biased = {r.algorithm: r.score for r in
                  recommend(breast_cancer, top=20, experience=store)}
        assert biased["IB3"] < plain["IB3"]

    def test_persistence(self, tmp_path, breast_cancer):
        path = tmp_path / "experience.jsonl"
        store = ExperienceStore(path)
        store.record(breast_cancer, "J48", 0.82)
        reloaded = ExperienceStore(path)
        assert len(reloaded) == 1
        assert reloaded.similar(characterise(breast_cancer))[0] \
            .algorithm == "J48"

    def test_empty_store_no_advice(self, breast_cancer):
        assert ExperienceStore().advice(characterise(breast_cancer)) == []


class TestAdvisorService:
    def test_over_http(self, hosted_toolbox, breast_cancer):
        from repro.data import arff
        from repro.ws import ServiceProxy
        proxy = ServiceProxy.from_wsdl_url(
            hosted_toolbox.wsdl_url("Advisor"))
        payload = arff.dumps(breast_cancer)
        ch = proxy.characterise(dataset=payload, attribute="Class")
        assert ch["n_instances"] == 286
        recs = proxy.recommend(dataset=payload, attribute="Class", top=3)
        assert len(recs) == 3 and recs[0]["reasons"]
        n = proxy.recordExperience(dataset=payload, attribute="Class",
                                   algorithm="J48", score=0.82)
        assert n == 1
        recs2 = proxy.recommend(dataset=payload, attribute="Class",
                                top=10)
        j48 = next(r for r in recs2 if r["algorithm"] == "J48")
        assert any("past experience" in reason
                   for reason in j48["reasons"])
        text = proxy.adviseText(dataset=payload, attribute="Class")
        assert "Recommendations" in text
        proxy.close()
