"""Clusterer tests: recovery of planted structure plus API contracts."""

import pytest

from repro.data import Attribute, Dataset, synthetic
from repro.errors import DataError, NotFittedError
from repro.ml import CLUSTERERS
from repro.ml.clusterers import (Cobweb, DBSCAN, EM, FarthestFirst,
                                 Hierarchical, SimpleKMeans)


def purity(assignments, truth, n_clusters):
    """Fraction of points in their cluster's majority true class."""
    total = 0
    for c in range(n_clusters + 1):
        members = [truth[i] for i, a in enumerate(assignments) if a == c]
        if members:
            total += max(members.count(v) for v in set(members))
    return total / len(assignments)


@pytest.fixture(scope="module")
def planted():
    ds = synthetic.gaussians(3, 50, 2, spread=0.4, labelled=True, seed=13)
    truth = [int(i.value(ds.class_index)) for i in ds]
    features = ds.select_attributes([0, 1])
    return features, truth


@pytest.mark.parametrize("name", CLUSTERERS.names())
def test_every_clusterer_protocol(name, blobs):
    c = CLUSTERERS.create(name, {"k": 3} if name in
                          ("SimpleKMeans", "EM", "Hierarchical",
                           "FarthestFirst") else {})
    c.fit(blobs)
    assert c.n_clusters >= 1
    assignments = c.assign(blobs)
    assert len(assignments) == len(blobs)
    assert all(isinstance(a, int) for a in assignments)
    assert len(c.to_text()) > 10


class TestKMeans:
    def test_recovers_planted_clusters(self, planted):
        features, truth = planted
        km = SimpleKMeans(k=3, seed=2).fit(features)
        assert purity(km.assign(features), truth, 3) > 0.95

    def test_k_validation(self, blobs):
        with pytest.raises(DataError):
            SimpleKMeans(k=99999).fit(blobs)

    def test_sse_decreases_with_k(self, blobs):
        sse = []
        for k in (1, 2, 4):
            km = SimpleKMeans(k=k, seed=1).fit(blobs)
            sse.append(km._sse)
        assert sse[0] >= sse[1] >= sse[2]

    def test_assign_new_instance(self, blobs):
        km = SimpleKMeans(k=2).fit(blobs)
        assert 0 <= km.cluster_instance(blobs[0]) < 2

    def test_not_fitted(self, blobs):
        with pytest.raises(NotFittedError):
            SimpleKMeans().cluster_instance(blobs[0])

    def test_nominal_attributes_supported(self, breast_cancer):
        km = SimpleKMeans(k=2, seed=1).fit(breast_cancer)
        assert km.n_clusters == 2


class TestFarthestFirst:
    def test_centres_are_spread(self, planted):
        features, truth = planted
        ff = FarthestFirst(k=3, seed=1).fit(features)
        assert purity(ff.assign(features), truth, 3) > 0.9


class TestHierarchical:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_linkages_recover_blobs(self, planted, linkage):
        features, truth = planted
        h = Hierarchical(k=3, linkage=linkage).fit(features)
        assert h.n_clusters == 3
        assert purity(h.assign(features), truth, 3) > 0.9

    def test_merge_history_length(self, blobs):
        h = Hierarchical(k=2).fit(blobs)
        assert len(h.merge_history) == len(blobs) - 2

    def test_k_too_large(self, blobs):
        with pytest.raises(DataError):
            Hierarchical(k=len(blobs) + 1).fit(blobs)


class TestDBSCAN:
    def test_finds_dense_clusters(self, planted):
        features, truth = planted
        db = DBSCAN(eps=0.08, min_points=4).fit(features)
        assert db.n_clusters >= 2

    def test_noise_bucket(self, planted):
        features, _ = planted
        db = DBSCAN(eps=0.05, min_points=3).fit(features)
        # an outlier far away lands in the noise bucket n_clusters
        outlier = features[0].copy()
        outlier.set_value(0, 1e6)
        outlier.set_value(1, 1e6)
        assert db.cluster_instance(outlier) == db.n_clusters

    def test_everything_noise_when_eps_tiny(self, blobs):
        db = DBSCAN(eps=1e-9, min_points=5).fit(blobs)
        assert db.n_clusters == 0


class TestEM:
    def test_loglik_improves_vs_one_component(self, planted):
        features, _ = planted
        one = EM(k=1, seed=1).fit(features)
        three = EM(k=3, seed=1).fit(features)
        assert three.log_likelihood(features) > one.log_likelihood(features)

    def test_recovers_blobs(self, planted):
        features, truth = planted
        em = EM(k=3, seed=4).fit(features)
        assert purity(em.assign(features), truth, 3) > 0.9

    def test_mixed_attributes(self, breast_cancer):
        em = EM(k=2, seed=1).fit(breast_cancer)
        assert em.n_clusters == 2

    def test_k_too_large(self, blobs):
        with pytest.raises(DataError):
            EM(k=10 ** 6).fit(blobs)


class TestCobweb:
    def test_clusters_nominal_weather(self, weather):
        cw = Cobweb().fit(weather)
        assert cw.n_clusters >= 2
        assignments = cw.assign(weather)
        assert len(set(assignments)) == cw.n_clusters or \
            len(set(assignments)) >= 1

    def test_numeric_classit_path(self, blobs):
        cw = Cobweb(acuity=0.5).fit(blobs)
        assert cw.n_clusters >= 2

    def test_graph_is_tree(self, blobs):
        cw = Cobweb().fit(blobs)
        graph = cw.to_graph()
        assert len(graph["edges"]) == len(graph["nodes"]) - 1

    def test_cutoff_reduces_concepts(self, blobs):
        fine = Cobweb(cutoff=0.0).fit(blobs)
        coarse = Cobweb(cutoff=0.3).fit(blobs)
        assert coarse.n_clusters <= fine.n_clusters

    def test_counts_conserved(self, blobs):
        cw = Cobweb().fit(blobs)
        assert cw.root.count == len(blobs)
        leaf_total = sum(leaf.count for leaf in cw.root.leaves())
        assert leaf_total == pytest.approx(len(blobs))

    def test_separated_blobs_recovered(self):
        ds = synthetic.gaussians(2, 40, 2, spread=0.2, seed=3)
        cw = Cobweb(acuity=0.3).fit(ds)
        assignments = cw.assign(ds)
        # at least two leaf concepts and a dominant split
        assert len(set(assignments)) >= 2


class TestEdge:
    def test_empty_dataset(self, blobs):
        with pytest.raises(DataError):
            SimpleKMeans().fit(blobs.copy_header())

    def test_string_only_attributes_rejected(self):
        ds = Dataset("s", [Attribute.string("note")])
        ds.add_row(["hello"])
        with pytest.raises(DataError):
            SimpleKMeans(k=1).fit(ds)
