"""k-means++ seeding and class-association rule tests."""

import pytest

from repro.data import synthetic
from repro.errors import DataError
from repro.ml.associations import Apriori
from repro.ml.clusterers import SimpleKMeans


class TestKMeansPlusPlus:
    def test_recovers_blobs(self):
        ds = synthetic.gaussians(4, 40, 2, spread=0.3, seed=31)
        km = SimpleKMeans(k=4, init="kmeans++", seed=2).fit(ds)
        sizes = sorted(
            sum(1 for a in km.assign(ds) if a == c)
            for c in range(4))
        # every planted blob gets its own centre (no empty clusters)
        assert sizes[0] > 20

    def test_not_worse_than_random_seeding(self):
        ds = synthetic.gaussians(5, 30, 2, spread=0.4, seed=33)
        random_sse = SimpleKMeans(k=5, init="random", seed=7).fit(ds)._sse
        pp_sse = SimpleKMeans(k=5, init="kmeans++", seed=7).fit(ds)._sse
        assert pp_sse <= random_sse * 1.5

    def test_deterministic(self, blobs):
        a = SimpleKMeans(k=3, init="kmeans++", seed=5).fit(blobs)
        b = SimpleKMeans(k=3, init="kmeans++", seed=5).fit(blobs)
        assert a.assign(blobs) == b.assign(blobs)

    def test_bad_init_rejected(self):
        from repro.errors import OptionError
        with pytest.raises(OptionError):
            SimpleKMeans(init="fancy")


class TestClassAssociationRules:
    def test_consequents_are_class_only(self, breast_cancer):
        mined = Apriori(min_support=0.1, min_confidence=0.6,
                        class_rules=True, max_rules=200).fit(breast_cancer)
        class_idx = breast_cancer.class_index
        assert mined.rules, "should find class rules"
        for rule in mined.rules:
            assert len(rule.consequent) == 1
            assert rule.consequent[0][0] == class_idx
            assert all(a != class_idx for a, _ in rule.antecedent)

    def test_planted_rule_surfaces(self, breast_cancer):
        mined = Apriori(min_support=0.05, min_confidence=0.6,
                        class_rules=True, max_rules=500).fit(breast_cancer)
        node_caps = breast_cancer.attribute_index("node-caps")
        # some rule should lead with node-caps (the dominant predictor)
        assert any(any(a == node_caps for a, _ in rule.antecedent)
                   for rule in mined.rules)

    def test_requires_class(self, baskets):
        with pytest.raises(DataError):
            Apriori(class_rules=True).fit(baskets)

    def test_off_by_default(self, baskets):
        mined = Apriori(min_support=0.2, min_confidence=0.7).fit(baskets)
        # without the flag, multi-item consequents appear as usual
        assert mined.rules
