"""Option metadata and registry tests."""

import pytest

from repro.errors import OptionError
from repro.ml.base import CLASSIFIERS, CLUSTERERS, Registry
from repro.ml.options import (BOOL, CHOICE, FLOAT, INT, OptionSpec,
                              parse_option_string, resolve_options)


class TestOptionSpec:
    def test_int_coercion(self):
        spec = OptionSpec("k", INT, 1)
        assert spec.validate("5") == 5
        assert spec.validate(None) == 1

    def test_int_rejects_garbage(self):
        with pytest.raises(OptionError):
            OptionSpec("k", INT).validate("five")

    def test_float_bounds(self):
        spec = OptionSpec("c", FLOAT, 0.25, minimum=0.0, maximum=0.5)
        assert spec.validate(0.3) == 0.3
        with pytest.raises(OptionError):
            spec.validate(0.9)
        with pytest.raises(OptionError):
            spec.validate(-0.1)

    def test_bool_forms(self):
        spec = OptionSpec("b", BOOL, False)
        for truthy in (True, "true", "T", "1", "yes", 1):
            assert spec.validate(truthy) is True
        for falsy in (False, "false", "0", "no", 0):
            assert spec.validate(falsy) is False
        with pytest.raises(OptionError):
            spec.validate("maybe")

    def test_choice(self):
        spec = OptionSpec("link", CHOICE, "a", choices=("a", "b"))
        assert spec.validate("b") == "b"
        with pytest.raises(OptionError):
            spec.validate("c")

    def test_choice_requires_choices(self):
        with pytest.raises(OptionError):
            OptionSpec("x", CHOICE)

    def test_required(self):
        spec = OptionSpec("x", INT, required=True)
        with pytest.raises(OptionError):
            spec.validate(None)

    def test_unknown_type(self):
        with pytest.raises(OptionError):
            OptionSpec("x", "complex")

    def test_describe(self):
        spec = OptionSpec("k", INT, 1, "neighbours", minimum=1)
        d = spec.describe()
        assert d["name"] == "k" and d["minimum"] == 1
        assert "choices" not in d


class TestResolve:
    SPECS = (OptionSpec("a", INT, 1), OptionSpec("b", FLOAT, 0.5))

    def test_defaults_filled(self):
        assert resolve_options(self.SPECS, {}) == {"a": 1, "b": 0.5}

    def test_override(self):
        assert resolve_options(self.SPECS, {"a": 9})["a"] == 9

    def test_unknown_rejected(self):
        with pytest.raises(OptionError):
            resolve_options(self.SPECS, {"zzz": 1})

    def test_parse_option_string(self):
        assert parse_option_string("k=3 c=0.1") == {"k": "3", "c": "0.1"}
        assert parse_option_string("") == {}
        with pytest.raises(OptionError):
            parse_option_string("novalue")


class TestRegistry:
    def test_known_names(self):
        assert "J48" in CLASSIFIERS
        assert "Cobweb" in CLUSTERERS

    def test_create_with_options(self):
        clf = CLASSIFIERS.create("J48", {"min_obj": 5})
        assert clf.opt("min_obj") == 5

    def test_unknown_name(self):
        with pytest.raises(OptionError):
            CLASSIFIERS.create("NotAThing")

    def test_duplicate_registration(self):
        reg = Registry("thing")

        @reg.register("X")
        class X:  # noqa: N801
            pass

        with pytest.raises(OptionError):
            reg.register("X")(X)

    def test_tags(self):
        assert "tree" in CLASSIFIERS.tags("J48")

    def test_describe_options_payload(self):
        specs = CLASSIFIERS.get("J48").describe_options()
        names = {s["name"] for s in specs}
        assert {"confidence", "min_obj", "unpruned"} <= names
