"""Property-based tests on the mathematical utilities underpinning the
learners: entropy, gain, pessimistic-error bounds, the probit, silhouette
bounds."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.classifiers._tree import entropy, info_gain, split_info
from repro.ml.classifiers.j48 import _probit, added_errors

counts = st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1,
                  max_size=6).map(lambda v: np.array(v))


@given(counts)
@settings(max_examples=60, deadline=None)
def test_entropy_bounds(c):
    h = entropy(c)
    assert 0.0 <= h <= math.log2(len(c)) + 1e-9


@given(counts)
@settings(max_examples=40, deadline=None)
def test_entropy_of_pure_distribution_is_zero(c):
    pure = np.zeros_like(c)
    if pure.size:
        pure[0] = max(float(c.sum()), 1.0)
    assert entropy(pure) == pytest.approx(0.0)


@given(st.lists(counts, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_info_gain_nonnegative_for_true_partitions(branches):
    """Gain of any partition of a parent into branches is >= 0."""
    width = max(b.size for b in branches)
    padded = [np.pad(b, (0, width - b.size)) for b in branches]
    parent = np.sum(padded, axis=0)
    gain = info_gain(parent, padded)
    assert gain >= -1e-9


@given(st.lists(counts, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_split_info_nonnegative(branches):
    assert split_info(list(branches)) >= 0.0


@given(st.floats(0.001, 0.999))
@settings(max_examples=60, deadline=None)
def test_probit_inverts_symmetrically(p):
    assert _probit(p) == pytest.approx(-_probit(1 - p), abs=1e-6)


@given(st.floats(0.001, 0.998), st.floats(0.0005, 0.0009))
@settings(max_examples=40, deadline=None)
def test_probit_monotone(p, eps):
    assert _probit(p + eps) >= _probit(p)


@given(st.floats(1.0, 1000.0), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_added_errors_nonnegative(n, frac):
    e = frac * n
    assert added_errors(n, e, 0.25) >= -1e-9


@given(st.floats(2.0, 500.0), st.floats(0.0, 0.5))
@settings(max_examples=40, deadline=None)
def test_added_errors_monotone_in_confidence(n, frac):
    e = frac * n
    assert added_errors(n, e, 0.05) >= added_errors(n, e, 0.45) - 1e-9


@given(st.integers(2, 40), st.integers(2, 4), st.integers(0, 10 ** 6))
@settings(max_examples=30, deadline=None)
def test_silhouette_always_bounded(n, k, seed):
    from repro.data import Attribute, Dataset
    from repro.ml.cluster_eval import silhouette
    rng = np.random.default_rng(seed)
    ds = Dataset("r", [Attribute.numeric("x"), Attribute.numeric("y")])
    for _ in range(n):
        ds.add_row([float(rng.normal()), float(rng.normal())])
    labels = [int(v) for v in rng.integers(0, k, n)]
    assert -1.0 - 1e-9 <= silhouette(ds, labels) <= 1.0 + 1e-9


@given(st.integers(2, 60), st.integers(0, 10 ** 6))
@settings(max_examples=30, deadline=None)
def test_auc_bounded_property(n, seed):
    from repro.data import synthetic
    from repro.ml.classifiers import NaiveBayes
    from repro.ml.evaluation import auc
    ds = synthetic.numeric_two_class(n=max(n, 10), seed=seed)
    clf = NaiveBayes().fit(ds)
    value = auc(clf, ds)
    assert 0.0 - 1e-9 <= value <= 1.0 + 1e-9
