"""Algorithm-catalogue tests (CAT-75 support)."""

import pytest

from repro.errors import OptionError
from repro.ml import catalogue
from repro.ml.base import Classifier, Clusterer


class TestEntries:
    def test_unique_names(self):
        names = [e.name for e in catalogue.entries()]
        assert len(names) == len(set(names))

    def test_every_entry_instantiable(self):
        for entry in catalogue.entries():
            obj = catalogue.create(entry.name)
            assert obj is not None

    def test_classifier_entries_are_classifiers(self):
        for entry in catalogue.entries():
            if entry.kind == "classifier":
                assert isinstance(catalogue.create(entry.name), Classifier)

    def test_clusterer_entries_are_clusterers(self):
        for entry in catalogue.entries():
            if entry.kind == "clusterer":
                assert isinstance(catalogue.create(entry.name), Clusterer)

    def test_presets_apply(self):
        j48 = catalogue.create("J48-unpruned")
        assert j48.opt("unpruned") is True
        ib5 = catalogue.create("IB5")
        assert ib5.opt("k") == 5

    def test_extra_options_override_presets(self):
        clf = catalogue.create("J48-m5", {"min_obj": 9})
        assert clf.opt("min_obj") == 9

    def test_get_unknown(self):
        with pytest.raises(OptionError):
            catalogue.get("NotARealAlgorithm")

    def test_names_by_kind(self):
        assert "Cobweb" in catalogue.names("clusterer")
        assert "Apriori" in catalogue.names("associator")
        assert "J48" in catalogue.names("classifier")


class TestPaperClaims:
    def test_three_families_present(self):
        s = catalogue.summary()
        assert s["classifier_entries"] > 0
        assert s["clusterer_entries"] > 0
        assert s["associator_entries"] > 0

    def test_approximately_75_algorithms(self):
        # §1: "approximately 75 different algorithms, primarily
        # classifiers, clustering algorithms and association rules"
        assert catalogue.summary()["catalogue_entries"] >= 75

    def test_twenty_selection_approaches(self):
        assert catalogue.summary()["selection_approaches"] >= 20
