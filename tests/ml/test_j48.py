"""J48 / C4.5 tests: canonical trees, pruning, missing values, options."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Attribute, Dataset, synthetic
from repro.errors import DataError, NotFittedError
from repro.ml.classifiers import J48
from repro.ml.classifiers.j48 import _probit, added_errors
from repro.ml import evaluation


class TestCanonicalWeather:
    """The weather relation produces the textbook C4.5 tree."""

    @pytest.fixture(scope="class")
    def model(self, weather):
        return J48(min_obj=1, unpruned=True).fit(weather)

    def test_root_is_outlook(self, model):
        assert model.root_attribute == "outlook"

    def test_tree_shape(self, model):
        assert model.root.num_leaves() == 5
        assert model.root.size() == 8

    def test_training_accuracy_perfect(self, model, weather):
        assert evaluation.evaluate(model, weather).accuracy == 1.0

    def test_text_output_contains_branches(self, model):
        text = model.to_text()
        assert "outlook = overcast: yes" in text
        assert "Number of Leaves" in text

    def test_numeric_weather_threshold(self, weather_numeric):
        model = J48(min_obj=1, unpruned=True).fit(weather_numeric)
        assert model.root_attribute == "outlook"
        assert "humidity <= 77.5" in model.to_text()


class TestBreastCancerFigure4:
    """FIG-4 contract: node-caps at the root."""

    @pytest.fixture(scope="class")
    def model(self, breast_cancer):
        return J48().fit(breast_cancer)

    def test_root_attribute(self, model):
        assert model.root_attribute == "node-caps"

    def test_deg_malig_below_root(self, model, breast_cancer):
        yes_child = model.root.children[0]
        assert not yes_child.is_leaf
        assert breast_cancer.attribute(yes_child.attribute).name \
            == "deg-malig"

    def test_graph_export(self, model):
        graph = model.to_graph()
        assert graph["nodes"][0]["label"] == "node-caps"
        assert len(graph["edges"]) == len(graph["nodes"]) - 1

    def test_dot_export(self, model):
        dot = model.to_dot()
        assert dot.startswith("digraph") and "node-caps" in dot

    def test_cv_accuracy_beats_baseline(self, breast_cancer):
        result = evaluation.cross_validate(lambda: J48(), breast_cancer,
                                           k=10, seed=1)
        # ZeroR floor is 201/286 = 0.703
        assert result.accuracy > 0.72
        assert result.kappa > 0.3


class TestPruning:
    def test_pruned_not_larger(self, breast_cancer):
        pruned = J48().fit(breast_cancer)
        unpruned = J48(unpruned=True).fit(breast_cancer)
        assert pruned.root.size() <= unpruned.root.size()

    def test_confidence_monotone(self, breast_cancer):
        aggressive = J48(confidence=0.01).fit(breast_cancer)
        lenient = J48(confidence=0.5).fit(breast_cancer)
        assert aggressive.root.size() <= lenient.root.size()

    def test_added_errors_monotone_in_confidence(self):
        # smaller CF -> more pessimism -> more added errors
        assert added_errors(10, 0, 0.05) > added_errors(10, 0, 0.5) > 0

    def test_added_errors_positive(self):
        assert added_errors(14, 5, 0.25) > 0

    def test_added_errors_saturated(self):
        assert added_errors(10, 10, 0.25) == 0.0

    def test_added_errors_bad_cf(self):
        with pytest.raises(DataError):
            added_errors(10, 1, 0.9)

    def test_probit_symmetry(self):
        assert _probit(0.5) == pytest.approx(0.0, abs=1e-9)
        assert _probit(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert _probit(0.025) == pytest.approx(-1.959964, abs=1e-4)

    def test_probit_domain(self):
        with pytest.raises(ValueError):
            _probit(0.0)


class TestMissingValues:
    def test_training_with_missing_split_attribute(self, breast_cancer):
        # breast-cancer has 8 missing node-caps cells; training must cope
        model = J48().fit(breast_cancer)
        assert model.root_attribute == "node-caps"

    def test_prediction_with_missing_value(self, breast_cancer):
        model = J48().fit(breast_cancer)
        inst = breast_cancer[0].copy()
        inst.set_value(breast_cancer.attribute_index("node-caps"),
                       float("nan"))
        dist = model.distribution(inst)
        assert dist.shape == (2,)
        assert dist.sum() == pytest.approx(1.0)
        assert (dist > 0).all()  # fanned across both branches

    def test_all_missing_class_rejected(self):
        ds = Dataset("d", [Attribute.numeric("x"),
                           Attribute.nominal("c", ["a", "b"])],
                     class_index=1)
        ds.add_row([1.0, None])
        with pytest.raises(DataError):
            J48().fit(ds)


class TestApiContracts:
    def test_not_fitted(self):
        model = J48()
        with pytest.raises(NotFittedError):
            model.to_text()

    def test_requires_class(self, weather):
        ds = weather.copy()
        ds._class_index = None
        with pytest.raises(DataError):
            J48().fit(ds)

    def test_numeric_class_rejected(self):
        ds = Dataset("d", [Attribute.nominal("a", ["x", "y"]),
                           Attribute.numeric("target")], class_index=1)
        ds.add_row(["x", 1.0])
        with pytest.raises(DataError):
            J48().fit(ds)

    def test_empty_dataset_rejected(self, weather):
        with pytest.raises(DataError):
            J48().fit(weather.copy_header())

    def test_single_class_leaf(self):
        ds = Dataset("d", [Attribute.numeric("x"),
                           Attribute.nominal("c", ["a", "b"])],
                     class_index=1)
        for i in range(6):
            ds.add_row([float(i), "a"])
        model = J48().fit(ds)
        assert model.root.is_leaf
        assert model.predict_label(ds[0]) == "a"

    def test_min_obj_effect(self, breast_cancer):
        small = J48(min_obj=40, unpruned=True).fit(breast_cancer)
        large = J48(min_obj=2, unpruned=True).fit(breast_cancer)
        assert small.root.size() <= large.root.size()

    def test_infogain_mode_runs(self, weather):
        model = J48(use_gain_ratio=False, min_obj=1,
                    unpruned=True).fit(weather)
        assert model.root is not None

    def test_weighted_instances_respected(self, weather):
        heavy = weather.copy()
        # massively upweight the 'no' rows: majority must flip at leaves
        for inst in heavy:
            if inst.value(heavy.class_index) == 1:  # 'no'
                inst.weight = 50.0
        model = J48(min_obj=1).fit(heavy)
        counts = model.root.class_counts
        assert counts[1] > counts[0]


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=15, deadline=None)
def test_distribution_is_probability_vector(seed):
    """Property: predictions are valid distributions on random data."""
    ds = synthetic.numeric_two_class(n=40, seed=seed)
    model = J48(min_obj=2).fit(ds)
    for inst in list(ds)[:10]:
        dist = model.distribution(inst)
        assert dist.min() >= 0
        assert dist.sum() == pytest.approx(1.0, abs=1e-9)
        assert not np.isnan(dist).any()
