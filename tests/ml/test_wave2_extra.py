"""Targeted tests for the wave-2 and 'extra' classifier families."""

import numpy as np
import pytest

from repro.data import synthetic
from repro.errors import DataError
from repro.ml import evaluation
from repro.ml.classifiers import (AttributeSelectedClassifier,
                                  ConjunctiveRule, CVParameterSelection,
                                  HyperPipes, KStar, LWL,
                                  MultiClassClassifier, SMO, SGDClassifier,
                                  VFI, VotedPerceptron)


class TestConjunctiveRule:
    def test_learns_planted_rule(self, breast_cancer):
        clf = ConjunctiveRule().fit(breast_cancer)
        text = clf.model_text()
        assert "IF" in text and "THEN" in text
        # node-caps is the strongest single condition
        assert "node-caps" in text
        acc = evaluation.evaluate(clf, breast_cancer).accuracy
        assert acc > 0.7

    def test_max_conditions_respected(self, breast_cancer):
        clf = ConjunctiveRule(max_conditions=1).fit(breast_cancer)
        assert len(clf._conditions) <= 1

    def test_numeric_conditions(self, two_class):
        clf = ConjunctiveRule().fit(two_class)
        assert evaluation.evaluate(clf, two_class).accuracy > 0.7
        assert any(op in ("le", "gt") for _, op, _ in clf._conditions)

    def test_missing_value_fails_rule(self, breast_cancer):
        clf = ConjunctiveRule().fit(breast_cancer)
        inst = breast_cancer[0].copy()
        for j, _, _ in clf._conditions:
            inst.set_value(j, float("nan"))
        # falls to the outside distribution, still a valid probability
        assert clf.distribution(inst).sum() == pytest.approx(1.0)


class TestLWL:
    def test_locally_weighted_beats_global_on_clusters(self):
        # three well-separated blobs: local models are near-perfect
        ds = synthetic.gaussians(3, 40, 2, spread=0.4, labelled=True,
                                 seed=17)
        clf = LWL(k=20).fit(ds)
        assert evaluation.evaluate(clf, ds).accuracy > 0.95

    def test_base_configurable(self, two_class):
        clf = LWL(base="DecisionStump", k=25).fit(two_class)
        assert evaluation.evaluate(clf, two_class).accuracy > 0.8

    def test_neighbourhood_weighting(self, two_class):
        clf = LWL(k=10).fit(two_class)
        dist = clf.distribution(two_class[0])
        assert dist.sum() == pytest.approx(1.0)


class TestMultiClass:
    def test_one_vs_rest_on_three_classes(self):
        ds = synthetic.gaussians(3, 40, 2, labelled=True, seed=19)
        clf = MultiClassClassifier(base="Logistic").fit(ds)
        assert evaluation.evaluate(clf, ds).accuracy > 0.9
        assert len(clf._machines) == 3

    def test_binary_problem_works_too(self, two_class):
        clf = MultiClassClassifier(base="SMO").fit(two_class)
        assert evaluation.evaluate(clf, two_class).accuracy > 0.8


class TestCVParameterSelection:
    def test_sweeps_and_selects(self, breast_cancer):
        clf = CVParameterSelection(base="J48", parameter="min_obj",
                                   values="2,30", folds=3)
        clf.fit(breast_cancer)
        assert clf.chosen_value in ("2", "30")
        assert set(clf.scores) == {"2", "30"}
        assert "min_obj" in clf.model_text()

    def test_empty_values_rejected(self, breast_cancer):
        with pytest.raises(DataError):
            CVParameterSelection(values=" , ").fit(breast_cancer)

    def test_chosen_is_argmax(self, breast_cancer):
        clf = CVParameterSelection(base="IBk", parameter="k",
                                   values="1,5", folds=3)
        clf.fit(breast_cancer)
        assert clf.scores[clf.chosen_value] == max(clf.scores.values())


class TestAttributeSelected:
    def test_selection_feeds_base(self, breast_cancer):
        clf = AttributeSelectedClassifier(
            approach="BestFirst+CfsSubset", base="NaiveBayes")
        clf.fit(breast_cancer)
        assert "node-caps" in clf.selected
        assert evaluation.evaluate(clf, breast_cancer).accuracy > 0.7

    def test_genetic_default(self, breast_cancer):
        clf = AttributeSelectedClassifier().fit(breast_cancer)
        assert "GeneticSearch" in clf.model_text()
        assert len(clf.selected) < 9  # actually selects a subset


class TestHyperPipesVFI:
    def test_hyperpipes_ranges(self, two_class):
        clf = HyperPipes().fit(two_class)
        assert evaluation.evaluate(clf, two_class).accuracy > 0.6

    def test_hyperpipes_missing_fits_everything(self, breast_cancer):
        clf = HyperPipes().fit(breast_cancer)
        inst = breast_cancer[0].copy()
        for j in range(breast_cancer.num_attributes - 1):
            inst.set_value(j, float("nan"))
        dist = clf.distribution(inst)
        # an all-missing instance fits every pipe equally
        assert dist[0] == pytest.approx(dist[1])

    def test_vfi_votes(self, breast_cancer):
        clf = VFI().fit(breast_cancer)
        assert evaluation.evaluate(clf, breast_cancer).accuracy > 0.6

    def test_vfi_bins_numeric(self, two_class):
        clf = VFI(bins=5).fit(two_class)
        assert evaluation.evaluate(clf, two_class).accuracy > 0.75


class TestInstanceAndMarginLearners:
    def test_kstar_kernel_width(self, two_class):
        narrow = KStar(blend=0.05).fit(two_class)
        wide = KStar(blend=2.0).fit(two_class)
        assert evaluation.evaluate(narrow, two_class).accuracy >= \
            evaluation.evaluate(wide, two_class).accuracy

    def test_voted_perceptron_stores_machines(self, two_class):
        clf = VotedPerceptron(epochs=3).fit(two_class)
        assert len(clf._machines) == 2
        assert evaluation.evaluate(clf, two_class).accuracy > 0.85

    def test_smo_c_controls_regularisation(self):
        train = synthetic.numeric_two_class(n=120, separation=2.0, seed=9)
        strong = SMO(c=10.0).fit(train)
        weak = SMO(c=0.001).fit(train)
        n_strong = np.linalg.norm(strong._W)
        n_weak = np.linalg.norm(weak._W)
        assert n_strong > n_weak  # lower C -> heavier shrinkage

    def test_sgd_matches_batch_logistic_direction(self, two_class):
        from repro.ml.classifiers import Logistic
        sgd = SGDClassifier(epochs=40).fit(two_class)
        batch = Logistic().fit(two_class)
        agree = sum(
            sgd.predict_instance(i) == batch.predict_instance(i)
            for i in two_class)
        assert agree / len(two_class) > 0.9
