"""Sanity checks on the GitHub Actions pipeline definition.

Keeps ``.github/workflows/ci.yml`` honest without needing a runner: it must
parse as YAML and keep the three jobs (matrix tests, lint, benchmark smoke
with artifact upload) the repo's CI contract promises.
"""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

CI_PATH = Path(__file__).resolve().parents[1] / ".github" / "workflows" \
    / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(CI_PATH.read_text())


def test_parses_and_triggers(workflow):
    assert workflow["name"] == "CI"
    # PyYAML reads the bare `on:` key as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers
    assert triggers["push"]["branches"] == ["main"]


def test_expected_jobs_present(workflow):
    assert set(workflow["jobs"]) == {"test", "lint", "chaos",
                                     "bench-smoke", "serving-load",
                                     "experiment-resume",
                                     "columnar-bench", "mesh-drill",
                                     "ipc-bench"}


def test_concurrency_cancels_superseded_runs(workflow):
    """Pushing again must cancel the now-stale in-flight run."""
    group = workflow["concurrency"]
    assert group["cancel-in-progress"] is True
    assert "github.ref" in group["group"]


def test_every_job_is_time_bounded(workflow):
    """A hung event loop or load test must fail the job, not wedge the
    runner for the 6-hour GitHub default."""
    for name, job in workflow["jobs"].items():
        assert isinstance(job.get("timeout-minutes"), int), \
            f"job {name!r} has no timeout-minutes"


def test_every_job_caches_pip(workflow):
    for name, job in workflow["jobs"].items():
        setup = next(step for step in job["steps"]
                     if "setup-python" in step.get("uses", ""))
        assert setup["with"].get("cache") == "pip", \
            f"job {name!r} does not cache pip"
        assert setup["with"].get("cache-dependency-path") == \
            "pyproject.toml"


def test_matrix_covers_supported_pythons(workflow):
    matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.12"]


def steps_text(job):
    return " ".join(str(step.get("run", "")) + str(step.get("uses", ""))
                    for step in job["steps"])


def test_tier1_suite_runs_in_matrix_job(workflow):
    text = steps_text(workflow["jobs"]["test"])
    assert "PYTHONPATH=src python -m pytest -x -q" in text


def test_lint_job_compiles_and_ruffs(workflow):
    text = steps_text(workflow["jobs"]["lint"])
    assert "compileall" in text
    assert "ruff check" in text
    assert "python tools/layering_lint.py" in text


def _load_layering_lint():
    import importlib.util

    script = Path(__file__).resolve().parents[1] / "tools" \
        / "layering_lint.py"
    spec = importlib.util.spec_from_file_location("layering_lint", script)
    lint = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(lint)
    return lint


def test_layering_lint_passes():
    """The CI layering gate must hold on the tree as checked in."""
    assert _load_layering_lint().main() == 0


def test_layering_rules_cover_the_admission_plane():
    """Admission must stay byte-mover-free, and the movers admission-free.

    The controller is attachable to every serving plane precisely
    because it never imports one; conversely the transports/httpd must
    not reach up into policy.  Pin the rule set so a future refactor
    cannot silently drop the firewall.
    """
    rules = _load_layering_lint().RULES
    admission = rules["src/repro/ws/admission.py"]
    for banned in ("repro.ws.transport", "repro.ws.httpd",
                   "repro.ws.aserve", "repro.ws.client", "repro.chaos"):
        assert banned in admission
    assert "repro.ws.admission" in rules["src/repro/ws/transport.py"]
    assert "repro.ws.admission" in rules["src/repro/ws/httpd.py"]
    aserve = rules["src/repro/ws/aserve.py"]
    assert "repro.chaos" in aserve and "repro.ws.breaker" in aserve


def test_layering_rules_cover_the_columnar_plane():
    """The codec is a pure data-plane leaf and the vectorised kernels
    never talk to the wire: pin the new rules so a refactor cannot
    silently couple the fast paths to serving concerns."""
    rules = _load_layering_lint().RULES
    for module in ("src/repro/data/codec.py", "src/repro/data/dataio.py"):
        for banned in ("repro.obs", "repro.chaos", "repro.ws.breaker",
                       "repro.ws.admission", "repro.ws"):
            assert banned in rules[module], (module, banned)
    for module in ("src/repro/ml/base.py", "src/repro/ml/evaluation.py",
                   "src/repro/ml/classifiers/j48.py",
                   "src/repro/ml/classifiers/ibk.py",
                   "src/repro/ml/clusterers/kmeans.py"):
        assert "repro.ws" in rules[module], module


def test_layering_rules_cover_the_mesh_plane():
    """The mesh is control plane: routing weighs replicas and the
    supervisor forks workers, but faults are only ever injected by the
    chaos chain steps inside each worker and model mathematics never
    reaches routing.  Conversely the byte movers must not reach up
    into mesh policy.  Pin both directions of the firewall."""
    rules = _load_layering_lint().RULES
    for module in ("src/repro/ws/mesh/ring.py",
                   "src/repro/ws/mesh/profile.py",
                   "src/repro/ws/mesh/endpoints.py",
                   "src/repro/ws/mesh/router.py",
                   "src/repro/ws/mesh/worker.py",
                   "src/repro/ws/mesh/supervisor.py",
                   "src/repro/ws/mesh/gateway.py",
                   "src/repro/ws/mesh/host.py"):
        for banned in ("repro.chaos", "repro.ml"):
            assert banned in rules[module], (module, banned)
    assert "repro.ws.mesh" in rules["src/repro/ws/transport.py"]
    assert "repro.ws.mesh" in rules["src/repro/ws/httpd.py"]


def test_layering_rules_cover_the_ipc_plane():
    """The shared-memory segment store is a pure same-host byte pool:
    it maps and verifies segments, nothing else.  Its counters are
    emitted by the payload layer above it, and it must never observe,
    inject faults, dial a transport or reach into mesh policy.  Pin
    the rule so a refactor cannot silently couple the zero-copy tier
    to serving concerns."""
    rules = _load_layering_lint().RULES
    shm_rules = rules["src/repro/ws/shm.py"]
    for banned in ("repro.obs", "repro.chaos", "repro.ws.breaker",
                   "repro.ws.mesh", "repro.ws.transport",
                   "repro.ws.admission"):
        assert banned in shm_rules, banned


def test_ipc_bench_job_gates_and_uploads_the_report(workflow):
    """PERF-IPC: the same-host A/B (uds+shm vs tcp+inline) runs in CI
    (its in-test gate enforces >= 2x p50 with >= 1 MB columnar frames)
    and the JSON report lands as the ``ipc-bench`` artifact."""
    job = workflow["jobs"]["ipc-bench"]
    text = steps_text(job)
    assert "benchmarks/test_bench_ipc.py" in text
    for step in job["steps"]:
        if "python -m pytest" in step.get("run", ""):
            assert step["env"]["PYTHONHASHSEED"] == "0"
    upload = next(step for step in job["steps"]
                  if "upload-artifact" in step.get("uses", ""))
    assert upload["with"]["name"] == "ipc-bench"
    assert "BENCH_ipc.json" in upload["with"]["path"]
    assert upload["with"]["if-no-files-found"] == "error"


def test_mesh_drill_job_gates_and_uploads_the_report(workflow):
    """PERF-MESH: the worker-SIGKILL drill and the skewed-replica
    routing benchmark run in CI (the in-test gates enforce zero
    client-visible failures and >= 1.5x p99 for adaptive over static)
    and the JSON report lands as the ``mesh-drill`` artifact."""
    job = workflow["jobs"]["mesh-drill"]
    text = steps_text(job)
    assert "tests/mesh" in text
    assert "benchmarks/test_bench_mesh.py" in text
    for step in job["steps"]:
        if "python -m pytest" in step.get("run", ""):
            assert step["env"]["PYTHONHASHSEED"] == "0"
    upload = next(step for step in job["steps"]
                  if "upload-artifact" in step.get("uses", ""))
    assert upload["with"]["name"] == "mesh-drill"
    assert "BENCH_mesh.json" in upload["with"]["path"]
    assert upload["with"]["if-no-files-found"] == "error"


def test_columnar_bench_job_gates_and_uploads_the_report(workflow):
    """PERF-COLUMNAR: the columnar data-plane A/B runs in CI (its
    in-test gates enforce >= 5x end-to-end and >= 2x wire bytes) and
    its JSON lands as the ``columnar-bench`` artifact."""
    job = workflow["jobs"]["columnar-bench"]
    text = steps_text(job)
    assert "benchmarks/test_bench_columnar.py" in text
    assert "--benchmark-json=BENCH_columnar.json" in text
    upload = next(step for step in job["steps"]
                  if "upload-artifact" in step.get("uses", ""))
    assert upload["with"]["name"] == "columnar-bench"
    assert "BENCH_columnar.json" in upload["with"]["path"]
    assert upload["with"]["if-no-files-found"] == "error"


def test_bench_smoke_uploads_artifact(workflow):
    job = workflow["jobs"]["bench-smoke"]
    text = steps_text(job)
    assert "benchmarks/test_bench_remote_overhead.py" in text
    assert "--benchmark-json" in text
    upload = next(step for step in job["steps"]
                  if "upload-artifact" in step.get("uses", ""))
    assert upload["with"]["name"] == "bench-remote-overhead"
    assert upload["with"]["if-no-files-found"] == "error"


def test_bench_smoke_runs_the_batching_gate(workflow):
    """PERF-BATCH: the batching benchmark runs in CI (its in-test gates
    enforce >= 5x fewer wire exchanges and >= 2x lower modelled time)
    and its JSON lands in the uploaded artifact."""
    job = workflow["jobs"]["bench-smoke"]
    text = steps_text(job)
    assert "benchmarks/test_bench_batching.py" in text
    assert "--benchmark-json=BENCH_batching.json" in text
    upload = next(step for step in job["steps"]
                  if "upload-artifact" in step.get("uses", ""))
    assert "BENCH_batching.json" in upload["with"]["path"]


def test_chaos_job_is_seeded_and_uploads_snapshot(workflow):
    job = workflow["jobs"]["chaos"]
    text = steps_text(job)
    assert "tests/chaos" in text
    # the acceptance drill: same spec + seed twice, outcome blocks diffed
    assert "--chaos 'drop=0.3,delay=50ms' --seed 7" in text
    assert "diff -u outcome1.txt outcome2.txt" in text
    # and an exhausted budget must fail fast with DeadlineExceeded
    assert "--deadline" in text
    assert "DeadlineExceeded" in text
    upload = next(step for step in job["steps"]
                  if "upload-artifact" in step.get("uses", ""))
    assert upload["with"]["name"] == "chaos-metrics"
    assert upload["with"]["if-no-files-found"] == "error"


def test_serving_load_job_gates_and_uploads_the_report(workflow):
    """PERF-SERVING: the closed-loop saturation bench runs in CI (its
    in-test gates enforce the sustained req/s floor, the p99 ceiling
    and the cheap-shed bound at 1k concurrent clients) and its JSON
    report is published as an artifact."""
    job = workflow["jobs"]["serving-load"]
    text = steps_text(job)
    assert "benchmarks/test_bench_serving.py" in text
    upload = next(step for step in job["steps"]
                  if "upload-artifact" in step.get("uses", ""))
    assert upload["with"]["name"] == "serving-load"
    assert "BENCH_serving.json" in upload["with"]["path"]
    assert upload["with"]["if-no-files-found"] == "error"


def test_experiment_resume_job_drills_and_uploads_the_store(workflow):
    """The chaos-resume drill is a CI gate: the experiment suite
    (including the subprocess SIGKILL drill) runs hash-seeded, and the
    drill's final checkpoint store + report are published as the
    run's evidence artifact."""
    job = workflow["jobs"]["experiment-resume"]
    text = steps_text(job)
    assert "tests/experiment" in text
    drill = next(step for step in job["steps"]
                 if "tests/experiment" in step.get("run", ""))
    assert drill["env"]["PYTHONHASHSEED"] == "0"
    assert drill["env"]["EXPERIMENT_ARTIFACT_DIR"] == \
        "experiment-artifacts"
    upload = next(step for step in job["steps"]
                  if "upload-artifact" in step.get("uses", ""))
    assert upload["with"]["name"] == "experiment-resume-drill"
    assert "experiment-artifacts" in upload["with"]["path"]
    assert upload["with"]["if-no-files-found"] == "error"


def test_no_install_beyond_whitelisted_tools(workflow):
    """CI may only pip-install what the project declares (plus ruff and
    the bench plugin) — mirrors the repo's no-new-dependency policy."""
    allowed = {"numpy", "pytest", "hypothesis", "pytest-benchmark", "ruff"}
    for job in workflow["jobs"].values():
        for step in job["steps"]:
            run = step.get("run", "")
            if "pip install" not in run:
                continue
            pkgs = run.split("pip install", 1)[1].split()
            assert set(pkgs) <= allowed, pkgs
