"""Routing policies, failover, substitution and profile mining."""

import pytest

from repro.clock import FakeClock
from repro.errors import (DeadlineExceeded, OverloadedError,
                          TransportError)
from repro.ws.mesh.endpoints import MeshEndpoint
from repro.ws.mesh.profile import ERROR_PENALTY_S, ProfileBook
from repro.ws.mesh.router import (AdaptivePolicy, HashPolicy, MeshRoute,
                                  MeshRouter, RoundRobinPolicy,
                                  make_policy)
from repro.ws.registry import HEALTH_DOWN, HEALTH_UP
from repro.ws.soap import SoapFault, SoapRequest, SoapResponse


def endpoint(name, url=None):
    url = url or f"http://{name}/services/Svc"
    return MeshEndpoint(name=name, service="Svc", url=url,
                        wsdl_url=f"{url}?wsdl")


class FakeDiscovery:
    """Scripted replica source recording health feedback."""

    def __init__(self, endpoints):
        self._endpoints = list(endpoints)
        self.health: dict[str, str] = {}

    def endpoints(self, service):
        return list(self._endpoints)

    def note_health(self, name, health):
        self.health[name] = health


class FixedPolicy(RoundRobinPolicy):
    """Always rank in discovery order (no rotation between sends)."""

    name = "fixed"

    def rank(self, service, endpoints, request, book):
        return list(endpoints)


class FakeTransport:
    """Scripted replica: a queue of responses/exceptions per send."""

    def __init__(self, script):
        self.script = list(script)
        self.sends = 0

    def send(self, request):
        self.sends += 1
        action = self.script.pop(0) if self.script else "ok"
        if isinstance(action, Exception):
            raise action
        return SoapResponse(request.service, request.operation,
                            result=action)

    def close(self):
        pass


def make_router(scripts, *, policy=None, clock=None, **kwargs):
    """A router over FakeTransports, one per scripted endpoint."""
    clock = clock or FakeClock()
    eps = [endpoint(name) for name in scripts]
    discovery = FakeDiscovery(eps)
    router = MeshRouter(discovery, policy or RoundRobinPolicy(),
                        clock=clock, **kwargs)
    transports = {}
    for ep, (name, script) in zip(eps, scripts.items()):
        transports[name] = FakeTransport(script)
        router._transports[ep.url] = transports[name]
    return router, discovery, transports


REQ = SoapRequest("Svc", "op")


class TestPolicies:
    def test_round_robin_rotates(self):
        policy = RoundRobinPolicy()
        eps = [endpoint("a"), endpoint("b"), endpoint("c")]
        book = ProfileBook()
        first = policy.rank("Svc", eps, REQ, book)
        second = policy.rank("Svc", eps, REQ, book)
        assert [e.name for e in first] == ["a", "b", "c"]
        assert [e.name for e in second] == ["b", "c", "a"]

    def test_hash_policy_is_sticky_per_operation(self):
        policy = HashPolicy()
        eps = [endpoint("a"), endpoint("b"), endpoint("c")]
        book = ProfileBook()
        ranked = policy.rank("Svc", eps, REQ, book)
        again = policy.rank("Svc", eps, REQ, book)
        assert [e.name for e in ranked] == [e.name for e in again]
        assert sorted(e.name for e in ranked) == ["a", "b", "c"]

    def test_adaptive_prefers_cheap_probes_unknown_first(self):
        clock = FakeClock()
        book = ProfileBook(clock=clock)
        policy = AdaptivePolicy(reprobe_after_s=100.0)
        fast, slow, cold = (endpoint("fast"), endpoint("slow"),
                            endpoint("cold"))
        book.observe(fast.url, 0.01)
        book.observe(slow.url, 2.0)
        ranked = policy.rank("Svc", [slow, fast, cold], REQ, book)
        assert [e.name for e in ranked] == ["cold", "fast", "slow"]

    def test_adaptive_reprobes_stale_profiles(self):
        clock = FakeClock()
        book = ProfileBook(clock=clock)
        policy = AdaptivePolicy(reprobe_after_s=10.0)
        a, b = endpoint("a"), endpoint("b")
        book.observe(a.url, 2.0)   # expensive but about to go stale
        book.observe(b.url, 0.01)
        clock.advance(11.0)
        book.observe(b.url, 0.01)  # b stays fresh
        ranked = policy.rank("Svc", [a, b], REQ, book)
        assert [e.name for e in ranked] == ["a", "b"]

    def test_make_policy_rejects_unknown(self):
        assert make_policy("adaptive").name == "adaptive"
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_policy("wishful")


class TestRouterWalk:
    def test_routes_to_first_ranked_replica(self):
        router, _, transports = make_router({"a": ["A"], "b": ["B"]})
        assert router.send(REQ).result == "A"
        assert transports["b"].sends == 0

    def test_failover_moves_to_next_replica(self):
        router, _, transports = make_router(
            {"a": [TransportError("boom")], "b": ["B"]})
        assert router.send(REQ).result == "B"
        assert transports["a"].sends == 1

    def test_open_breaker_is_skipped_without_a_send(self):
        router, discovery, transports = make_router(
            {"a": [TransportError("x"), TransportError("x"), "never"],
             "b": ["B1", "B2", "B3"]},
            policy=FixedPolicy(), breaker_failure_threshold=2)
        router.send(REQ)  # a fails, opens strike 1, b answers
        router.send(REQ)  # a fails again -> breaker opens
        sends_before = transports["a"].sends
        assert router.send(REQ).result == "B3"
        assert transports["a"].sends == sends_before  # substituted
        assert discovery.health["a"] == HEALTH_DOWN

    def test_breaker_recovery_notes_health_up(self):
        clock = FakeClock()
        router, discovery, _ = make_router(
            {"a": [TransportError("x"), "recovered"]},
            breaker_failure_threshold=1, breaker_cooldown_s=5.0,
            clock=clock)
        with pytest.raises(TransportError):
            router.send(REQ)
        assert discovery.health["a"] == HEALTH_DOWN
        clock.advance(6.0)  # cooldown over: half-open probe allowed
        assert router.send(REQ).result == "recovered"
        assert discovery.health["a"] == HEALTH_UP

    def test_soap_fault_stops_the_walk(self):
        router, _, transports = make_router(
            {"a": [SoapFault("soapenv:Server", "app error")],
             "b": ["never"]})
        with pytest.raises(SoapFault):
            router.send(REQ)
        assert transports["b"].sends == 0

    def test_overload_tries_next_without_breaker_penalty(self):
        router, _, transports = make_router(
            {"a": [OverloadedError("shed"), "A2"], "b": ["B"]},
            policy=FixedPolicy(), breaker_failure_threshold=1)
        assert router.send(REQ).result == "B"
        # no penalty: a is still routable on the next rotation
        assert router.send(REQ).result == "A2"

    def test_deadline_exceeded_propagates_immediately(self):
        router, _, transports = make_router(
            {"a": [DeadlineExceeded("spent")], "b": ["never"]})
        with pytest.raises(DeadlineExceeded):
            router.send(REQ)
        assert transports["b"].sends == 0

    def test_no_replicas_raises_transport_error(self):
        router, _, _ = make_router({})
        with pytest.raises(TransportError, match="no live replica"):
            router.send(REQ)

    def test_all_replicas_dead_raises_last_error(self):
        router, _, _ = make_router(
            {"a": [TransportError("first")],
             "b": [TransportError("second")]})
        with pytest.raises(TransportError, match="second"):
            router.send(REQ)

    def test_mesh_route_is_a_terminal_chain_step(self):
        router, _, _ = make_router({"a": ["A"]})
        step = MeshRoute(router)

        def explode(request):
            raise AssertionError("proceed must never be called")

        response = step.intercept(REQ, None, explode)
        assert response.result == "A"


class TestProfiles:
    def test_errors_dominate_cost(self):
        book = ProfileBook()
        book.observe("fast", 0.01)
        book.observe_error("flaky")
        assert book.profile("flaky").cost() > \
            book.profile("fast").cost()
        assert book.profile("flaky").cost() == pytest.approx(
            0.3 * ERROR_PENALTY_S)

    def test_mine_spans_warms_from_send_spans(self):
        book = ProfileBook()
        spans = [
            {"name": "send:http", "status": "ok", "started_at": 1.0,
             "ended_at": 1.5, "attributes": {"endpoint": "http://a"}},
            {"name": "send:http", "status": "error", "started_at": 2.0,
             "ended_at": 2.1, "attributes": {"endpoint": "http://b"}},
            {"name": "soap:Svc.op", "status": "ok", "started_at": 0.0,
             "ended_at": 9.0, "attributes": {"endpoint": "http://c"}},
            {"name": "send:http", "status": "ok", "started_at": 0.0,
             "ended_at": 1.0, "attributes": {}},
        ]
        assert book.mine_spans(spans) == 2
        assert book.profile("http://a").latency_s == pytest.approx(0.5)
        assert book.profile("http://b").error_rate > 0
        assert book.endpoints() == ["http://a", "http://b"]

    def test_router_warms_from_live_collector(self):
        from repro import obs
        obs.enable_tracing()
        with obs.get_tracer().span("send:http",
                                   {"endpoint": "http://warm"}):
            pass
        router, _, _ = make_router({"a": ["A"]})
        assert router.warm_from_trace() == 1
        assert "http://warm" in router.book.endpoints()
