"""Live mesh over Unix sockets: zero-copy routing plus crash hygiene.

One module-scoped ``transport="uds"`` mesh (real worker processes): the
gateway must dial workers over their sockets, large columnar frames
must travel as mapped shared-memory segments rather than socket bytes,
``/mesh/status`` must report both facts — and the crash drill must stay
as clean as the TCP one: SIGKILL a worker mid-traffic, require zero
client-visible failures AND zero orphaned ``repro-shm-*`` segments
once the supervisor's sweep has run.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.data import codec, synthetic
from repro.ws import shm
from repro.ws.client import ServiceProxy, fetch_url
from repro.ws.mesh import start_mesh

pytestmark = pytest.mark.skipif(not shm.supported(),
                                reason="no POSIX shared memory here")

FRAME = codec.encode(synthetic.numeric_two_class(n=400, seed=11))


@pytest.fixture(scope="module")
def mesh():
    host = start_mesh(workers=2, services=["Classifier"],
                      transport="uds", policy="adaptive",
                      lease_ttl_s=5.0, heartbeat_s=1.0,
                      backoff_base_s=0.2, backoff_cap_s=2.0)
    try:
        yield host
    finally:
        host.stop()


def classify(proxy):
    out = proxy.call("classifyBatch", classifier="ZeroR",
                     dataset=FRAME, attribute="class")
    assert out["classifier"] == "ZeroR"
    assert len(out["labels"]) == 400 and out["errors"] == []
    return out


def dead_owner_segments() -> list[str]:
    """``repro-shm-*`` names whose recorded owner pid is gone (or whose
    header is junk) — what :func:`shm.sweep_orphans` would reclaim,
    enumerated without reclaiming anything."""
    orphans = []
    for name in os.listdir("/dev/shm"):
        if not name.startswith(shm.SEGMENT_PREFIX):
            continue
        try:
            with open("/dev/shm/" + name, "rb") as fh:
                head = fh.read(shm.HEADER_BYTES)
        except OSError:
            continue  # unlinked under us
        fields = shm._HEADER.unpack(head) \
            if len(head) == shm.HEADER_BYTES else None
        if fields is None or fields[0] != shm._MAGIC:
            orphans.append(name)
            continue
        try:
            os.kill(fields[2], 0)
        except ProcessLookupError:
            orphans.append(name)
        except PermissionError:
            pass  # live, someone else's
    return orphans


class TestUdsMesh:
    def test_workers_listen_on_their_sockets(self, mesh):
        for handle in mesh.supervisor.handles:
            assert handle.uds_path, f"{handle.worker_id} has no socket"
            assert os.path.exists(handle.uds_path)
            assert handle.boot_id == shm.boot_id()
        for entry in mesh.registry.inquire("Classifier@*"):
            assert entry.uds_url.startswith("unix://")

    def test_frames_route_by_segment_not_socket(self, mesh):
        proxy = ServiceProxy.from_wsdl_url(mesh.wsdl_url("Classifier"))
        for _ in range(3):
            classify(proxy)
        proxy.close()
        status = json.loads(fetch_url(f"{mesh.base_url}/mesh/status"))
        assert status["supervisor"]["transport"] == "uds"
        schemes = status["transports"]
        assert schemes and set(schemes.values()) == {"uds"}, schemes
        counters = status["shm"]
        # the client→gateway hop published the frame; the gateway
        # ingress mapped it (its hits live in the host process, the
        # worker's own hits live in the worker)
        assert counters.get("ws.shm.publishes", 0) >= 1
        assert counters.get("ws.shm.hits", 0) >= 2
        assert counters.get("ws.shm.bytes_mapped", 0) >= len(FRAME)

    def test_sigkill_drill_loses_no_calls_and_leaks_no_segments(
            self, mesh):
        from multiprocessing import shared_memory
        proxy = ServiceProxy.from_wsdl_url(mesh.wsdl_url("Classifier"))
        calls = 30
        failures: list[Exception] = []
        completed: list[int] = []

        def client_loop():
            for i in range(calls):
                try:
                    classify(proxy)
                    completed.append(i)
                except Exception as exc:  # noqa: BLE001 - the drill counts all
                    failures.append(exc)

        victim = mesh.supervisor.handle_of("w2")
        old_pid = victim.pid
        # plant a segment recorded as owned by the victim: exactly what
        # a worker that published then died abnormally leaves behind
        planted = shm.SEGMENT_PREFIX + "feedfacefeedface"
        seg = shared_memory.SharedMemory(name=planted, create=True,
                                         size=shm.HEADER_BYTES + 8)
        shm._untrack(seg)
        seg.buf[:shm.HEADER_BYTES] = shm._HEADER.pack(
            shm._MAGIC, 1, old_pid, 8)
        seg.close()

        thread = threading.Thread(target=client_loop)
        thread.start()
        time.sleep(0.5)
        os.kill(old_pid, signal.SIGKILL)
        thread.join(timeout=240)
        assert not thread.is_alive()
        assert failures == [], (
            f"{len(failures)} client call(s) failed during the drill; "
            f"first: {failures[0]!r}" if failures else "")
        assert len(completed) == calls

        # supervised restart, as in the TCP drill...
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if victim.alive and victim.pid != old_pid:
                break
            time.sleep(0.2)
        assert victim.alive and victim.pid != old_pid

        # ...and crash hygiene: the supervisor's unpublish sweep must
        # have reclaimed the dead worker's segment — nothing in
        # /dev/shm may reference a dead owner
        deadline = time.monotonic() + 30
        orphans = dead_owner_segments()
        while time.monotonic() < deadline and orphans:
            time.sleep(0.2)
            orphans = dead_owner_segments()
        assert orphans == []
        assert not os.path.exists("/dev/shm/" + planted)
        proxy.close()

    def test_stop_unlinks_sockets_and_segments(self):
        host = start_mesh(workers=1, services=["Math"],
                          transport="uds")
        sockets = [h.uds_path for h in host.supervisor.handles]
        assert all(os.path.exists(p) for p in sockets)
        host.stop()
        assert not any(os.path.exists(p) for p in sockets)
        assert dead_owner_segments() == []
