"""Consistent-hash ring properties: stability, balance, determinism."""

import string
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ws.mesh.ring import ConsistentHashRing, stable_hash

KEYS = [f"key-{i}" for i in range(600)]

members_strategy = st.sets(
    st.text(alphabet=string.ascii_lowercase + string.digits,
            min_size=1, max_size=12),
    min_size=2, max_size=8)


def assignments(ring):
    return {key: ring.assign(key) for key in KEYS}


class TestAssignment:
    def test_assign_is_deterministic_and_in_members(self):
        ring = ConsistentHashRing(["w1", "w2", "w3"])
        for key in KEYS[:50]:
            assert ring.assign(key) == ring.assign(key)
            assert ring.assign(key) in ring.members()

    def test_replicas_are_distinct_and_lead_with_assign(self):
        ring = ConsistentHashRing(["w1", "w2", "w3", "w4"])
        for key in KEYS[:50]:
            replicas = ring.replicas(key, 3)
            assert len(replicas) == len(set(replicas)) == 3
            assert replicas[0] == ring.assign(key)

    def test_replicas_clamp_to_member_count(self):
        ring = ConsistentHashRing(["w1", "w2"])
        assert sorted(ring.replicas("k", 10)) == ["w1", "w2"]


class TestChurnStability:
    @settings(max_examples=30, deadline=None)
    @given(members=members_strategy)
    def test_join_only_moves_keys_to_the_new_member(self, members):
        members = sorted(members)
        joiner = "joining-member"
        ring = ConsistentHashRing(members)
        before = assignments(ring)
        ring.add(joiner)
        after = assignments(ring)
        for key in KEYS:
            if before[key] != after[key]:
                assert after[key] == joiner

    @settings(max_examples=30, deadline=None)
    @given(members=members_strategy)
    def test_leave_only_moves_the_left_members_keys(self, members):
        members = sorted(members)
        victim = members[0]
        ring = ConsistentHashRing(members)
        before = assignments(ring)
        ring.remove(victim)
        after = assignments(ring)
        for key in KEYS:
            if before[key] == victim:
                assert after[key] != victim
            else:
                assert after[key] == before[key]

    def test_join_moves_about_one_nth_of_the_keys(self):
        members = [f"w{i}" for i in range(1, 8)]  # joiner makes n=8
        ring = ConsistentHashRing(members)
        before = assignments(ring)
        ring.add("w8")
        after = assignments(ring)
        moved = sum(1 for key in KEYS if before[key] != after[key])
        n = len(members) + 1
        # ideal is len(KEYS)/n; 64 vnodes keeps the variance low enough
        # for a 3x bound to be deterministic at this sample size
        assert 0 < moved <= 3 * len(KEYS) / n


class TestDeterminism:
    def test_stable_hash_is_fixed_forever(self):
        # pinned values: a change here silently re-homes every shard
        # and key on upgrade, so it must be deliberate
        assert stable_hash("w1") == 0x60C5590F72EEF292
        assert stable_hash("Classifier#0") == 0x159F5F94FEFE0037

    def test_assignment_survives_hash_randomisation(self):
        ring = ConsistentHashRing(["w1", "w2", "w3"])
        local = [ring.assign(key) for key in KEYS[:100]]
        script = (
            "from repro.ws.mesh.ring import ConsistentHashRing\n"
            "r = ConsistentHashRing(['w1', 'w2', 'w3'])\n"
            "print(','.join(r.assign(f'key-{i}') for i in range(100)))\n")
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345",
                 "PATH": "/usr/bin:/bin"})
        assert out.stdout.strip().split(",") == local
