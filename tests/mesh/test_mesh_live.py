"""Live mesh: real worker processes, gateway round trips, crash drill.

These tests fork real worker processes (``python -m
repro.ws.mesh.worker``), so one module-scoped mesh is shared: 4
workers hosting the Math service, short leases, fast restart backoff.
The crash drill is the PR's acceptance scenario — SIGKILL one worker
mid-traffic, require zero client-visible failures and a supervised
restart within the backoff budget.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.ws.client import ServiceProxy, fetch_url
from repro.ws.mesh import plan_shards, start_mesh
from repro.ws.scatter import resolve_endpoints


@pytest.fixture(scope="module")
def mesh():
    host = start_mesh(workers=4, services=["Math"], policy="adaptive",
                      lease_ttl_s=5.0, heartbeat_s=1.0,
                      backoff_base_s=0.2, backoff_cap_s=2.0)
    try:
        yield host
    finally:
        host.stop()


class TestPlanning:
    def test_all_spec_replicates_everywhere(self):
        plan = plan_shards(["Math"], ["w1", "w2"], "all")
        assert plan == {"w1": ("Math",), "w2": ("Math",)}

    def test_all_spec_without_services_is_worker_authoritative(self):
        assert plan_shards(None, ["w1"], "all") == {"w1": None}

    def test_ring_spec_places_each_service_r_times(self):
        workers = [f"w{i}" for i in range(1, 5)]
        services = ["Classifier", "Math", "Clusterer", "J48"]
        plan = plan_shards(services, workers, "ring:2")
        for service in services:
            hosts = [wid for wid, hosted in plan.items()
                     if service in (hosted or ())]
            assert len(hosts) == 2

    def test_bad_specs_are_rejected(self):
        with pytest.raises(ValueError, match="unknown shard spec"):
            plan_shards(None, ["w1"], "modulo")
        with pytest.raises(ValueError, match="ring:<replicas>"):
            plan_shards(None, ["w1"], "ring:x")


class TestGateway:
    def test_proxy_binds_and_calls_through_the_gateway(self, mesh):
        proxy = ServiceProxy.from_wsdl_url(mesh.wsdl_url("Math"))
        out = proxy.call("tabulate", expression="square",
                         lo=0.0, hi=1.0)
        assert len(out) > 0
        # the WSDL address was rewritten: the proxy talks to the
        # gateway port, not to any worker
        assert f":{mesh.port}/" in proxy.transport.endpoint

    def test_service_index_and_status_endpoints(self, mesh):
        index = fetch_url(f"{mesh.base_url}/services")
        assert "Math" in index
        status = json.loads(fetch_url(f"{mesh.base_url}/mesh/status"))
        assert status["policy"] == "adaptive"
        assert len(status["supervisor"]["workers"]) == 4
        assert all(w["alive"] for w in status["supervisor"]["workers"])

    def test_registry_has_one_leased_entry_per_worker(self, mesh):
        entries = mesh.registry.inquire("Math@*")
        assert sorted(e.name for e in entries) == \
            [f"Math@w{i}" for i in range(1, 5)]
        assert all(e.lease_ttl_s == 5.0 for e in entries)
        assert all(e.port_type == "MathPortType" for e in entries)

    def test_discovery_source_materialises_live_proxies(self, mesh):
        source = mesh.source_for("Math")
        proxies = resolve_endpoints(source)
        assert len(proxies) == 4
        out = proxies[0].call("tabulate", expression="sin",
                              lo=0.0, hi=1.0)
        assert len(out) > 0
        # static lists still pass through untouched
        assert resolve_endpoints(proxies) == proxies


class TestCrashDrill:
    def test_sigkill_mid_traffic_is_invisible_to_clients(self, mesh):
        proxy = ServiceProxy.from_wsdl_url(mesh.wsdl_url("Math"))
        calls = 80
        failures: list[Exception] = []
        completed: list[int] = []

        def client_loop():
            for i in range(calls):
                try:
                    out = proxy.call("tabulate", expression="square",
                                     lo=0.0, hi=1.0)
                    assert len(out) > 0
                    completed.append(i)
                except Exception as exc:  # noqa: BLE001 - the drill counts all
                    failures.append(exc)

        thread = threading.Thread(target=client_loop)
        thread.start()
        time.sleep(0.5)  # let traffic flow before the murder
        victim = mesh.supervisor.handle_of("w2")
        old_pid = victim.pid
        os.kill(old_pid, signal.SIGKILL)
        thread.join(timeout=240)
        assert not thread.is_alive()

        assert failures == [], (
            f"{len(failures)} client call(s) failed during the drill; "
            f"first: {failures[0]!r}" if failures else "")
        assert len(completed) == calls

        # the supervisor must bring w2 back within the backoff budget
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if victim.alive and victim.pid != old_pid:
                break
            time.sleep(0.2)
        assert victim.alive, "worker w2 was not restarted"
        assert victim.pid != old_pid
        assert victim.restarts >= 1

        # and the reborn replica re-enters discovery on its new port
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            entries = {e.name for e in mesh.registry.inquire("Math@*")}
            if "Math@w2" in entries:
                break
            time.sleep(0.2)
        assert "Math@w2" in {e.name
                             for e in mesh.registry.inquire("Math@*")}
