"""Documentation contract: every public module, class, function and method
in the package carries a docstring (the paper-toolkit deliverable of a
documented public API)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_"))


def _public_members(module):
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        obj = getattr(module, attr_name)
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield attr_name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), \
        f"module {module_name} lacks a docstring"


def _documented_somewhere(cls, meth_name: str) -> bool:
    """True when the method or any same-named ancestor method carries a
    docstring (overrides inherit their contract's documentation)."""
    for base in cls.__mro__:
        candidate = base.__dict__.get(meth_name)
        if candidate is not None:
            doc = getattr(candidate, "__doc__", None)
            if doc and doc.strip():
                return True
    return False


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in inspect.getmembers(
                    obj, predicate=inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited implementation
                if not _documented_somewhere(obj, meth_name):
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, \
        f"{module_name}: undocumented public items {undocumented}"
