"""ImageViewer tool tests: plot3D output previewed in a workflow."""

import pytest

from repro.data import csvio, synthetic
from repro.errors import WorkflowError
from repro.viz.plot3d import plot3d
from repro.viz.ppm import Raster
from repro.workflow import TaskGraph, WorkflowEngine, default_toolbox


class TestAsciiPreview:
    def test_raster_to_ascii_shape(self):
        r = Raster(100, 60)
        out = r.to_ascii(width=40, height=12)
        lines = out.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)

    def test_dark_pixels_are_dense(self):
        r = Raster(10, 10, background=(255, 255, 255))
        for x in range(10):
            for y in range(5):
                r.set_pixel(x, y, (0, 0, 0))
        out = r.to_ascii(width=10, height=10)
        top, bottom = out.splitlines()[0], out.splitlines()[-1]
        assert "@" in top and "@" not in bottom


class TestImageViewerTool:
    @pytest.fixture(scope="class")
    def box(self):
        return default_toolbox()

    def test_preview_of_plot3d_output(self, box, tmp_path):
        surf = synthetic.surface3d(n=12)
        image = plot3d(surf.column("x"), surf.column("y"),
                       surf.column("z"), width=80, height=60)
        path = tmp_path / "surface.ppm"
        [view] = box.get("ImageViewer").run(
            [image], {"width": 40, "height": 16, "path": str(path)})
        assert len(view.splitlines()) == 16
        assert path.read_bytes() == image

    def test_non_bytes_rejected(self, box):
        with pytest.raises(WorkflowError):
            box.get("ImageViewer").run(["not image"], {})

    def test_unknown_format_reported(self, box):
        [view] = box.get("ImageViewer").run([b"\x89PNGxxxx"], {})
        assert "bytes of image data" in view

    def test_math_service_to_image_viewer_workflow(self, box,
                                                   hosted_toolbox):
        """plot3D → ImageViewer composed end to end (Figure-2's
        visualisation path)."""
        from repro.workflow import import_wsdl_url
        math_tools = {t.name: t for t in import_wsdl_url(
            hosted_toolbox.wsdl_url("Math"))}
        surf = synthetic.surface3d(n=10)
        g = TaskGraph("plot-and-view")
        plot = g.add(math_tools["Math.plot3D"],
                     points=csvio.dumps(surf), width=60, height=45)
        view = g.add(box.get("ImageViewer"), width=30, height=12)
        g.connect(plot, view)
        result = WorkflowEngine().run(g)
        preview = result.output(view)
        assert len(preview.splitlines()) == 12
