"""Concurrency stress: wide fan-outs across worker-pool sizes.

The enactor must neither deadlock nor drop outputs whatever the ratio of
ready tasks to pool threads, and the monitoring event stream must stay
well-formed (exactly one started/finished pair per task, in order).
"""

import threading

import pytest

from repro import chaos
from repro.clock import FakeClock
from repro.workflow import (EventBus, RetryPolicy, TaskGraph,
                            WorkflowEngine)
from repro.workflow.model import FunctionTool

FAN_OUT = 40


def fan_out_graph(width=FAN_OUT):
    """source → *width* parallel squarers → one sink summing them all."""
    g = TaskGraph()
    source = g.add(FunctionTool("Source", lambda: list(range(width)),
                                [], ["out"]), name="source")
    sink_tool = FunctionTool("Sink", lambda *xs: sum(xs),
                             [f"i{k}" for k in range(width)], ["out"])
    sink = g.add(sink_tool, name="sink")
    for k in range(width):
        mid = g.add(FunctionTool("Square", lambda xs, _k=k: xs[_k] ** 2,
                                 ["xs"], ["out"]), name=f"mid{k}")
        g.connect(source, mid)
        g.connect(mid, sink, target_index=k)
    return g, source, sink


def run_bounded(engine, graph, timeout_s=60.0):
    """Run in a worker thread so a deadlock fails the test, not CI."""
    box = {}

    def target():
        try:
            box["result"] = engine.run(graph)
        except Exception as exc:  # pragma: no cover - surfaced below
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    assert not thread.is_alive(), "engine deadlocked (run did not finish)"
    if "error" in box:
        raise box["error"]
    return box["result"]


class TestFanOutSweep:
    @pytest.mark.parametrize("max_workers", [1, 2, 7, 32])
    def test_no_deadlock_no_dropped_outputs(self, max_workers):
        g, _, sink = fan_out_graph()
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        engine = WorkflowEngine(max_workers=max_workers, events=bus)
        result = run_bounded(engine, g)

        expected = sum(k ** 2 for k in range(FAN_OUT))
        assert result.output(sink) == expected
        # every task settled exactly once, nothing dropped or duplicated
        assert len(result.durations) == len(g.tasks) == FAN_OUT + 2
        for k in range(FAN_OUT):
            assert result.output(f"mid{k}") == k ** 2
        assert not result.degraded

        # the event stream is monotone per task: one started, one
        # finished, in that order
        per_task = {}
        for event in events:
            if event.kind == "task":
                per_task.setdefault(event.name, []).append(event.status)
        assert set(per_task) == {t.name for t in g.tasks}
        for name, statuses in per_task.items():
            assert statuses == ["started", "finished"], name
        workflow_events = [e.status for e in events
                           if e.kind == "workflow"]
        assert workflow_events == ["started", "finished"]

    def test_pool_smaller_than_width_with_retries(self):
        # transient failures across a wide frontier on a tiny pool: the
        # retry path must not wedge the executor either
        lock = threading.Lock()
        failures_left = {"n": 10}

        def flaky(xs, _k):
            from repro.errors import TransportError
            with lock:
                if failures_left["n"] > 0:
                    failures_left["n"] -= 1
                    raise TransportError("transient")
            return xs[_k]

        g = TaskGraph()
        source = g.add(FunctionTool("Source",
                                    lambda: list(range(FAN_OUT)),
                                    [], ["out"]), name="source")
        sink = g.add(FunctionTool("Sink", lambda *xs: sum(xs),
                                  [f"i{k}" for k in range(FAN_OUT)],
                                  ["out"]), name="sink")
        for k in range(FAN_OUT):
            mid = g.add(FunctionTool(
                "Mid", lambda xs, _k=k: flaky(xs, _k), ["xs"], ["out"]),
                name=f"mid{k}")
            g.connect(source, mid)
            g.connect(mid, sink, target_index=k)
        engine = WorkflowEngine(
            max_workers=2,
            retry_policy=RetryPolicy(max_retries=12, clock=FakeClock()))
        result = run_bounded(engine, g)
        assert result.output(sink) == sum(range(FAN_OUT))

    def test_chaos_drill_on_wide_graph_is_deterministic(self):
        def drill():
            chaos.install("task:mid*:drop=0.3", seed=13,
                          clock=FakeClock())
            g, _, sink = fan_out_graph()
            engine = WorkflowEngine(
                max_workers=16,
                retry_policy=RetryPolicy(max_retries=20,
                                         clock=FakeClock()))
            result = run_bounded(engine, g)
            summary = chaos.active().summary()
            chaos.uninstall()
            return result.output(sink), summary

        first, second = drill(), drill()
        assert first == second
        assert first[0] == sum(k ** 2 for k in range(FAN_OUT))
        assert any("drop" in kinds for kinds in first[1].values())
