"""Regression: a fatal task failure stops scheduling new work.

A fatal failure (no ``allow_partial``, or an expired deadline) settles
the run by setting the engine's ``done`` event.  A sibling task already
on the pool may still finish afterwards — but its downstream tasks must
*not* be submitted once the run has settled, otherwise the enactor races
its own shutdown and runs tasks of a workflow it is about to raise for.
"""

import threading

import pytest

from repro.errors import EnactmentError
from repro.workflow import FunctionTool, TaskGraph, WorkflowEngine


class TestFatalStopsScheduling:
    def test_no_submissions_after_fatal_failure(self):
        ran: list[str] = []
        record_lock = threading.Lock()

        def mark(name, value=0):
            def fn(x=0):
                with record_lock:
                    ran.append(name)
                return value
            return fn

        def boom(x=0):
            with record_lock:
                ran.append("fail")
            raise RuntimeError("deliberate fatal failure")

        g = TaskGraph("fatal-stop")
        src = g.add(FunctionTool("Src", mark("src", 1), [], ["out"]),
                    name="src")
        # connected first, so the single worker executes it first
        failing = g.add(FunctionTool("Fail", boom, ["x"], ["out"]),
                        name="failing")
        ok = g.add(FunctionTool("Ok", mark("ok", 2), ["x"], ["out"]),
                   name="ok")
        down = g.add(FunctionTool("Down", mark("down", 3), ["x"], ["out"]),
                     name="down")
        g.connect(src, failing)
        g.connect(src, ok)
        g.connect(ok, down)

        # one worker makes the order deterministic: src → failing (fatal,
        # settles the run) → ok (already queued, allowed to finish) → and
        # then "down" becomes ready but must never be submitted
        engine = WorkflowEngine(max_workers=1)
        with pytest.raises(EnactmentError):
            engine.run(g)
        assert "fail" in ran and "ok" in ran
        assert "down" not in ran, (
            "engine submitted a downstream task after a fatal failure "
            "had already settled the run")
