"""Hierarchical-workflow XML round trips (GroupTool persistence)."""

import pytest

from repro.errors import WorkflowError
from repro.workflow import (FunctionTool, GroupTool, TaskGraph, ToolBox,
                            WorkflowEngine, xmlio)

DOUBLE = FunctionTool("Double", lambda x: 2 * x, ["x"], ["out"])
INC = FunctionTool("Inc", lambda x: x + 1, ["x"], ["out"])


@pytest.fixture()
def box():
    b = ToolBox()
    b.register(DOUBLE)
    b.register(INC)
    b.register(FunctionTool("Const", lambda value=1: value, [], ["out"]))
    return b


def make_group(box) -> GroupTool:
    inner = TaskGraph("inner")
    d = inner.add(box.get("Double"), name="d")
    i = inner.add(box.get("Inc"), name="i")
    inner.connect(d, i)
    return GroupTool("DoubleThenInc", inner,
                     input_map=[("d", 0)], output_map=[("i", 0)])


class TestGroupXml:
    def test_roundtrip_preserves_hierarchy(self, box):
        g = TaskGraph("outer")
        src = g.add(box.get("Const"), value=5)
        grp = g.add(make_group(box), name="group")
        g.connect(src, grp)

        text = xmlio.dumps(g)
        assert "<group>" in text
        assert "inputMap" in text and "outputMap" in text

        again = xmlio.loads(text, box)
        assert isinstance(again.task("group").tool, GroupTool)
        result = WorkflowEngine().run(again)
        assert result.output("group") == 11  # (5*2)+1

    def test_nested_group_roundtrip(self, box):
        level1 = make_group(box)
        mid = TaskGraph("mid")
        mid.add(level1, name="g1")
        level2 = GroupTool("Wrapped", mid, [("g1", 0)], [("g1", 0)])
        outer = TaskGraph("outer")
        src = outer.add(box.get("Const"), value=3)
        t = outer.add(level2, name="wrapped")
        outer.connect(src, t)

        again = xmlio.loads(xmlio.dumps(outer), box)
        result = WorkflowEngine().run(again)
        assert result.output("wrapped") == 7  # (3*2)+1

    def test_group_missing_subgraph_rejected(self, box):
        text = ('<taskgraph name="w">'
                '<task name="g" tool="G"><group/></task>'
                '</taskgraph>')
        with pytest.raises(WorkflowError):
            xmlio.loads(text, box)

    def test_group_parameters_survive(self, box):
        g = TaskGraph("outer")
        grp = g.add(make_group(box), name="group", note=["a", 1])
        again = xmlio.loads(xmlio.dumps(g), box)
        assert again.task("group").parameters["note"] == ["a", 1]
