"""WSDL import into the toolbox, fault tolerance and monitoring."""

import pytest

from repro.clock import FakeClock
from repro.data import arff
from repro.errors import (DeadlineExceeded, EnactmentError,
                          TransportError)
from repro.ws.deadline import deadline_scope
from repro.ws import (InProcessTransport, ServiceContainer, ServiceProxy,
                      operation, wsdl)
from repro.ws.service import ServiceDefinition
from repro.workflow import (EventBus, ProgressMonitor,
                            ReplicatedServiceTool, RetryPolicy, TaskGraph,
                            ToolBox, WorkflowEngine, import_wsdl_text,
                            import_wsdl_url)
from repro.workflow.model import FunctionTool, Task


class Flaky:
    """Fails a configurable number of times, then answers."""

    def __init__(self) -> None:
        self.failures_left = 0

    @operation
    def answer(self, question: str) -> str:
        if self.failures_left > 0:
            self.failures_left -= 1
            raise RuntimeError("transient")
        return f"42 ({question})"


class TestWsImport:
    def test_import_creates_tool_per_operation(self, hosted_toolbox):
        box = ToolBox()
        tools = import_wsdl_url(hosted_toolbox.wsdl_url("J48"), box)
        names = {t.name for t in tools}
        assert names == {"J48.classify", "J48.classifyGraph",
                         "J48.classifyDot", "J48.classifyBatch",
                         "J48.distributionBatch"}
        assert all(t.is_web_service for t in tools)
        assert all(t.name in box for t in tools)

    def test_tooltip_shows_wsdl_and_types(self, hosted_toolbox):
        tools = import_wsdl_url(hosted_toolbox.wsdl_url("J48"))
        classify = next(t for t in tools if t.name.endswith(".classify"))
        tip = classify.tooltip()
        assert "?wsdl" in tip and "dataset: xsd:string" in tip

    def test_imported_tool_runs_in_graph(self, hosted_toolbox,
                                         breast_cancer):
        tools = import_wsdl_url(hosted_toolbox.wsdl_url("J48"))
        classify = next(t for t in tools if t.name.endswith(".classify"))
        g = TaskGraph()
        t = g.add(classify, dataset=arff.dumps(breast_cancer),
                  attribute="Class")
        result = WorkflowEngine().run(g)
        assert "node-caps" in result.output(t)

    def test_import_from_text_with_transport(self, breast_cancer):
        container = ServiceContainer()
        from repro.services import J48Service
        definition = container.deploy(J48Service, "J48")
        document = wsdl.generate(definition, "inproc://J48")
        tools = import_wsdl_text(document,
                                 InProcessTransport(container))
        classify = next(t for t in tools if t.name.endswith(".classify"))
        [out] = classify.run([arff.dumps(breast_cancer), "Class", None],
                             {})
        assert "node-caps" in out


class TestRetryPolicy:
    def make_task(self, failures, exc_type=TransportError):
        state = {"left": failures}

        def work(**kw):
            if state["left"] > 0:
                state["left"] -= 1
                raise exc_type("flaky")
            return "ok"

        tool = FunctionTool("Work", work, [], ["out"])
        return Task("work", tool)

    def test_retries_then_succeeds(self):
        policy = RetryPolicy(max_retries=2, clock=FakeClock())
        assert policy.run_task(self.make_task(2), [], {}) == ["ok"]

    def test_exhausted_retries_raise(self):
        policy = RetryPolicy(max_retries=1, clock=FakeClock())
        with pytest.raises(TransportError):
            policy.run_task(self.make_task(5), [], {})

    def test_backoff_schedule_is_linear_on_the_injected_clock(self):
        clock = FakeClock()
        policy = RetryPolicy(max_retries=3, backoff_s=0.5, clock=clock)
        assert policy.run_task(self.make_task(3), [], {}) == ["ok"]
        # attempt n backs off n * backoff_s; no wall-clock sleeping
        assert clock.sleeps == [pytest.approx(0.5), pytest.approx(1.0),
                                pytest.approx(1.5)]

    def test_no_backoff_never_touches_the_clock(self):
        clock = FakeClock()
        policy = RetryPolicy(max_retries=2, clock=clock)
        policy.run_task(self.make_task(2), [], {})
        assert clock.sleeps == []

    def test_backoff_never_sleeps_past_the_deadline(self):
        clock = FakeClock()
        policy = RetryPolicy(max_retries=5, backoff_s=2.0, clock=clock)
        with deadline_scope(3.0, clock):
            with pytest.raises(DeadlineExceeded):
                # first backoff (2s) fits the 3s budget; the second (4s)
                # cannot, so the policy surfaces the expiry instead of
                # sleeping into it
                policy.run_task(self.make_task(5), [], {})
        assert clock.sleeps == [pytest.approx(2.0)]

    def test_expired_budget_stops_retries_immediately(self):
        clock = FakeClock()
        policy = RetryPolicy(max_retries=5, clock=clock)
        attempts = {"n": 0}

        def work(**kw):
            attempts["n"] += 1
            clock.advance(10.0)  # the attempt itself burns the budget
            raise TransportError("slow failure")

        from repro.workflow.model import FunctionTool, Task
        task = Task("slow", FunctionTool("Slow", work, [], ["out"]))
        with deadline_scope(5.0, clock):
            with pytest.raises(DeadlineExceeded):
                policy.run_task(task, [], {})
        assert attempts["n"] == 1  # no doomed retry attempts

    def test_programming_errors_fail_fast(self):
        # the default retry_on covers transient transport/service errors
        # only: a bug in a tool must not be retried with backoff
        attempts = {"n": 0}

        def buggy(**kw):
            attempts["n"] += 1
            raise TypeError("programming error")

        task = Task("buggy", FunctionTool("Buggy", buggy, [], ["out"]))
        policy = RetryPolicy(max_retries=5, clock=FakeClock())
        with pytest.raises(TypeError):
            policy.run_task(task, [], {})
        assert attempts["n"] == 1

    def test_retry_on_opt_in_still_supported(self):
        policy = RetryPolicy(max_retries=3, retry_on=(RuntimeError,),
                             clock=FakeClock())
        task = self.make_task(2, exc_type=RuntimeError)
        assert policy.run_task(task, [], {}) == ["ok"]

    def test_retry_events_emitted(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        policy = RetryPolicy(max_retries=3, events=bus,
                             clock=FakeClock())
        policy.run_task(self.make_task(2), [], {})
        assert sum(1 for e in events if e.status == "retried") == 2

    def test_engine_with_retry_policy(self):
        state = {"left": 1}

        def work(**kw):
            if state["left"] > 0:
                state["left"] -= 1
                raise TransportError("flaky")
            return "done"

        g = TaskGraph()
        t = g.add(FunctionTool("W", work, [], ["out"]))
        engine = WorkflowEngine(retry_policy=RetryPolicy(
            max_retries=2, clock=FakeClock()))
        assert engine.run(g).output(t) == "done"


class TestJobMigration:
    """§3: 'complete the task if a fault occurs by moving the job to
    another resource'."""

    def make_replicas(self, n_dead: int, n_total: int = 3):
        proxies = []
        definition = ServiceDefinition.from_class(Flaky, "Flaky")
        for i in range(n_total):
            container = ServiceContainer()
            instance = Flaky()
            if i < n_dead:
                instance.failures_left = 10 ** 6  # permanently broken
            container.deploy(Flaky, "Flaky", factory=lambda s=instance: s)
            document = wsdl.generate(definition, f"inproc://r{i}")
            proxies.append(ServiceProxy.from_wsdl_text(
                document, InProcessTransport(container)))
        return proxies

    def test_migrates_past_dead_replicas(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        tool = ReplicatedServiceTool(
            "FlakyAnswer", self.make_replicas(2), "answer",
            ["question"], events=bus)
        [out] = tool.run(["why"], {})
        assert out.startswith("42")
        assert len(tool.migrations) == 2
        assert sum(1 for e in events if e.status == "migrated") == 2

    def test_all_replicas_dead(self):
        tool = ReplicatedServiceTool(
            "FlakyAnswer", self.make_replicas(3), "answer", ["question"])
        with pytest.raises(EnactmentError):
            tool.run(["why"], {})

    def test_first_replica_healthy_no_migration(self):
        tool = ReplicatedServiceTool(
            "FlakyAnswer", self.make_replicas(0), "answer", ["question"])
        [out] = tool.run(["why"], {})
        assert out.startswith("42")
        assert tool.migrations == []

    def test_needs_at_least_one_replica(self):
        from repro.errors import WorkflowError
        with pytest.raises(WorkflowError):
            ReplicatedServiceTool("X", [], "answer", ["question"])


class TestMonitoring:
    def test_monitor_tracks_lifecycle(self):
        bus = EventBus()
        monitor = ProgressMonitor(bus)
        g = TaskGraph()
        t1 = g.add(FunctionTool("A", lambda **kw: 1, [], ["out"]),
                   name="a")
        t2 = g.add(FunctionTool("B", lambda x: x, ["x"], ["out"]),
                   name="b")
        g.connect(t1, t2)
        WorkflowEngine(events=bus).run(g)
        assert monitor.finished() == ["a", "b"]
        timeline = monitor.timeline()
        assert "started" in timeline and "finished" in timeline

    def test_monitor_records_failure(self):
        bus = EventBus()
        monitor = ProgressMonitor(bus)
        g = TaskGraph()
        g.add(FunctionTool("Bad", lambda **kw: 1 / 0, [], ["out"]),
              name="bad")
        with pytest.raises(EnactmentError):
            WorkflowEngine(events=bus).run(g)
        assert monitor.failed() == ["bad"]

    def test_unsubscribe(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        bus.unsubscribe(events.append)
        from repro.workflow.monitor import TaskEvent
        bus.emit(TaskEvent("task", "x", "started"))
        assert events == []
