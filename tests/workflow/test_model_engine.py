"""Workflow model + enactor tests."""

import time

import pytest

from repro.errors import CableError, EnactmentError, WorkflowError
from repro.workflow import (EventBus, FunctionTool, GroupTool,
                            ProgressMonitor, TaskGraph, WorkflowEngine)


def const(value, name="Const"):
    return FunctionTool(name, lambda **kw: value, [], ["out"])


ADD = FunctionTool("Add", lambda a, b: a + b, ["a", "b"], ["sum"])
DOUBLE = FunctionTool("Double", lambda x: 2 * x, ["x"], ["out"])
SPLIT = FunctionTool("Split", lambda x: (x, -x), ["x"], ["pos", "neg"])


class TestGraphConstruction:
    def test_add_auto_names(self):
        g = TaskGraph()
        t1 = g.add(DOUBLE)
        t2 = g.add(DOUBLE)
        assert t1.name == "Double" and t2.name == "Double-2"

    def test_connect_validates_indices(self):
        g = TaskGraph()
        a = g.add(const(1))
        b = g.add(ADD)
        g.connect(a, b, target_index=0)
        with pytest.raises(CableError):
            g.connect(a, b, source_index=5)
        with pytest.raises(CableError):
            g.connect(a, b, target_index=9)

    def test_double_connection_rejected(self):
        g = TaskGraph()
        a = g.add(const(1))
        b = g.add(DOUBLE)
        g.connect(a, b)
        with pytest.raises(CableError):
            g.connect(a, b)

    def test_self_cable_rejected(self):
        g = TaskGraph()
        t = g.add(DOUBLE)
        with pytest.raises(CableError):
            g.connect(t, t)

    def test_cycle_rejected(self):
        g = TaskGraph()
        a = g.add(DOUBLE, name="a")
        b = g.add(DOUBLE, name="b")
        g.connect(a, b)
        with pytest.raises(CableError):
            g.connect(b, a)

    def test_remove_task_drops_cables(self):
        g = TaskGraph()
        a = g.add(const(1))
        b = g.add(DOUBLE)
        g.connect(a, b)
        g.remove_task(b.name)
        assert g.cables == []

    def test_topological_order(self):
        g = TaskGraph()
        a = g.add(const(1), name="src")
        b = g.add(DOUBLE, name="mid")
        c = g.add(DOUBLE, name="dst")
        g.connect(a, b)
        g.connect(b, c)
        assert g.topological_order() == ["src", "mid", "dst"]

    def test_sources_and_sinks(self):
        g = TaskGraph()
        a = g.add(const(1))
        b = g.add(DOUBLE)
        g.connect(a, b)
        assert g.sources() == [a] and g.sinks() == [b]

    def test_unconnected_inputs(self):
        g = TaskGraph()
        a = g.add(const(1))
        b = g.add(ADD)
        g.connect(a, b, target_index=0)
        assert g.unconnected_inputs(b.name) == [1]

    def test_unknown_task(self):
        with pytest.raises(WorkflowError):
            TaskGraph().task("ghost")


class TestEnactment:
    def test_linear_pipeline(self):
        g = TaskGraph()
        src = g.add(const(5))
        mid = g.add(DOUBLE)
        g.connect(src, mid)
        result = WorkflowEngine().run(g)
        assert result.output(mid) == 10

    def test_fan_out_and_in(self):
        g = TaskGraph()
        src = g.add(const(3))
        split = g.add(SPLIT)
        add = g.add(ADD)
        g.connect(src, split)
        g.connect(split, add, source_index=0, target_index=0)
        g.connect(split, add, source_index=1, target_index=1)
        result = WorkflowEngine().run(g)
        assert result.output(add) == 0

    def test_parameters_feed_unconnected_inputs(self):
        g = TaskGraph()
        t = g.add(FunctionTool("Greet",
                               lambda greeting="hi": f"{greeting} world",
                               [], ["text"]), greeting="hello")
        result = WorkflowEngine().run(g)
        assert result.output(t) == "hello world"

    def test_parallel_execution(self):
        """Independent tasks overlap on the thread pool."""
        def slow(**kw):
            time.sleep(0.15)
            return 1

        g = TaskGraph()
        tasks = [g.add(FunctionTool(f"S{i}", slow, [], ["out"]))
                 for i in range(4)]
        start = time.perf_counter()
        result = WorkflowEngine(max_workers=4).run(g)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.45  # 4 x 0.15 sequential would be 0.6+
        assert all(result.output(t) == 1 for t in tasks)

    def test_failure_raises_enactment_error(self):
        def boom(**kw):
            raise ValueError("nope")

        g = TaskGraph()
        g.add(FunctionTool("Boom", boom, [], ["out"]), name="boom")
        with pytest.raises(EnactmentError) as err:
            WorkflowEngine().run(g)
        assert err.value.task_name == "boom"

    def test_events_emitted(self):
        bus = EventBus()
        monitor = ProgressMonitor(bus)
        g = TaskGraph()
        src = g.add(const(1), name="src")
        dst = g.add(DOUBLE, name="dst")
        g.connect(src, dst)
        WorkflowEngine(events=bus).run(g)
        assert monitor.finished() == ["dst", "src"]
        assert monitor.failed() == []
        assert "workflow" in monitor.timeline()

    def test_durations_recorded(self):
        g = TaskGraph()
        t = g.add(const(1))
        result = WorkflowEngine().run(g)
        assert t.name in result.durations
        assert result.wall_seconds >= 0

    def test_missing_output_lookup(self):
        g = TaskGraph()
        t = g.add(const(1))
        result = WorkflowEngine().run(g)
        with pytest.raises(WorkflowError):
            result.output(t, 5)

    def test_seeded_inputs(self):
        g = TaskGraph()
        add = g.add(ADD, name="add")
        result = WorkflowEngine().run(
            g, inputs={("add", 0): 4, ("add", 1): 6})
        assert result.output(add) == 10


class TestGroupTool:
    def test_group_runs_subgraph(self):
        inner = TaskGraph("inner")
        d1 = inner.add(DOUBLE, name="d1")
        d2 = inner.add(DOUBLE, name="d2")
        inner.connect(d1, d2)
        group = GroupTool("Quadruple", inner,
                          input_map=[("d1", 0)], output_map=[("d2", 0)])
        outer = TaskGraph("outer")
        src = outer.add(const(3))
        quad = outer.add(group)
        outer.connect(src, quad)
        result = WorkflowEngine().run(outer)
        assert result.output(quad) == 12

    def test_group_validates_ports(self):
        inner = TaskGraph("inner")
        inner.add(DOUBLE, name="d1")
        with pytest.raises(CableError):
            GroupTool("G", inner, input_map=[("d1", 7)],
                      output_map=[("d1", 0)])

    def test_nested_groups(self):
        inner = TaskGraph("inner")
        d = inner.add(DOUBLE, name="d")
        level1 = GroupTool("x2", inner, [("d", 0)], [("d", 0)])
        mid = TaskGraph("mid")
        t = mid.add(level1, name="g")
        level2 = GroupTool("x2-again", mid, [("g", 0)], [("g", 0)])
        outer = TaskGraph("outer")
        src = outer.add(const(5))
        g = outer.add(level2)
        outer.connect(src, g)
        assert WorkflowEngine().run(outer).output(g) == 10
