"""Toolbox, built-in tools, patterns, XML/DAX export, signal tools."""

import pytest

from repro.data import arff
from repro.errors import WorkflowError
from repro.workflow import (FunctionTool, TaskGraph, ToolBox,
                            WorkflowEngine, default_toolbox, dax, patterns,
                            xmlio)

DOUBLE = FunctionTool("Double", lambda x: 2 * x, ["x"], ["out"])
INC = FunctionTool("Inc", lambda x: x + 1, ["x"], ["out"])


class TestToolBox:
    def test_default_folders(self):
        box = default_toolbox()
        assert {"Common", "Data", "Processing", "Visualization",
                "SignalProc"} <= set(box.folders())
        assert len(box) >= 15

    def test_tree_rendering(self):
        box = default_toolbox()
        tree = box.render_tree()
        assert "+- Common/" in tree
        assert "StringInput" in tree

    def test_duplicate_registration(self):
        box = ToolBox()
        box.register(DOUBLE)
        with pytest.raises(WorkflowError):
            box.register(DOUBLE)

    def test_get_unknown(self):
        with pytest.raises(WorkflowError):
            ToolBox().get("ghost")

    def test_tools_by_folder(self):
        box = default_toolbox()
        names = [t.name for t in box.tools("SignalProc")]
        assert "FFT" in names

    def test_search(self):
        box = default_toolbox()
        hits = [t.name for t in box.search("viewer")]
        assert "StringViewer" in hits and "TreeViewer" in hits
        assert [t.name for t in box.search("signalproc")]  # by folder
        assert box.search("zzz-no-such-tool") == []


class TestBuiltinTools:
    @pytest.fixture(scope="class")
    def box(self):
        return default_toolbox()

    def run_tool(self, tool, inputs, **params):
        return tool.run(inputs, params)

    def test_string_tools(self, box):
        out = self.run_tool(box.get("StringInput"), [], value="hi")
        assert out == ["hi"]
        assert self.run_tool(box.get("StringViewer"), ["x"]) == ["x"]

    def test_local_dataset_from_object(self, box, weather):
        [text] = self.run_tool(box.get("LocalDataset"), [],
                               dataset=weather)
        assert arff.loads(text).num_instances == 14

    def test_local_dataset_from_file(self, box, weather, tmp_path):
        path = tmp_path / "w.arff"
        path.write_text(arff.dumps(weather))
        [text] = self.run_tool(box.get("LocalDataset"), [],
                               path=str(path))
        assert "@relation" in text

    def test_local_dataset_csv_file(self, box, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        [text] = self.run_tool(box.get("LocalDataset"), [],
                               path=str(path))
        assert text.startswith("@relation")

    def test_local_dataset_needs_source(self, box):
        with pytest.raises(WorkflowError):
            self.run_tool(box.get("LocalDataset"), [])

    def test_converters(self, box, weather):
        text = arff.dumps(weather)
        [csv] = self.run_tool(box.get("ArffToCsv"), [text])
        [back] = self.run_tool(box.get("CsvToArff"), [csv])
        assert arff.loads(back).num_instances == 14

    def test_dataset_summary(self, box, breast_cancer):
        [out] = self.run_tool(box.get("DatasetSummary"),
                              [arff.dumps(breast_cancer)])
        assert "286" in out

    def test_classifier_selector(self, box):
        listing = [{"name": "J48", "family": "trees"},
                   {"name": "NaiveBayes", "family": "bayes"}]
        assert self.run_tool(box.get("ClassifierSelector"),
                             [listing]) == ["J48"]
        assert self.run_tool(box.get("ClassifierSelector"), [listing],
                             choice="NaiveBayes") == ["NaiveBayes"]
        with pytest.raises(WorkflowError):
            self.run_tool(box.get("ClassifierSelector"), [listing],
                          choice="Zorp")

    def test_classifier_tree(self, box):
        listing = [{"name": "J48", "family": "trees"},
                   {"name": "ZeroR", "family": "rules"}]
        [tree] = self.run_tool(box.get("ClassifierTree"), [listing])
        assert "trees/" in tree and "J48" in tree

    def test_option_selector(self, box):
        options = [{"name": "k", "default": 1},
                   {"name": "flag", "default": None}]
        [chosen] = self.run_tool(box.get("OptionSelector"), [options],
                                 overrides={"k": 5})
        assert chosen == {"k": 5}

    def test_attribute_selector(self, box, weather):
        text = arff.dumps(weather)
        assert self.run_tool(box.get("AttributeSelector"),
                             [text]) == ["play"]
        assert self.run_tool(box.get("AttributeSelector"), [text],
                             attribute="windy") == ["windy"]

    def test_attribute_lister(self, box, weather):
        [names] = self.run_tool(box.get("AttributeLister"),
                                [arff.dumps(weather)])
        assert names[0] == "outlook"

    def test_tree_viewer_modes(self, box):
        result = {"model_text": "the tree",
                  "graph": {"nodes": [{"id": 0, "label": "root",
                                       "leaf": True}], "edges": []}}
        assert self.run_tool(box.get("TreeViewer"),
                             [result]) == ["the tree"]
        [svg] = self.run_tool(box.get("TreeViewer"), [result],
                              mode="svg")
        assert svg.startswith("<svg")

    def test_attribute_viewer(self, box, breast_cancer):
        [view] = self.run_tool(box.get("AttributeViewer"),
                               [arff.dumps(breast_cancer)],
                               attribute="node-caps")
        assert "node-caps" in view


class TestSignalTools:
    def test_fft_finds_dominant_frequency(self):
        from repro.workflow import signal_tools
        tools = {t.name: t for t in signal_tools.all_tools()}
        [series] = tools["SineGenerator"].run(
            [], {"samples": 256, "frequency": 16.0, "rate": 256.0})
        [spec] = tools["PowerSpectrum"].run([series], {"rate": 256.0})
        assert spec["dominant_frequency"] == pytest.approx(16.0, abs=1.0)

    def test_fft_pipeline_in_graph(self):
        from repro.workflow import signal_tools
        tools = {t.name: t for t in signal_tools.all_tools()}
        g = TaskGraph("spectral")
        gen = g.add(tools["SineGenerator"], frequency=8.0)
        win = g.add(tools["Window"])
        fft = g.add(tools["FFT"])
        g.connect(gen, win)
        g.connect(win, fft)
        result = WorkflowEngine().run(g)
        assert len(result.output(fft)) == 129  # 256/2 + 1

    def test_smooth_preserves_length(self):
        from repro.workflow import signal_tools
        tools = {t.name: t for t in signal_tools.all_tools()}
        [out] = tools["Smooth"].run([[1.0] * 20], {"width": 5})
        assert len(out) == 20


class TestPatterns:
    def test_pipeline(self):
        g = patterns.pipeline([
            FunctionTool("Src", lambda value=1: value, [], ["out"]),
            DOUBLE, INC])
        result = WorkflowEngine().run(g)
        assert result.output(g.sinks()[0]) == 3

    def test_farm(self):
        scatter = patterns.scatter_tool(3, lambda v: [v, v + 1, v + 2])
        gather = patterns.gather_tool(3, sum)
        g = patterns.farm(DOUBLE, 3, scatter, gather)
        result = WorkflowEngine().run(g, inputs={("scatter", 0): 10})
        assert result.output("gather") == (10 + 11 + 12) * 2

    def test_star(self):
        centre = patterns.scatter_tool(2, lambda v: [v, v * 10],
                                       name="Centre")
        g = patterns.star(centre, [DOUBLE, INC])
        result = WorkflowEngine().run(g, inputs={("centre", 0): 2})
        assert result.output("satellite-0") == 4
        assert result.output("satellite-1") == 21

    def test_replace_operator(self):
        g = patterns.pipeline([
            FunctionTool("Src", lambda value=3: value, [], ["out"]),
            DOUBLE])
        target = g.sinks()[0]
        patterns.replace(g, target.name, INC)
        assert WorkflowEngine().run(g).output(target) == 4

    def test_inject_operator(self):
        g = patterns.pipeline([
            FunctionTool("Src", lambda value=3: value, [], ["out"]),
            DOUBLE])
        cable = g.cables[0]
        patterns.inject(g, cable, INC)
        # src -> inc -> double: (3+1)*2
        assert WorkflowEngine().run(g).output(g.sinks()[0]) == 8

    def test_repeat_operator(self):
        g = TaskGraph()
        src = g.add(FunctionTool("Src", lambda value=0: value, [],
                                 ["out"]))
        last = patterns.repeat(g, INC, 4, src)
        assert WorkflowEngine().run(g).output(last) == 4

    def test_loop_operator(self):
        looped = patterns.loop(INC, condition=lambda v: v < 10)
        g = TaskGraph()
        t = g.add(looped)
        result = WorkflowEngine().run(g, inputs={(t.name, 0): 0})
        assert result.output(t) == 10

    def test_loop_bound(self):
        looped = patterns.loop(INC, condition=lambda v: True,
                               max_iterations=5)
        with pytest.raises(WorkflowError):
            looped.run([0], {})

    def test_farm_arity_validation(self):
        scatter = patterns.scatter_tool(2, lambda v: [v, v])
        gather = patterns.gather_tool(2, sum)
        with pytest.raises(WorkflowError):
            patterns.farm(DOUBLE, 3, scatter, gather)


class TestXmlAndDax:
    def make_graph(self, box):
        g = TaskGraph("demo")
        src = g.add(box.get("StringInput"), value="hello")
        view = g.add(box.get("StringViewer"))
        g.connect(src, view)
        return g

    def test_xml_roundtrip(self):
        box = default_toolbox()
        g = self.make_graph(box)
        text = xmlio.dumps(g)
        again = xmlio.loads(text, box)
        assert len(again) == 2
        assert len(again.cables) == 1
        assert again.task("StringInput").parameters["value"] == "hello"
        result = WorkflowEngine().run(again)
        assert result.output("StringViewer") == "hello"

    def test_xml_rejects_garbage(self):
        with pytest.raises(WorkflowError):
            xmlio.loads("<html/>", default_toolbox())

    def test_dax_export(self):
        box = default_toolbox()
        g = self.make_graph(box)
        doc = dax.dumps(g)
        assert dax.job_count(doc) == 2
        assert "<child" in doc and "<parent" in doc
        assert 'name="adag"' not in doc  # adag is the element, not attr
