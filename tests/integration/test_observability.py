"""Acceptance scenario for the observability spine: a service-backed
workflow run under tracing yields one coherent span tree (client SOAP spans
and server dispatch spans share trace ids), and the metrics surfaces report
per-operation counts and latency quantiles — including through the
``repro run --trace`` / ``repro trace`` / ``repro metrics`` CLI."""

import json

import pytest

from repro import cli, obs
from repro.data import arff, synthetic
from repro.workflow import TaskGraph, ToolBox, WorkflowEngine, \
    import_wsdl_url
from repro.workflow.model import FunctionTool


@pytest.fixture()
def traced_run(hosted_toolbox):
    """Run a service-backed workflow with tracing on."""
    obs.enable_tracing()
    box = ToolBox()
    tools = {t.name: t for t in import_wsdl_url(
        hosted_toolbox.wsdl_url("Data"), box)}
    graph = TaskGraph("obs-accept")
    src = graph.add(FunctionTool(
        "Dataset", lambda: arff.dumps(synthetic.weather_nominal()),
        [], ["dataset"]))
    summarise = graph.add(tools["Data.summarise"])
    graph.connect(src, summarise, target_index=0)
    result = WorkflowEngine().run(graph)
    assert result.output(summarise)["num_instances"] == 14
    return result


class TestSpanTree:
    def test_workflow_and_service_spans_share_one_trace(self, traced_run):
        spans = obs.get_tracer().collector.spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, span)
        wf = by_name["workflow:obs-accept"]
        assert traced_run.trace_id == wf.trace_id
        # client side, wire hop, server side: all in the workflow's trace
        for name in ("task:Dataset", "task:Data.summarise",
                     "soap:Data.summarise", "send:http",
                     "http:POST /services/Data",
                     "dispatch:Data.summarise", "op:Data.summarise"):
            assert by_name[name].trace_id == wf.trace_id, name

    def test_rendered_tree_nests_server_under_client(self, traced_run):
        text = obs.render_span_tree(obs.get_tracer().collector.spans())
        assert text.count("trace ") == 1  # one coherent trace, one header
        lines = text.splitlines()
        soap_line = next(ln for ln in lines
                         if "soap:Data.summarise" in ln)
        dispatch = next(ln for ln in lines
                        if "dispatch:Data.summarise" in ln)
        assert dispatch.index("dispatch:") > soap_line.index("soap:")


class TestMetricsSurfaces:
    def test_per_operation_counts_and_quantiles(self, traced_run):
        snap = obs.get_metrics().snapshot()
        calls = snap["counters"]["ws.client.calls{operation=summarise,"
                                 "service=Data}"]
        assert calls == 1.0
        lat = snap["histograms"]["ws.client.seconds{operation=summarise,"
                                 "service=Data}"]
        assert lat["count"] == 1
        assert 0.0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        dispatch = snap["histograms"]["ws.server.dispatch.seconds"
                                      "{operation=summarise,service=Data}"]
        assert dispatch["count"] == 1
        assert snap["histograms"][
            "workflow.run.seconds{graph=obs-accept}"]["count"] == 1


class TestCli:
    def test_run_trace_metrics_commands(self, tmp_path, capsys):
        from repro.workflow import default_toolbox, xmlio
        workflow_xml = tmp_path / "wf.xml"
        box = default_toolbox()
        g = TaskGraph("cli-obs")
        src = g.add(box.get("StringInput"), value="hello")
        g.connect(src, g.add(box.get("StringViewer")))
        workflow_xml.write_text(xmlio.dumps(g))
        snap_path = tmp_path / "trace.json"

        assert cli.main(["run", "--trace",
                         "--trace-out", str(snap_path),
                         str(workflow_xml)]) == 0
        out = capsys.readouterr().out
        assert "workflow:cli-obs" in out and "task:StringInput" in out
        assert snap_path.exists()

        assert cli.main(["trace", str(snap_path)]) == 0
        assert "workflow:cli-obs" in capsys.readouterr().out

        assert cli.main(["metrics", "--json", str(snap_path)]) == 0
        metrics = json.loads(capsys.readouterr().out)
        runs = metrics["counters"]["workflow.runs{graph=cli-obs}"]
        assert runs == 1.0
        tasks = metrics["histograms"][
            "workflow.task.seconds{task=StringInput}"]
        assert tasks["count"] == 1 and "p95" in tasks

    def test_missing_snapshot_is_helpful(self, tmp_path, capsys):
        assert cli.main(["metrics", str(tmp_path / "nope.json")]) != 0
        assert "repro run --trace" in capsys.readouterr().err

    def test_corrupt_snapshot_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        assert cli.main(["trace", str(bad)]) != 0
        assert "not a trace snapshot" in capsys.readouterr().err
