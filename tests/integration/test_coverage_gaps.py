"""Edge-path coverage across modules: empty inputs, degenerate shapes,
fault paths and helper utilities."""

import math

import numpy as np
import pytest

from repro.data import Attribute, Dataset, summary
from repro.errors import ReproError, ServiceError, WorkflowError
from repro.ws import (InProcessTransport, ServiceContainer,
                      SimulatedTransport, SoapFault, SoapRequest, WAN,
                      operation, wsdl)
from repro.ws.service import ServiceDefinition
from repro.workflow import (FunctionTool, TaskGraph, WorkflowEngine,
                            patterns)
from repro.workflow.monitor import EventBus, ProgressMonitor


class TestDataEdges:
    def test_numeric_stats_all_missing(self):
        ds = Dataset("d", [Attribute.numeric("x")])
        ds.add_row([None])
        stats = summary.numeric_stats(ds, "x")
        assert math.isnan(stats["mean"])

    def test_one_r_missing_value_prediction(self, weather):
        from repro.ml.classifiers import OneR
        clf = OneR().fit(weather)
        inst = weather[0].copy()
        for j in range(weather.num_attributes - 1):
            inst.set_value(j, float("nan"))
        dist = clf.distribution(inst)
        assert dist.sum() == pytest.approx(1.0)

    def test_instance_repr_and_dataset_repr(self, weather):
        assert "Instance(" in repr(weather[0])
        assert "weather" in repr(weather)

    def test_attribute_repr(self):
        assert "nominal" in repr(Attribute.nominal("c", ["a"]))
        assert "numeric" in repr(Attribute.numeric("x"))


class TestWsEdges:
    def test_wsdl_describe_helper(self):
        class Tiny:
            @operation
            def op(self, x: int) -> int:
                return x

        definition = ServiceDefinition.from_class(Tiny, "Tiny")
        desc = wsdl.describe(definition, "http://h/services/Tiny")
        assert desc.operations["op"].params == (("x", "xsd:int"),)
        info = wsdl.operation_info_of(desc.operations["op"])
        assert info.name == "op"

    def test_proxy_getattr_unknown(self):
        class Tiny:
            @operation
            def op(self) -> int:
                return 1

        container = ServiceContainer()
        definition = container.deploy(Tiny, "Tiny")
        from repro.ws import ServiceProxy
        proxy = ServiceProxy.from_wsdl_text(
            wsdl.generate(definition, "inproc://Tiny"),
            InProcessTransport(container))
        with pytest.raises(AttributeError):
            proxy.nonexistent
        assert proxy.op() == 1

    def test_simulated_transport_charges_faults(self):
        class Boomer:
            @operation
            def boom(self) -> str:
                raise RuntimeError("pow")

        container = ServiceContainer()
        container.deploy(Boomer, "Boomer")
        t = SimulatedTransport(InProcessTransport(container), WAN)
        with pytest.raises(SoapFault):
            t.send(SoapRequest("Boomer", "boom", {}))
        assert t.messages == 2  # request + fault response both charged

    def test_service_error_hierarchy(self):
        assert issubclass(SoapFault, ServiceError)
        assert issubclass(ServiceError, ReproError)


class TestWorkflowEdges:
    def test_empty_graph_runs(self):
        result = WorkflowEngine().run(TaskGraph("empty"))
        assert result.outputs == {}

    def test_all_source_graph(self):
        g = TaskGraph()
        tools = [g.add(FunctionTool(f"C{i}", lambda i=i, **kw: i, [],
                                    ["out"])) for i in range(3)]
        result = WorkflowEngine().run(g)
        assert [result.output(t) for t in tools] == [0, 1, 2]

    def test_pipeline_single_tool(self):
        tool = FunctionTool("One", lambda value=7: value, [], ["out"])
        g = patterns.pipeline([tool])
        assert WorkflowEngine().run(g).output(g.tasks[0]) == 7

    def test_pipeline_empty_rejected(self):
        with pytest.raises(WorkflowError):
            patterns.pipeline([])

    def test_scatter_splitter_arity_enforced(self):
        tool = patterns.scatter_tool(2, lambda v: [v])
        with pytest.raises(WorkflowError):
            tool.run([1], {})

    def test_inject_arity_enforced(self):
        g = patterns.pipeline([
            FunctionTool("Src", lambda value=1: value, [], ["out"]),
            FunctionTool("Dst", lambda x: x, ["x"], ["out"])])
        sink_only = FunctionTool("Sink", lambda x: None, ["x"], [])
        with pytest.raises(WorkflowError):
            patterns.inject(g, g.cables[0], sink_only)

    def test_monitor_empty_timeline(self):
        assert ProgressMonitor(EventBus()).timeline() == "(no events)"

    def test_dax_empty_graph(self):
        from repro.workflow import dax
        doc = dax.dumps(TaskGraph("empty"))
        assert dax.job_count(doc) == 0


class TestVizEdges:
    def test_surface_ascii_with_nan(self):
        z = np.array([[0.0, np.nan], [1.0, 0.5]])
        out = __import__("repro.viz.ascii_plot",
                         fromlist=["surface_ascii"]).surface_ascii(z, 8, 4)
        assert "?" in out

    def test_plot3d_incomplete_grid_falls_back(self):
        # 3 points cannot form a grid -> point plotting path
        from repro.viz.plot3d import grid_from_points, plot3d
        xs = np.array([0.0, 1.0, 2.0])
        ys = np.array([0.0, 1.0, 0.0])
        zs = np.array([1.0, 2.0, 3.0])
        assert grid_from_points(xs, ys, zs) is None
        img = plot3d(xs, ys, zs, width=40, height=40)
        assert img.startswith(b"P6")

    def test_raster_degenerate_triangle(self):
        from repro.viz.ppm import Raster
        r = Raster(10, 10)
        r.fill_triangle((2, 2), (2, 2), (2, 2), (0, 0, 0))  # no crash


class TestMlEdges:
    def test_kmeans_k1(self, blobs):
        from repro.ml.clusterers import SimpleKMeans
        km = SimpleKMeans(k=1).fit(blobs)
        assert set(km.assign(blobs)) == {0}

    def test_em_single_component_loglik_finite(self, blobs):
        from repro.ml.clusterers import EM
        em = EM(k=1).fit(blobs)
        assert math.isfinite(em.log_likelihood(blobs))

    def test_apriori_max_size_one(self, baskets):
        from repro.ml.associations import Apriori
        mined = Apriori(min_support=0.2, max_size=1).fit(baskets)
        assert all(len(i) == 1 for i in mined.itemsets)
        assert mined.rules == []

    def test_weighted_evaluation_in_cv(self, weather):
        from repro.ml import evaluation
        from repro.ml.classifiers import ZeroR
        heavy = weather.copy()
        heavy[0].weight = 10.0
        result = evaluation.cross_validate(lambda: ZeroR(), heavy, k=3)
        assert result.total == pytest.approx(14 + 9)  # 13*1 + 10

    def test_discretize_then_id3(self, two_class):
        """Discretisation unlocks nominal-only learners on numeric data."""
        from repro.ml.classifiers import Id3
        from repro.ml.filters import Discretize
        nominal = Discretize(bins=4).fit_apply(two_class)
        clf = Id3().fit(nominal)
        from repro.ml import evaluation
        assert evaluation.evaluate(clf, nominal).accuracy > 0.75
