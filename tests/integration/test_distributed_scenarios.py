"""Distributed scenarios: §4.5 lifecycles, remote streaming vs migration,
fault-tolerant migration across real HTTP replicas."""

import pytest

from repro.data import arff, stream
from repro.services import J48Service, deploy_toolbox
from repro.ws import (InProcessTransport, ServiceContainer, ServiceProxy,
                      SimulatedTransport, SoapHttpServer, SoapRequest, WAN,
                      wsdl)
from repro.workflow import ReplicatedServiceTool


class TestSection45Lifecycles:
    """The paper's serialisation-penalty observation, functionally."""

    @pytest.fixture()
    def dataset_arff(self, breast_cancer):
        return arff.dumps(breast_cancer)

    def test_both_lifecycles_give_identical_answers(self, tmp_path,
                                                    dataset_arff):
        fast = ServiceContainer(state_dir=tmp_path / "fast")
        slow = ServiceContainer(state_dir=tmp_path / "slow")
        fast.deploy(J48Service, "J48", lifecycle="harness")
        slow.deploy(J48Service, "J48", lifecycle="serialize")
        a = fast.call("J48", "classify", dataset=dataset_arff,
                      attribute="Class")
        b = slow.call("J48", "classify", dataset=dataset_arff,
                      attribute="Class")
        assert a == b

    def test_serialize_lifecycle_pays_per_invocation(self, tmp_path,
                                                     dataset_arff):
        container = ServiceContainer(state_dir=tmp_path)
        container.deploy(J48Service, "J48", lifecycle="serialize")
        for _ in range(3):
            container.call("J48", "classify", dataset=dataset_arff,
                           attribute="Class")
        stats = container.stats("J48")
        assert stats.invocations == 3
        assert stats.serialize_seconds > 0
        # the serialised model state is substantial (a trained J48)
        assert stats.serialized_bytes > 1000

    def test_harness_keeps_model_cache_effective(self, tmp_path,
                                                 dataset_arff):
        """The J48Service caches the last model; under the harness
        lifecycle repeated identical calls reuse it."""
        container = ServiceContainer(state_dir=tmp_path)
        container.deploy(J48Service, "J48", lifecycle="harness")
        container.call("J48", "classify", dataset=dataset_arff,
                       attribute="Class")
        first = container.stats("J48").dispatch_seconds
        container.call("J48", "classify", dataset=dataset_arff,
                       attribute="Class")
        second = container.stats("J48").dispatch_seconds - first
        assert second < first  # cache hit is much cheaper


class TestStreamingVsMigration:
    """§1/§3: stream instances from a remote source vs migrate the whole
    dataset — measured on the simulated WAN."""

    def test_streaming_transfers_whole_dataset_in_chunks(self,
                                                         breast_cancer):
        header, chunks = stream.replay(breast_cancer, 64)
        container = deploy_toolbox()
        transport = SimulatedTransport(InProcessTransport(container), WAN)
        # migrate: one message carrying the full ARFF
        full = arff.dumps(breast_cancer)
        transport.send(SoapRequest("Data", "validate", {"dataset": full}))
        migrate_bytes = transport.bytes_on_wire
        migrate_msgs = transport.messages
        # stream: header + chunk messages
        transport2 = SimulatedTransport(InProcessTransport(container), WAN)
        opened = transport2.send(SoapRequest(
            "Data", "openStream",
            {"dataset": full, "chunk_size": 64})).result
        for i in range(opened["chunks"]):
            transport2.send(SoapRequest(
                "Data", "readChunk",
                {"stream_id": opened["stream"], "index": i}))
        assert transport2.messages > migrate_msgs
        # chunked transfer pays more latency but the same order of bytes
        assert transport2.virtual_seconds > 0
        assert migrate_bytes > 0

    def test_streamed_model_equals_batch_model(self, breast_cancer):
        from repro.ml.classifiers import NaiveBayes, NaiveBayesUpdateable
        header, chunks = stream.replay(breast_cancer, 50)
        reader = stream.ChunkedStreamReader(header)
        clf = NaiveBayesUpdateable()
        head = reader.header.copy_header()
        head.set_class("Class")
        clf.begin(head)
        seen = 0
        for chunk in chunks:
            reader.feed(chunk)
            ds = reader.dataset()
            for inst in ds.instances[seen:]:
                clf.update(inst)
            seen = len(ds)
        batch = NaiveBayes().fit(breast_cancer)
        for inst in list(breast_cancer)[:20]:
            assert clf.distribution(inst) == pytest.approx(
                batch.distribution(inst), abs=1e-9)


class TestHttpReplicaMigration:
    """Job migration across two real HTTP hosts when one dies."""

    def test_migration_after_server_shutdown(self, breast_cancer):
        data = arff.dumps(breast_cancer)
        servers = []
        proxies = []
        for _ in range(2):
            container = ServiceContainer()
            container.deploy(J48Service, "J48")
            server = SoapHttpServer(container).start()
            servers.append(server)
            proxies.append(ServiceProxy.from_wsdl_url(
                server.wsdl_url("J48")))
        # kill the first replica's host
        servers[0].stop()
        tool = ReplicatedServiceTool("J48.classify", proxies, "classify",
                                     ["dataset", "attribute"])
        [out] = tool.run([data, "Class"], {})
        assert "node-caps" in out
        assert len(tool.migrations) == 1
        servers[1].stop()
        for proxy in proxies:
            proxy.close()
