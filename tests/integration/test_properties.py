"""Cross-module property-based tests on generated datasets."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.data import Attribute, Dataset, arff, stream
from repro.ml.classifiers import J48, NaiveBayes, ZeroR
from repro.ml.evaluation import evaluate, stratified_folds
from repro.ml.filters import Discretize, Normalize, ReplaceMissing


@st.composite
def labelled_datasets(draw, min_rows=4, max_rows=30):
    """Random mixed datasets with a binary class and some missing cells."""
    n_attrs = draw(st.integers(1, 4))
    attrs = []
    for i in range(n_attrs):
        if draw(st.booleans()):
            attrs.append(Attribute.numeric(f"a{i}"))
        else:
            attrs.append(Attribute.nominal(
                f"a{i}", [f"v{j}" for j in range(draw(st.integers(2, 3)))]))
    attrs.append(Attribute.nominal("class", ("n", "p")))
    ds = Dataset("prop", attrs, class_index=len(attrs) - 1)
    n_rows = draw(st.integers(min_rows, max_rows))
    for _ in range(n_rows):
        row = []
        for attr in attrs[:-1]:
            if draw(st.integers(0, 9)) == 0:
                row.append(None)
            elif attr.is_numeric:
                row.append(draw(st.floats(-100, 100, allow_nan=False)))
            else:
                row.append(draw(st.sampled_from(list(attr.values))))
        row.append(draw(st.sampled_from(["n", "p"])))
        ds.add_row(row)
    return ds


@given(labelled_datasets())
@settings(max_examples=30, deadline=None)
def test_replace_missing_removes_all_missing(ds):
    out = ReplaceMissing().fit_apply(ds)
    assert out.num_missing() == 0
    assert out.num_instances == ds.num_instances


@given(labelled_datasets())
@settings(max_examples=30, deadline=None)
def test_normalize_is_idempotent_on_its_output(ds):
    first = Normalize().fit_apply(ds)
    second = Normalize().fit_apply(first)
    a, b = first.to_matrix(), second.to_matrix()
    both_nan = np.isnan(a) & np.isnan(b)
    assert np.all(both_nan | np.isclose(a, b, equal_nan=False,
                                        atol=1e-12))


@given(labelled_datasets())
@settings(max_examples=30, deadline=None)
def test_discretize_output_is_all_nominal(ds):
    out = Discretize(bins=3).fit_apply(ds)
    for i, attr in enumerate(out.attributes):
        if i != out.class_index:
            assert not attr.is_numeric


@given(labelled_datasets(min_rows=6))
@settings(max_examples=25, deadline=None)
def test_classifier_distributions_always_valid(ds):
    assume(np.count_nonzero(ds.class_counts()) >= 1)
    for clf in (ZeroR(), NaiveBayes()):
        clf.fit(ds)
        for inst in ds:
            dist = clf.distribution(inst)
            assert dist.min() >= -1e-12
            assert dist.sum() == pytest.approx(1.0, abs=1e-9)


@given(labelled_datasets(min_rows=8))
@settings(max_examples=20, deadline=None)
def test_j48_never_worse_than_chance_on_training(ds):
    assume(np.count_nonzero(ds.class_counts()) == 2)
    clf = J48(min_obj=1).fit(ds)
    result = evaluate(clf, ds)
    majority = ds.class_counts().max() / ds.class_counts().sum()
    assert result.accuracy >= majority - 1e-9


@given(labelled_datasets(min_rows=6), st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_stratified_folds_partition(ds, k):
    assume(k <= ds.num_instances)
    folds = stratified_folds(ds, k, seed=0)
    flat = sorted(i for fold in folds for i in fold)
    assert flat == list(range(ds.num_instances))
    sizes = [len(f) for f in folds]
    assert max(sizes) - min(sizes) <= ds.num_classes + 1


@given(labelled_datasets(), st.integers(1, 7))
@settings(max_examples=25, deadline=None)
def test_stream_roundtrip_property(ds, chunk_size):
    header, chunks = stream.replay(ds, chunk_size)
    reader = stream.ChunkedStreamReader(header)
    for chunk in chunks:
        reader.feed(chunk)
    rebuilt = reader.dataset()
    assert rebuilt.num_instances == ds.num_instances
    for a, b in zip(rebuilt, ds):
        for x, y in zip(a.values, b.values):
            if math.isnan(y):
                assert math.isnan(x)
            else:
                assert x == pytest.approx(y, rel=1e-9)


@given(labelled_datasets())
@settings(max_examples=20, deadline=None)
def test_soap_carries_any_arff_document(ds):
    """Any dataset the toolkit can produce survives SOAP transport."""
    from repro.ws import soap
    document = arff.dumps(ds)
    request = soap.SoapRequest("Data", "validate",
                               {"dataset": document})
    again = soap.decode_request(soap.encode_request(request))
    assert again.params["dataset"] == document
    reparsed = arff.loads(again.params["dataset"])
    assert reparsed.num_instances == ds.num_instances
