"""Golden-trace parity: the interceptor-pipeline refactor must not move
a single observable.

A fixed four-call breast-cancer workflow (validate → summarise → convert
→ J48 classify, mixing a plain in-process transport with a simulated
network + circuit breaker) is run under tracing, and its *canonical span
tree* plus its *entire counter set* (and histogram sample counts) are
compared against a golden snapshot recorded before the handler-chain
refactor.  Trace ids, span ids and wall-clock durations are excluded —
everything else must be byte-for-byte identical, proving the chains
re-express the old inline concerns rather than re-implementing them.

Regenerate the golden file (only when an *intentional* behaviour change
lands) with::

    FAEHIM_WRITE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_pipeline_parity.py
"""

import json
import os
from pathlib import Path

from repro import obs
from repro.data import arff, synthetic
from repro.services import DataService, J48Service
from repro.ws import (CircuitBreaker, InProcessTransport, ServiceContainer,
                      ServiceProxy, SimulatedTransport, wsdl)
from repro.workflow import TaskGraph, WorkflowEngine
from repro.workflow.model import FunctionTool
from repro.workflow.wsimport import WebServiceTool, import_wsdl_text

GOLDEN = Path(__file__).parent / "golden_pipeline_trace.json"


def _deterministic_ids():
    """Replace the tracer's random id generator with a counter, so the
    trace-context bytes on the wire (and therefore gzip sizes) are
    identical run to run."""
    from repro.obs import trace as trace_mod
    counter = iter(range(1, 1 << 30))

    def fake_new_id(n_hex: int = 16) -> str:
        return format(next(counter), "x").rjust(n_hex, "0")

    original = trace_mod.new_id
    trace_mod.new_id = fake_new_id
    return lambda: setattr(trace_mod, "new_id", original)


def build_and_run():
    """The fixed 4-call workflow; returns the RunResult."""
    obs.enable_tracing()
    container = ServiceContainer("parity")
    data_def = container.deploy(DataService, "Data")
    j48_def = container.deploy(J48Service, "J48")

    data_tools = {t.name: t for t in import_wsdl_text(
        wsdl.generate(data_def, "inproc://Data"),
        InProcessTransport(container))}
    j48_proxy = ServiceProxy.from_wsdl_text(
        wsdl.generate(j48_def, "sim://J48"),
        SimulatedTransport(InProcessTransport(container)),
        breaker=CircuitBreaker("sim://J48"))
    classify_tool = WebServiceTool(j48_proxy, "classify")

    graph = TaskGraph("pipeline-parity")
    src = graph.add(FunctionTool(
        "Dataset", lambda: arff.dumps(synthetic.breast_cancer()),
        [], ["dataset"]))
    validate = graph.add(data_tools["Data.validate"])
    summarise = graph.add(data_tools["Data.summarise"])
    convert = graph.add(data_tools["Data.convert"],
                        source="arff", target="csv")
    classify = graph.add(classify_tool, attribute="Class")
    for sink in (validate, summarise, convert, classify):
        graph.connect(src, sink, target_index=0)

    # one worker => deterministic task order => deterministic payload
    # inline/ref sequences and cache hit/miss sequences
    engine = WorkflowEngine(max_workers=1)
    result = engine.run(graph)
    assert "node-caps" in result.output(classify)
    assert result.output(validate)["num_instances"] == 286
    return result


def canonical_span_tree(spans):
    """Nested [name, [children...]] lists, children sorted, ids erased."""
    by_id = {s.span_id: s for s in spans}
    children: dict[str, list] = {}
    roots = []
    for span in spans:
        if span.parent_id and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    def node(span):
        kids = sorted((node(c) for c in children.get(span.span_id, [])),
                      key=json.dumps)
        return [span.name, kids]

    return sorted((node(r) for r in roots), key=json.dumps)


def canonical_metrics():
    """Every counter value + histogram sample count (no timings)."""
    snap = obs.get_metrics().snapshot()
    counters = {name: round(value, 6)
                for name, value in snap["counters"].items()}
    histogram_counts = {name: summary["count"]
                        for name, summary in snap["histograms"].items()}
    return {"counters": counters, "histogram_counts": histogram_counts}


def test_golden_trace_parity():
    restore = _deterministic_ids()
    try:
        build_and_run()
    finally:
        restore()
    observed = {
        "span_tree": canonical_span_tree(
            obs.get_tracer().collector.spans()),
        "metrics": canonical_metrics(),
    }
    if os.environ.get("FAEHIM_WRITE_GOLDEN") == "1":
        GOLDEN.write_text(json.dumps(observed, indent=2, sort_keys=True)
                          + "\n")
    golden = json.loads(GOLDEN.read_text())
    assert observed["span_tree"] == golden["span_tree"]
    assert observed["metrics"]["counters"] == \
        golden["metrics"]["counters"]
    assert observed["metrics"]["histogram_counts"] == \
        golden["metrics"]["histogram_counts"]


def test_parity_run_is_self_deterministic():
    """Two runs in one process (fresh registries) agree with each other —
    the golden comparison above is meaningful, not flaky."""
    def once():
        from repro.data import cache as datacache
        from repro.ws import container as wscontainer
        from repro.ws import payload
        obs.reset_metrics()
        obs.reset_tracing()
        payload.reset_payload_store()
        datacache.reset_parse_cache()
        wscontainer.reset_result_cache()
        obs.enable_tracing()
        restore = _deterministic_ids()
        try:
            build_and_run()
        finally:
            restore()
        return (canonical_span_tree(obs.get_tracer().collector.spans()),
                canonical_metrics())

    assert once() == once()
