"""End-to-end reproduction of the paper's §5 case study and §4.4 workflow.

The case study composes four Web Services: (1) read the data file from a URL
and convert it, (2) classify with C4.5, (3) analyse the output, (4) visualise
the decision tree.  The §4.4 flow additionally runs getClassifiers /
getOptions / classifyInstance through the selector tools.
"""

import pytest

from repro.data import arff
from repro.workflow import (TaskGraph, ToolBox, WorkflowEngine,
                            default_toolbox, import_wsdl_url)
from repro.ws import ServiceProxy


@pytest.fixture(scope="module")
def published(hosted_toolbox, breast_cancer):
    """Publish the case-study dataset into the Data service repository."""
    data = ServiceProxy.from_wsdl_url(hosted_toolbox.wsdl_url("Data"))
    url = data.publishDataset(name="uci-breast-cancer",
                              dataset=arff.dumps(breast_cancer))
    yield url
    data.close()


class TestFourServiceComposition:
    """§5.3: four Web Services composed with the workflow tool."""

    def test_full_pipeline(self, hosted_toolbox, published):
        box = ToolBox()
        data_tools = {t.name: t for t in import_wsdl_url(
            hosted_toolbox.wsdl_url("Data"), box)}
        j48_tools = {t.name: t for t in import_wsdl_url(
            hosted_toolbox.wsdl_url("J48"), box)}
        viz_tools = {t.name: t for t in import_wsdl_url(
            hosted_toolbox.wsdl_url("TreeVisualizer"), box)}
        analysis = default_toolbox()

        g = TaskGraph("case-study")
        # service 1: read the data file from a URL
        read = g.add(data_tools["Data.readURL"], url=published)
        # service 2: perform the classification (C4.5)
        classify = g.add(j48_tools["J48.classifyGraph"],
                         attribute="Class")
        # service 3: analyse the output of the decision tree
        def extract_graph(result):
            assert result["root_attribute"] == "node-caps"
            return result["graph"]
        from repro.workflow.model import FunctionTool
        analyse = g.add(FunctionTool("ExtractGraph", extract_graph,
                                     ["result"], ["graph"]))
        # service 4: visualise the output
        plot = g.add(viz_tools["TreeVisualizer.plotTree"],
                     format="svg", title="Figure 4")

        g.connect(read, classify, target_index=0)   # dataset
        g.connect(classify, analyse)
        g.connect(analyse, plot, target_index=0)    # graph

        result = WorkflowEngine().run(g)
        svg = result.output(plot)
        assert svg.startswith("<svg")
        assert "node-caps" in svg
        assert result.wall_seconds < 30

    def test_dax_export_of_case_study(self, hosted_toolbox, published):
        from repro.workflow import dax
        box = ToolBox()
        tools = {t.name: t for t in import_wsdl_url(
            hosted_toolbox.wsdl_url("J48"), box)}
        g = TaskGraph("export-demo")
        t = g.add(tools["J48.classify"])
        doc = dax.dumps(g)
        assert dax.job_count(doc) == 1


class TestSection44Flow:
    """§4.4's numbered stages through the general Classifier service."""

    def test_selector_driven_classification(self, hosted_toolbox,
                                            breast_cancer):
        box = default_toolbox()
        ws = {t.name.split(".")[1]: t for t in import_wsdl_url(
            hosted_toolbox.wsdl_url("Classifier"), box)}

        g = TaskGraph("figure-1")
        get_cls = g.add(ws["getClassifiers"])
        selector = g.add(box.get("ClassifierSelector"), choice="J48")
        get_opts = g.add(ws["getOptions"])
        opt_sel = g.add(box.get("OptionSelector"),
                        overrides={"confidence": 0.25})
        local = g.add(box.get("LocalDataset"), dataset=breast_cancer)
        attr_sel = g.add(box.get("AttributeSelector"), attribute="Class")
        classify = g.add(ws["classifyInstance"])
        viewer = g.add(box.get("TreeViewer"), mode="text")

        g.connect(get_cls, selector)
        g.connect(selector, get_opts)
        g.connect(get_opts, opt_sel)
        g.connect(selector, classify, target_index=0)
        g.connect(local, classify, target_index=1)
        g.connect(attr_sel, classify, target_index=2)
        g.connect(opt_sel, classify, target_index=3)
        g.connect(local, attr_sel)
        g.connect(classify, viewer)

        result = WorkflowEngine().run(g)
        view = result.output(viewer)
        assert "node-caps" in view
        assert "J48" in view

    def test_workflow_xml_roundtrip_with_ws_tools(self, hosted_toolbox,
                                                  breast_cancer):
        from repro.workflow import xmlio
        box = default_toolbox()
        ws = {t.name.split(".")[1]: t for t in import_wsdl_url(
            hosted_toolbox.wsdl_url("J48"), box)}
        g = TaskGraph("persisted")
        t = g.add(ws["classify"], dataset=arff.dumps(breast_cancer),
                  attribute="Class")
        text = xmlio.dumps(g)
        again = xmlio.loads(text, box)
        result = WorkflowEngine().run(again)
        assert "node-caps" in result.output(t.name)


class TestGenericClassifiersViaService:
    """Any catalogue classifier works through the same composed flow."""

    @pytest.mark.parametrize("classifier",
                             ["NaiveBayes", "IB3", "OneR", "Bagging"])
    def test_alternatives(self, hosted_toolbox, breast_cancer,
                          classifier):
        proxy = ServiceProxy.from_wsdl_url(
            hosted_toolbox.wsdl_url("Classifier"))
        out = proxy.classifyInstance(classifier=classifier,
                                     dataset=arff.dumps(breast_cancer),
                                     attribute="Class")
        assert out["training_accuracy"] > 0.5
        proxy.close()
