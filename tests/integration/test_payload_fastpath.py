"""Acceptance: the data-plane fast path on a repeated-dataset workload.

A workflow that ships the same ARFF document to several services (the
canonical FAEHIM shape: validate here, summarise there, convert
somewhere else) must move at least 2x fewer bytes over the simulated
network — and finish in measurably less modelled time — than the same
workload with the fast path disabled.
"""

from repro.data import arff
from repro.data import cache as datacache
from repro.obs import get_metrics
from repro.services import deploy_toolbox
from repro.ws import payload
from repro.ws.soap import SoapRequest
from repro.ws.transport import (InProcessTransport, NetworkModel,
                                SimulatedTransport, WAN)

#: A bandwidth-constrained path (5 ms, 10 Mb/s): transfer time, which
#: the fast path attacks, dominates propagation latency, which it
#: cannot (the message count is unchanged by design).
DSL = NetworkModel(latency_s=0.005, bandwidth_bps=10e6 / 8)


def run_workload(document: str) -> SimulatedTransport:
    """Four service calls all carrying the same large dataset."""
    container = deploy_toolbox()
    transport = SimulatedTransport(InProcessTransport(container), DSL)
    calls = [
        ("Data", "validate", {"dataset": document}),
        ("Data", "summarise", {"dataset": document}),
        ("Data", "convert", {"document": document, "source": "arff",
                             "target": "csv"}),
        ("Data", "validate", {"dataset": document}),
    ]
    for service, op, params in calls:
        response = transport.send(SoapRequest(service, op, params))
        assert response.result is not None
    return transport


def set_fastpath(on: bool) -> None:
    payload.set_enabled(on)
    datacache.set_enabled(on)
    payload.reset_payload_store()
    datacache.reset_parse_cache()


class TestPayloadFastpath:
    def test_bytes_and_time_reduction(self, breast_cancer):
        document = arff.dumps(breast_cancer)
        assert len(document) > payload.MIN_REF_BYTES

        set_fastpath(False)
        baseline = run_workload(document)
        set_fastpath(True)
        fast = run_workload(document)

        # >= 2x fewer bytes over the modelled network
        assert baseline.bytes_on_wire >= 2 * fast.bytes_on_wire
        # >= 30% less modelled transfer time on the WAN path
        assert fast.virtual_seconds <= 0.7 * baseline.virtual_seconds
        # same message count: refs change size, not protocol shape
        assert fast.messages == baseline.messages

    def test_metrics_surface(self, breast_cancer):
        document = arff.dumps(breast_cancer)
        run_workload(document)
        counters = get_metrics().snapshot()["counters"]
        assert counters["ws.payload.inline_sends"] >= 1
        assert counters["ws.payload.ref_sends"] >= 2
        assert counters["ws.payload.bytes_saved"] >= 2 * len(document)
        assert counters["ws.payload.ref_hits"] >= 2
        assert counters["ws.compress.messages"] >= 1
        # the same document is parsed once, then memo-served
        assert counters["ws.cache.parse.hits{kind=arff}"] >= 1
        # the repeated validate call is answered from the result cache
        assert counters["ws.cache.result.hits{service=Data}"] >= 1

    def test_fastpath_changes_no_results(self, breast_cancer):
        document = arff.dumps(breast_cancer)
        container = deploy_toolbox()
        transport = SimulatedTransport(InProcessTransport(container), WAN)

        def summarise():
            return transport.send(SoapRequest(
                "Data", "summarise", {"dataset": document})).result

        with_fastpath = [summarise() for _ in range(3)]
        set_fastpath(False)
        plain = summarise()
        assert with_fastpath == [plain] * 3

    def test_workflow_engine_annotates_bytes_saved(self, breast_cancer):
        from repro import obs
        from repro.workflow import WorkflowEngine
        from repro.workflow.model import TaskGraph
        from repro.workflow.wsimport import import_wsdl_text
        from repro.ws import wsdl

        obs.enable_tracing()
        document = arff.dumps(breast_cancer)
        container = deploy_toolbox()
        transport = SimulatedTransport(InProcessTransport(container), WAN)
        tools = {t.name: t for t in import_wsdl_text(
            wsdl.generate(container.definition("Data"), "local"),
            transport)}

        graph = TaskGraph("fastpath")
        for i in range(3):
            graph.add(tools["Data.validate"], name=f"v{i}",
                      dataset=document)
        result = WorkflowEngine().run(graph)
        assert not result.failed
        spans = [s for s in obs.get_tracer().collector.spans()
                 if s.name == "workflow:fastpath"]
        assert len(spans) == 1
        assert spans[0].attributes["payload_bytes_saved"] >= len(document)
        saved = get_metrics().counter("workflow.run.bytes_saved",
                                      graph="fastpath").value
        assert saved >= len(document)
