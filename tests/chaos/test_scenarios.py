"""Seed-pinned chaos drills: end-to-end resilience regression scenarios.

Every scenario fixes its chaos seed and asserts both the *outcome* (the
workflow completed / failed in the expected way) and the *telemetry* (the
metrics and spans the resilience machinery must emit), so a regression in
either the fault injection or the recovery path fails loudly.
"""

import pytest

from repro import chaos
from repro.chaos import ChaosController, ChaosTransport
from repro.clock import FakeClock
from repro.errors import (CircuitOpenError, DeadlineExceeded,
                          TransportError)
from repro.obs import enable_tracing, get_metrics, get_tracer
from repro.ws import (InProcessTransport, ServiceContainer, ServiceProxy,
                      wsdl)
from repro.ws.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.ws.service import operation
from repro.workflow import (EventBus, ReplicatedServiceTool, RetryPolicy,
                            TaskGraph, WorkflowEngine, import_wsdl_text)
from repro.workflow.model import FunctionTool


class Echo:
    @operation
    def shout(self, text: str) -> str:
        return text.upper()


def echo_container():
    container = ServiceContainer()
    definition = container.deploy(Echo, "Echo")
    return container, definition


def echo_proxy(endpoint, controller, breaker=None):
    container, definition = echo_container()
    transport = ChaosTransport(InProcessTransport(container), controller,
                               endpoint=endpoint)
    return ServiceProxy.from_wsdl_text(
        wsdl.generate(definition, endpoint), transport, breaker=breaker)


class TestFlakyTransportWithRetry:
    """error=N through ChaosTransport; RetryPolicy rides it out."""

    def test_task_succeeds_after_two_injected_errors(self):
        container, definition = echo_container()
        controller = ChaosController("error=2", seed=11)
        transport = ChaosTransport(InProcessTransport(container),
                                   controller,
                                   endpoint="inproc://Echo")
        tools = import_wsdl_text(
            wsdl.generate(definition, "inproc://Echo"), transport)
        shout = next(t for t in tools if t.name.endswith(".shout"))
        g = TaskGraph()
        task = g.add(shout, text="hi")
        clock = FakeClock()
        engine = WorkflowEngine(retry_policy=RetryPolicy(
            max_retries=3, backoff_s=0.01, clock=clock))
        result = engine.run(g)
        assert result.output(task) == "HI"
        assert not result.degraded
        # exactly the two planned faults were injected and retried away
        assert controller.summary() == {"inproc://Echo": {"error": 2}}
        assert get_metrics().counter("workflow.retries",
                                     task=task.name).value == 2
        # backoff ran on the fake clock with a linear schedule
        assert clock.sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_retries_exhausted_surfaces_the_chaos_fault(self):
        controller = ChaosController("error=99", seed=11)
        proxy = echo_proxy("inproc://Echo", controller)
        policy = RetryPolicy(max_retries=2, clock=FakeClock())
        tool = ReplicatedServiceTool("Shout", [proxy], "shout", ["text"])
        g = TaskGraph()
        g.add(tool, text="hi")
        engine = WorkflowEngine(retry_policy=policy)
        with pytest.raises(Exception) as exc_info:
            engine.run(g)
        assert "chaos: injected error" in str(exc_info.value)


class TestBreakerTripAndRecovery:
    """Repeated chaos errors trip the breaker; cooldown + probes heal it."""

    def test_full_cycle(self):
        clock = FakeClock()
        controller = ChaosController("error=4", seed=2, clock=clock)
        breaker = CircuitBreaker("inproc://Echo", failure_threshold=2,
                                 cooldown_s=5.0, clock=clock)
        proxy = echo_proxy("inproc://Echo", controller, breaker=breaker)

        for _ in range(2):  # two delivery failures trip the breaker
            with pytest.raises(TransportError):
                proxy.shout(text="hi")
        assert breaker.state == OPEN

        # while open: fail fast, without touching the transport
        injected_before = len(controller.injections())
        with pytest.raises(CircuitOpenError):
            proxy.shout(text="hi")
        assert len(controller.injections()) == injected_before

        # cooldown → half-open; the probes meet the two remaining
        # planned faults, each re-opening the circuit
        for _ in range(2):
            clock.advance(5.1)
            assert breaker.state == HALF_OPEN
            with pytest.raises(TransportError):
                proxy.shout(text="hi")
            assert breaker.state == OPEN

        # faults exhausted: the next probe succeeds and closes the circuit
        clock.advance(5.1)
        assert proxy.shout(text="hi") == "HI"
        assert breaker.state == CLOSED
        assert proxy.shout(text="hi") == "HI"

        metrics = get_metrics()
        assert metrics.counter("ws.breaker.transitions",
                               endpoint="inproc://Echo",
                               to=OPEN).value == 3
        assert metrics.counter("ws.breaker.transitions",
                               endpoint="inproc://Echo",
                               to=CLOSED).value == 1
        assert metrics.counter("ws.breaker.fast_failures",
                               endpoint="inproc://Echo").value == 1
        assert metrics.gauge("ws.breaker.state",
                             endpoint="inproc://Echo").value == 0


class TestDeadlineExpiryMidWorkflow:
    """A run whose budget dies between tasks fails fast, not slow."""

    def test_second_task_fails_fast(self):
        clock = FakeClock()
        ran = []

        def slow():
            clock.advance(2.0)  # task a consumes double the budget
            ran.append("a")
            return "a-out"

        def never(x):
            ran.append("b")  # must not execute
            return x

        g = TaskGraph()
        a = g.add(FunctionTool("A", slow, [], ["out"]), name="a")
        b = g.add(FunctionTool("B", never, ["x"], ["out"]), name="b")
        g.connect(a, b)
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        engine = WorkflowEngine(events=bus, clock=clock)
        with pytest.raises(DeadlineExceeded):
            engine.run(g, deadline_s=1.0)
        assert ran == ["a"]
        statuses = {(e.name, e.status) for e in events}
        assert ("b", "failed") in statuses
        assert ("b", "started") in statuses  # scheduled, then cut off
        workflow_failed = [e for e in events
                           if e.kind == "workflow" and
                           e.status == "failed"]
        assert workflow_failed

    def test_even_allow_partial_cannot_degrade_past_a_deadline(self):
        clock = FakeClock()
        g = TaskGraph()
        a = g.add(FunctionTool("A", lambda: clock.advance(9) or "x",
                               [], ["out"]), name="a")
        b = g.add(FunctionTool("B", lambda x: x, ["x"], ["out"]),
                  name="b")
        g.connect(a, b)
        engine = WorkflowEngine(allow_partial=True, clock=clock)
        with pytest.raises(DeadlineExceeded):
            engine.run(g, deadline_s=1.0)


class TestReplicaMigrationUnderBlackhole:
    """A blackholed replica trips its breaker; work migrates and the
    next run skips the dead replica without paying the timeout again."""

    def make_tool(self, clock, bus):
        controller = ChaosController("inproc://r0:blackhole=50ms",
                                     seed=5, clock=clock)
        proxies = [echo_proxy("inproc://r0", controller),
                   echo_proxy("inproc://r1", controller)]
        breakers = [CircuitBreaker(f"inproc://r{i}", failure_threshold=1,
                                   cooldown_s=60.0, clock=clock)
                    for i in range(2)]
        tool = ReplicatedServiceTool("Shout", proxies, "shout", ["text"],
                                     events=bus, breakers=breakers)
        return tool, controller, breakers

    def test_migration_then_breaker_guarded_skip(self):
        clock = FakeClock()
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        tool, controller, breakers = self.make_tool(clock, bus)

        # run 1: replica 0 blackholes (consuming its 50ms timeout on the
        # fake clock), the call migrates to replica 1 and succeeds
        assert tool.run(["hi"], {}) == ["HI"]
        assert controller.summary() == {"inproc://r0": {"blackhole": 1}}
        assert pytest.approx(0.05) in clock.sleeps
        assert breakers[0].state == OPEN
        assert [r for r, _ in tool.migrations] == [0]

        # run 2: the open circuit skips replica 0 outright — no second
        # blackhole wait is paid
        assert tool.run(["hi"], {}) == ["HI"]
        assert controller.summary() == {"inproc://r0": {"blackhole": 1}}
        skip = [(r, why) for r, why in tool.migrations
                if "circuit open" in why]
        assert skip == [(0, "circuit open, skipped")]
        assert get_metrics().counter("workflow.migrations",
                                     tool="Shout").value == 2
        migrated = [e for e in events if e.status == "migrated"]
        assert len(migrated) == 2

    def test_every_circuit_open_fails_fast(self):
        clock = FakeClock()
        controller = ChaosController("blackhole=50ms", seed=5,
                                     clock=clock)
        proxies = [echo_proxy("inproc://r0", controller)]
        breaker = CircuitBreaker("inproc://r0", failure_threshold=1,
                                 cooldown_s=60.0, clock=clock)
        tool = ReplicatedServiceTool("Shout", proxies, "shout", ["text"],
                                     breakers=[breaker])
        with pytest.raises(Exception):
            tool.run(["hi"], {})  # trips the only breaker
        with pytest.raises(Exception) as exc_info:
            tool.run(["hi"], {})  # nothing left to try
        assert isinstance(exc_info.value.__cause__, CircuitOpenError) or \
            "circuit" in str(exc_info.value)


class TestEngineChaosDeterminism:
    """The globally armed controller makes any workflow a seeded drill."""

    def run_once(self, seed):
        controller = chaos.install("task:*:drop=0.4,delay=1ms",
                                   seed=seed, clock=FakeClock())
        g = TaskGraph()
        a = g.add(FunctionTool("A", lambda: 1, [], ["out"]), name="a")
        b = g.add(FunctionTool("B", lambda x: x + 1, ["x"], ["out"]),
                  name="b")
        c = g.add(FunctionTool("C", lambda x: x * 2, ["x"], ["out"]),
                  name="c")
        g.connect(a, b)
        g.connect(a, c)
        engine = WorkflowEngine(
            retry_policy=RetryPolicy(max_retries=6, clock=FakeClock()),
            allow_partial=True)
        result = engine.run(g)
        summary = controller.summary()
        chaos.uninstall()
        return (summary, sorted(result.durations), result.failed,
                sorted(result.skipped))

    def test_same_seed_byte_identical_outcome(self):
        assert self.run_once(7) == self.run_once(7)

    def test_chaos_faults_hit_every_retry_attempt(self):
        chaos.install("task:a:error=2", seed=0)
        g = TaskGraph()
        a = g.add(FunctionTool("A", lambda: "ok", [], ["out"]),
                  name="a")
        engine = WorkflowEngine(retry_policy=RetryPolicy(
            max_retries=3, clock=FakeClock()))
        result = engine.run(g)
        assert result.output(a) == "ok"
        assert chaos.active().summary() == {"task:a": {"error": 2}}


class TestDegradedRunTelemetry:
    """allow_partial + a doomed task: skipped propagation, metrics, spans."""

    def build(self):
        g = TaskGraph()
        a = g.add(FunctionTool("A", lambda: "x", [], ["out"]), name="a")
        bad = g.add(FunctionTool("Bad", lambda x: x, ["x"], ["out"]),
                    name="bad")
        down = g.add(FunctionTool("Down", lambda x: x, ["x"], ["out"]),
                     name="down")
        g.connect(a, bad)
        g.connect(bad, down)
        return g

    def test_degraded_run_with_spans(self):
        enable_tracing(True)
        chaos.install("task:bad:error=99", seed=3)
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        engine = WorkflowEngine(events=bus, allow_partial=True,
                                retry_policy=RetryPolicy(
                                    max_retries=1, clock=FakeClock()))
        result = engine.run(self.build())
        assert result.degraded
        assert set(result.failed) == {"bad"}
        assert result.skipped == ["down"]
        assert result.output("a") == "x"
        metrics = get_metrics()
        assert metrics.counter("workflow.degraded_runs",
                               graph=result.graph_name).value == 1
        assert metrics.counter("workflow.task.skipped",
                               graph=result.graph_name).value == 1
        statuses = {(e.name, e.status) for e in events}
        assert ("bad", "failed") in statuses
        assert ("down", "skipped") in statuses
        assert (result.graph_name, "degraded") in statuses
        # the run's spans share one trace, and the root records the
        # degradation for the monitor
        spans = get_tracer().collector.spans()
        by_name = {s.name: s for s in spans}
        root = by_name[f"workflow:{result.graph_name}"]
        assert root.attributes.get("degraded") is True
        assert by_name["task:a"].trace_id == root.trace_id
        assert result.trace_id == root.trace_id
