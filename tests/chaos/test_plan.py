"""The chaos spec grammar: parsing, scoping, first-match-wins."""

import pytest

from repro.chaos import (DEFAULT_BLACKHOLE_S, ChaosSpecError,
                         parse_chaos_spec, parse_duration)


class TestDurations:
    def test_milliseconds(self):
        assert parse_duration("50ms") == pytest.approx(0.05)

    def test_bare_number_is_seconds(self):
        assert parse_duration("2") == pytest.approx(2.0)

    def test_seconds_suffix(self):
        assert parse_duration("1.5s") == pytest.approx(1.5)

    def test_fractional_without_leading_zero(self):
        assert parse_duration(".25") == pytest.approx(0.25)

    @pytest.mark.parametrize("bad", ["", "ms", "5m", "1.2.3", "-1s"])
    def test_malformed(self, bad):
        with pytest.raises(ChaosSpecError):
            parse_duration(bad)


class TestSpecParsing:
    def test_unscoped_faults_apply_everywhere(self):
        plan = parse_chaos_spec("drop=0.3,delay=50ms")
        assert len(plan.rules) == 1
        rule = plan.rules[0]
        assert rule.pattern == "*"
        assert rule.drop == pytest.approx(0.3)
        assert rule.delay_s == pytest.approx(0.05)
        assert rule.jitter_s == 0.0
        assert plan.match("task:anything") is rule
        assert plan.match("http://host:1/services/S") is rule

    def test_scoped_plan_before_catch_all(self):
        plan = parse_chaos_spec("task:train:error=2;*:delay=20ms")
        assert [r.pattern for r in plan.rules] == ["task:train", "*"]
        assert plan.match("task:train").error_times == 2
        assert plan.match("task:other").delay_s == pytest.approx(0.02)

    def test_url_pattern_keeps_scheme_colons(self):
        plan = parse_chaos_spec("http://127.0.0.1:*/services/J48:drop=1")
        rule = plan.rules[0]
        assert rule.pattern == "http://127.0.0.1:*/services/J48"
        assert rule.drop == 1.0
        assert plan.match("http://127.0.0.1:8334/services/J48") is rule
        assert plan.match("http://127.0.0.1:8334/services/KMeans") is None

    def test_delay_with_jitter(self):
        rule = parse_chaos_spec("delay=10ms~5ms").rules[0]
        assert rule.delay_s == pytest.approx(0.010)
        assert rule.jitter_s == pytest.approx(0.005)

    def test_blackhole_defaults(self):
        assert parse_chaos_spec("blackhole").rules[0].blackhole_s == \
            DEFAULT_BLACKHOLE_S
        assert parse_chaos_spec("blackhole=100ms").rules[0].blackhole_s \
            == pytest.approx(0.1)

    def test_first_matching_rule_wins(self):
        plan = parse_chaos_spec("task:a:drop=1;task:*:drop=0.5")
        assert plan.match("task:a").drop == 1.0
        assert plan.match("task:b").drop == 0.5

    def test_spec_string_preserved(self):
        spec = "task:x:error=1;*:delay=1ms"
        assert parse_chaos_spec(spec).spec == spec


class TestSpecErrors:
    @pytest.mark.parametrize("bad", [
        "",                # nothing to do
        ";;",              # only empty segments
        "unknown=1",       # no such fault
        "drop=1.5",        # probability out of range
        "drop=x",          # not a number
        "corrupt=-0.1",    # negative probability
        "error=-1",        # negative count
        "error=two",       # not an int
        "delay=5m",        # bad unit
    ])
    def test_rejected(self, bad):
        with pytest.raises(ChaosSpecError):
            parse_chaos_spec(bad)
