"""Deadline propagation: scopes, SOAP header carriage, server honouring."""

import pytest

from repro.clock import FakeClock
from repro.errors import DeadlineExceeded
from repro.ws import (DEADLINE_FAULTCODE, Deadline, InProcessTransport,
                      ServiceContainer, ServiceProxy, SoapRequest,
                      current_deadline, deadline_scope, wsdl)
from repro.ws import soap
from repro.ws.service import operation
from repro.ws.soap import SoapFault, SoapResponse


class Echo:
    @operation
    def shout(self, text: str) -> str:
        return text.upper()


class Nested:
    """Calls another service from inside its own operation."""

    def __init__(self) -> None:
        self.proxy = None  # wired up by the fixture

    @operation
    def relay(self, text: str) -> str:
        return self.proxy.call("shout", text=text)


class TestDeadlineObject:
    def test_remaining_and_expiry_on_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(2.5)
        assert deadline.remaining() == pytest.approx(-0.5)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check("the thing")

    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        with deadline_scope(5.0) as deadline:
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_nested_scope_keeps_the_tighter_budget(self):
        clock = FakeClock()
        with deadline_scope(1.0, clock) as outer:
            with deadline_scope(60.0, clock) as inner:
                assert inner is outer  # child cannot extend the parent
            with deadline_scope(0.5, clock) as tighter:
                assert tighter is not outer
                assert tighter.remaining() < outer.remaining()

    def test_none_scope_is_transparent(self):
        with deadline_scope(3.0) as outer:
            with deadline_scope(None) as inner:
                assert inner is outer


class TestHeaderCarriage:
    def test_round_trip(self):
        wire = soap.encode_request(
            SoapRequest("Echo", "shout", {"text": "x"}, deadline_s=0.25))
        assert b"Deadline" in wire and b"250.000" in wire
        decoded = soap.decode_request(wire)
        assert decoded.deadline_s == pytest.approx(0.25)

    def test_absent_when_unset(self):
        wire = soap.encode_request(SoapRequest("Echo", "shout",
                                               {"text": "x"}))
        assert b"Deadline" not in wire
        assert soap.decode_request(wire).deadline_s is None

    def test_negative_budget_clamped_to_zero_on_the_wire(self):
        wire = soap.encode_request(
            SoapRequest("Echo", "shout", {"text": "x"}, deadline_s=-1.0))
        assert soap.decode_request(wire).deadline_s == 0.0

    def test_malformed_header_is_dropped_not_faulted(self):
        wire = soap.encode_request(
            SoapRequest("Echo", "shout", {"text": "x"}, deadline_s=1.0))
        mangled = wire.replace(b'remainingMs="1000.000"',
                               b'remainingMs="soon"')
        assert mangled != wire
        assert soap.decode_request(mangled).deadline_s is None

    def test_deadline_fault_decodes_as_deadline_exceeded(self):
        fault = SoapFault(DEADLINE_FAULTCODE, "budget spent")
        wire = soap.encode_fault(fault)
        with pytest.raises(DeadlineExceeded, match="budget spent"):
            soap.decode_response(wire)


def echo_stack():
    container = ServiceContainer()
    definition = container.deploy(Echo, "Echo")
    document = wsdl.generate(definition, "inproc://Echo")
    return container, ServiceProxy.from_wsdl_text(
        document, InProcessTransport(container))


class TestEnforcement:
    def test_client_fails_fast_when_budget_spent(self):
        clock = FakeClock()
        _, proxy = echo_stack()
        calls_before = proxy.transport.bytes_sent
        with deadline_scope(1.0, clock):
            clock.advance(2.0)
            with pytest.raises(DeadlineExceeded):
                proxy.shout(text="hi")
        assert proxy.transport.bytes_sent == calls_before  # no wire bytes

    def test_container_rejects_an_expired_request(self):
        container, _ = echo_stack()
        request = SoapRequest("Echo", "shout", {"text": "hi"},
                              deadline_s=0.0)
        with pytest.raises(SoapFault) as exc_info:
            container.invoke(request)
        assert exc_info.value.faultcode == DEADLINE_FAULTCODE

    def test_in_budget_call_succeeds_and_stamps_the_request(self):
        _, proxy = echo_stack()
        with deadline_scope(30.0):
            assert proxy.shout(text="hi") == "HI"
        # the envelope that crossed the wire carried the budget header
        assert proxy.transport.bytes_sent > 0

    def test_budget_propagates_to_nested_calls(self):
        # Nested.relay invokes Echo.shout through its own proxy: an
        # expired budget must fail the *inner* call too, even though the
        # outer dispatch began in time
        container = ServiceContainer()
        clock = FakeClock()
        echo_def = container.deploy(Echo, "Echo")
        nested = Nested()
        nested_def = container.deploy(Nested, "Nested",
                                      factory=lambda: nested)
        nested.proxy = ServiceProxy.from_wsdl_text(
            wsdl.generate(echo_def, "inproc://Echo"),
            InProcessTransport(container))
        proxy = ServiceProxy.from_wsdl_text(
            wsdl.generate(nested_def, "inproc://Nested"),
            InProcessTransport(container))
        with deadline_scope(30.0, clock):
            assert proxy.relay(text="hi") == "HI"
