"""ChaosController: deterministic fault decisions per target."""

import pytest

from repro import chaos
from repro.chaos import ChaosController, ChaosTransport
from repro.clock import FakeClock
from repro.errors import ServiceError, TransportError
from repro.obs import get_metrics
from repro.ws import (InProcessTransport, ServiceContainer, ServiceProxy,
                      wsdl)
from repro.ws.deadline import deadline_scope
from repro.ws.service import operation


class Echo:
    @operation
    def shout(self, text: str) -> str:
        return text.upper()


def echo_proxy(transport_wrap=None):
    """An Echo service proxy over in-process SOAP, optionally wrapped."""
    container = ServiceContainer()
    definition = container.deploy(Echo, "Echo")
    transport = InProcessTransport(container)
    if transport_wrap is not None:
        transport = transport_wrap(transport)
    document = wsdl.generate(definition, "inproc://Echo")
    return ServiceProxy.from_wsdl_text(document, transport)


class TestErrorInjection:
    def test_error_n_is_exact_not_probabilistic(self):
        controller = ChaosController("error=2", seed=1)
        for _ in range(2):
            with pytest.raises(TransportError):
                controller.perturb("task:t")
        # attempts 3..10 all pass: the fault is count-based
        for _ in range(8):
            controller.perturb("task:t")
        assert controller.summary() == {"task:t": {"error": 2}}

    def test_error_counters_are_per_target(self):
        controller = ChaosController("error=1", seed=1)
        for target in ("task:a", "task:b"):
            with pytest.raises(TransportError):
                controller.perturb(target)
        controller.perturb("task:a")  # second attempt passes
        assert controller.summary() == {"task:a": {"error": 1},
                                        "task:b": {"error": 1}}


class TestDeterminism:
    def drive(self, seed):
        controller = ChaosController("drop=0.5,delay=10ms~10ms",
                                     seed=seed, clock=FakeClock())
        for target in ("task:a", "task:b") * 20:
            try:
                controller.perturb(target)
            except TransportError:
                pass
        return controller.injections()

    def test_same_seed_same_injection_history(self):
        assert self.drive(7) == self.drive(7)

    def test_different_seed_differs(self):
        assert self.drive(7) != self.drive(8)

    def test_interleaving_cannot_change_a_targets_stream(self):
        # target streams are independent: B's draws don't consume A's
        solo = ChaosController("drop=0.5", seed=3)
        mixed = ChaosController("drop=0.5", seed=3)
        solo_hist = []
        for _ in range(10):
            try:
                solo.perturb("task:a")
                solo_hist.append("ok")
            except TransportError:
                solo_hist.append("drop")
        mixed_hist = []
        for _ in range(10):
            try:
                mixed.perturb("task:b")
            except TransportError:
                pass
            try:
                mixed.perturb("task:a")
                mixed_hist.append("ok")
            except TransportError:
                mixed_hist.append("drop")
        assert mixed_hist == solo_hist


class TestDelayAndBlackhole:
    def test_delay_sleeps_on_the_controllers_clock(self):
        clock = FakeClock()
        controller = ChaosController("delay=25ms", seed=0, clock=clock)
        controller.perturb("task:t")
        assert clock.sleeps == [pytest.approx(0.025)]
        assert controller.summary() == {"task:t": {"delay": 1}}

    def test_blackhole_consumes_its_timeout_then_fails(self):
        clock = FakeClock()
        controller = ChaosController("blackhole=100ms", seed=0,
                                     clock=clock)
        with pytest.raises(TransportError):
            controller.perturb("task:t")
        assert clock.sleeps == [pytest.approx(0.1)]

    def test_blackhole_bounded_by_remaining_deadline(self):
        clock = FakeClock()
        controller = ChaosController("blackhole=100ms", seed=0,
                                     clock=clock)
        with deadline_scope(0.04, clock):
            with pytest.raises(TransportError):
                controller.perturb("task:t")
        # waited only the 40ms budget, not the full 100ms timeout
        assert clock.sleeps == [pytest.approx(0.04)]

    def test_injections_feed_metrics(self):
        controller = ChaosController("delay=1ms", seed=0,
                                     clock=FakeClock())
        controller.perturb("task:t")
        controller.perturb("task:t")
        value = get_metrics().counter("chaos.injected", kind="delay",
                                      target="task:t").value
        assert value == 2


class TestChaosTransport:
    def test_untargeted_endpoint_passes_through(self):
        controller = ChaosController("task:only:drop=1", seed=0)
        proxy = echo_proxy(lambda t: ChaosTransport(t, controller,
                                                    endpoint="inproc"))
        assert proxy.shout(text="hi") == "HI"
        assert controller.injections() == []

    def test_corrupt_mangles_the_real_envelope(self):
        controller = ChaosController("corrupt=1", seed=0)
        proxy = echo_proxy(lambda t: ChaosTransport(t, controller,
                                                    endpoint="inproc"))
        with pytest.raises(ServiceError):
            proxy.shout(text="hi")
        assert controller.summary() == {"inproc": {"corrupt": 1}}

    def test_error_then_succeed_through_transport(self):
        controller = ChaosController("error=1", seed=0)
        proxy = echo_proxy(lambda t: ChaosTransport(t, controller,
                                                    endpoint="inproc"))
        with pytest.raises(TransportError):
            proxy.shout(text="hi")
        assert proxy.shout(text="hi") == "HI"


class TestGlobalInstall:
    def test_install_active_uninstall(self):
        assert chaos.active() is None
        controller = chaos.install("delay=1ms", seed=4)
        assert chaos.active() is controller
        chaos.uninstall()
        assert chaos.active() is None

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "drop=0.1")
        monkeypatch.setenv(chaos.CHAOS_SEED_ENV_VAR, "9")
        controller = chaos.maybe_install_from_env()
        assert controller is not None
        assert controller.seed == 9
        assert controller.plan.rules[0].drop == pytest.approx(0.1)

    def test_env_does_not_override_explicit_install(self, monkeypatch):
        explicit = chaos.install("delay=1ms", seed=1)
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "drop=1")
        assert chaos.maybe_install_from_env() is explicit
