"""CircuitBreaker: state machine, cooldown, half-open probes, metrics."""

import pytest

from repro.clock import FakeClock
from repro.errors import CircuitOpenError
from repro.obs import get_metrics
from repro.ws.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make_breaker(**kw):
    clock = FakeClock()
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("cooldown_s", 10.0)
    breaker = CircuitBreaker("http://r0/services/S", clock=clock, **kw)
    return breaker, clock


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.ensure_closed()  # no raise

    def test_trips_after_consecutive_failures(self):
        breaker, _ = make_breaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.ensure_closed("probe")

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker(failure_threshold=3)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED  # never 3 *consecutive* failures

    def test_cooldown_moves_open_to_half_open(self):
        breaker, clock = make_breaker(failure_threshold=1, cooldown_s=10)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_limited_probes(self):
        breaker, clock = make_breaker(failure_threshold=1,
                                      half_open_max=1)
        breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # concurrent second call fails fast

    def test_half_open_success_closes(self):
        breaker, clock = make_breaker(failure_threshold=1)
        breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_for_another_cooldown(self):
        breaker, clock = make_breaker(failure_threshold=3)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # one strike in half-open is enough
        assert breaker.state == OPEN
        clock.advance(11)
        assert breaker.state == HALF_OPEN

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestBreakerMetrics:
    def test_transitions_and_state_gauge(self):
        breaker, clock = make_breaker(failure_threshold=1)
        metrics = get_metrics()
        endpoint = breaker.endpoint
        breaker.record_failure()
        assert metrics.counter("ws.breaker.transitions",
                               endpoint=endpoint, to=OPEN).value == 1
        assert metrics.gauge("ws.breaker.state",
                             endpoint=endpoint).value == 2
        clock.advance(11)
        assert breaker.state == HALF_OPEN
        assert metrics.gauge("ws.breaker.state",
                             endpoint=endpoint).value == 1
        breaker.record_success()
        assert metrics.counter("ws.breaker.transitions",
                               endpoint=endpoint, to=CLOSED).value == 1
        assert metrics.gauge("ws.breaker.state",
                             endpoint=endpoint).value == 0

    def test_fast_failures_counted(self):
        breaker, _ = make_breaker(failure_threshold=1)
        breaker.record_failure()
        for _ in range(3):
            assert not breaker.allow()
        assert breaker.fast_failures == 3
        assert get_metrics().counter(
            "ws.breaker.fast_failures",
            endpoint=breaker.endpoint).value == 3
