"""Chaos × batching: a multicall is ONE wire exchange, so it consumes
exactly the dice a single send would.

Fixed-seed drills are regression tests; if batching changed how many
RNG draws a wire exchange makes, every recorded drill outcome would
shift the moment a workflow adopted ``call_many``.  Pinned here with
the PR-2 drill plan (``drop=0.3,delay=50ms``, seed 7): the injection
sequence depends only on the number of wire exchanges, never on batch
sizes — and a corrupted batch is one fault event, not one per sub-call.
"""

import pytest

from repro.chaos import ChaosController, ChaosInterceptor
from repro.errors import ServiceError, TransportError
from repro.ws import wsdl
from repro.ws.client import ServiceProxy
from repro.ws.container import ServiceContainer
from repro.ws.pipeline import chain_insert_after
from repro.ws.service import operation
from repro.ws.transport import InProcessTransport

DRILL_SPEC = "drop=0.3,delay=50ms"  # the PR-2 chaos drill plan
DRILL_SEED = 7


class Echo:
    """Minimal service for chaos dice accounting."""

    @operation
    def shout(self, text: str) -> str:
        """Upper-case *text*."""
        return text.upper()


def _chaotic_proxy(tmp_path, spec: str, seed: int):
    container = ServiceContainer(state_dir=tmp_path)
    definition = container.deploy(Echo, "Echo")
    transport = InProcessTransport(container)
    controller = ChaosController(spec, seed=seed)
    transport.interceptors = chain_insert_after(
        transport.interceptors, "payload",
        ChaosInterceptor(controller, "Echo"))
    proxy = ServiceProxy.from_wsdl_text(
        wsdl.generate(definition, "inproc://Echo"), transport)
    return proxy, controller


class TestOneDiePerWireExchange:
    def test_drill_sequence_is_batch_size_invariant(self, tmp_path):
        """Six wire exchanges inject the same drill faults whether each
        carries one call or a batch of three."""
        def run(batched: bool):
            proxy, controller = _chaotic_proxy(
                tmp_path / ("b" if batched else "s"),
                DRILL_SPEC, DRILL_SEED)
            for exchange in range(6):
                try:
                    if batched:
                        proxy.call_many([
                            ("shout", {"text": f"x{exchange}-{i}"})
                            for i in range(3)])
                    else:
                        proxy.call("shout", text=f"x{exchange}")
                except TransportError:
                    pass  # a dropped exchange; the dice were consumed
            return controller.injections()

        single = run(batched=False)
        batch = run(batched=True)
        assert single == batch
        assert single  # seed 7 does inject within six exchanges

    def test_dropped_batch_is_one_fault_event(self, tmp_path):
        proxy, controller = _chaotic_proxy(tmp_path, "drop=1", 0)
        with pytest.raises(TransportError, match="dropped"):
            proxy.call_many([("shout", {"text": str(i)})
                             for i in range(5)])
        assert controller.injections() == [("Echo", "drop")]

    def test_corrupted_batch_is_one_fault_event(self, tmp_path):
        proxy, controller = _chaotic_proxy(tmp_path, "corrupt=1", 0)
        with pytest.raises(ServiceError):
            proxy.call_many([("shout", {"text": str(i)})
                             for i in range(4)])
        assert controller.injections() == [("Echo", "corrupt")]
