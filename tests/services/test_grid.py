"""Grid-WEKA-style distributed cross-validation tests."""

import pytest

from repro.errors import WorkflowError
from repro.ml import evaluation
from repro.ml.classifiers import J48
from repro.services import ClassifierService
from repro.services.grid import (distributed_cross_validate, remote_build,
                                 remote_label)
from repro.ws import (InProcessTransport, ServiceContainer, ServiceProxy,
                      wsdl)
from repro.ws.service import ServiceDefinition
from repro.ws.transport import FailingTransport


def make_endpoints(n: int, dead: int = 0):
    """In-process Classifier endpoints; the first *dead* have failing
    transports."""
    definition = ServiceDefinition.from_class(ClassifierService,
                                              "Classifier")
    document = wsdl.generate(definition, "inproc://Classifier")
    proxies = []
    for i in range(n):
        container = ServiceContainer()
        container.deploy(ClassifierService, "Classifier")
        transport = InProcessTransport(container)
        if i < dead:
            transport = FailingTransport(transport, failures=10 ** 9)
        proxies.append(ServiceProxy.from_wsdl_text(document, transport))
    return proxies


class TestDistributedCV:
    def test_matches_local_cv_total(self, breast_cancer):
        report = distributed_cross_validate(
            make_endpoints(3), breast_cancer, classifier="J48", k=6,
            seed=1)
        assert report.result.total == 286
        assert report.migrations == 0
        # accuracy close to the locally computed CV (same folds, same
        # algorithm -> identical predictions)
        local = evaluation.cross_validate(lambda: J48(), breast_cancer,
                                          k=6, seed=1)
        assert report.result.accuracy == pytest.approx(local.accuracy)

    def test_work_spread_across_workers(self, breast_cancer):
        report = distributed_cross_validate(
            make_endpoints(3), breast_cancer, classifier="ZeroR", k=9)
        loads = report.worker_loads()
        assert sum(loads.values()) == 9
        assert len(loads) >= 2  # more than one worker did something

    def test_single_endpoint_works(self, breast_cancer):
        report = distributed_cross_validate(
            make_endpoints(1), breast_cancer, classifier="OneR", k=4)
        assert report.result.total == 286

    def test_fold_migration_on_dead_worker(self, breast_cancer):
        report = distributed_cross_validate(
            make_endpoints(3, dead=1), breast_cancer, classifier="ZeroR",
            k=6)
        assert report.result.total == 286
        assert report.migrations >= 1
        assert 0 not in report.worker_loads()  # the dead worker did none

    def test_all_endpoints_dead(self, breast_cancer):
        with pytest.raises(WorkflowError):
            distributed_cross_validate(
                make_endpoints(2, dead=2), breast_cancer, k=4)

    def test_no_endpoints(self, breast_cancer):
        with pytest.raises(WorkflowError):
            distributed_cross_validate([], breast_cancer)

    def test_options_forwarded(self, breast_cancer):
        report = distributed_cross_validate(
            make_endpoints(2), breast_cancer, classifier="J48", k=4,
            options={"min_obj": 20})
        assert report.result.total == 286


class TestGridWekaTasks:
    def test_remote_build(self, breast_cancer):
        [proxy] = make_endpoints(1)
        out = remote_build(proxy, breast_cancer, classifier="J48")
        assert "node-caps" in out["model_text"]

    def test_remote_label(self, breast_cancer):
        [proxy] = make_endpoints(1)
        train, test = breast_cancer.split(0.7, 2)
        labels = remote_label(proxy, train, test, classifier="NaiveBayes")
        assert len(labels) == len(test)
        assert set(labels) <= {"no-recurrence-events",
                               "recurrence-events"}

    def test_over_real_http(self, hosted_toolbox, breast_cancer):
        proxy = ServiceProxy.from_wsdl_url(
            hosted_toolbox.wsdl_url("Classifier"))
        report = distributed_cross_validate([proxy], breast_cancer,
                                            classifier="OneR", k=3)
        assert report.result.total == 286
        proxy.close()
