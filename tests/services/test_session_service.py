"""Session-management service tests (interactive artefact store)."""

import pytest

from repro.data import arff
from repro.ws import ServiceProxy, SoapFault


@pytest.fixture(scope="module")
def session_proxy(hosted_toolbox):
    proxy = ServiceProxy.from_wsdl_url(hosted_toolbox.wsdl_url("Session"))
    yield proxy
    proxy.close()


class TestSessionLifecycle:
    def test_full_interactive_flow(self, session_proxy, breast_cancer):
        sid = session_proxy.createSession()
        train, test = breast_cancer.split(0.7, 3)
        info = session_proxy.putDataset(session=sid, name="train",
                                        dataset=arff.dumps(train))
        assert info["num_instances"] == len(train)
        session_proxy.putDataset(session=sid, name="test",
                                 dataset=arff.dumps(test))

        trained = session_proxy.train(session=sid, model="m1",
                                      classifier="J48", dataset="train",
                                      attribute="Class")
        assert trained["training_accuracy"] > 0.7

        labels = session_proxy.classify(session=sid, model="m1",
                                        dataset="test")
        assert len(labels) == len(test)

        metrics = session_proxy.evaluate(session=sid, model="m1",
                                         dataset="test",
                                         attribute="Class")
        assert 0.5 < metrics["accuracy"] <= 1.0
        assert "Confusion Matrix" in metrics["report"]

        text = session_proxy.modelText(session=sid, model="m1")
        assert "J48" in text

        art = session_proxy.artifacts(session=sid)
        assert art == {"datasets": ["test", "train"], "models": ["m1"]}

        closed = session_proxy.closeSession(session=sid)
        assert closed["models"] == ["m1"]

    def test_unknown_session(self, session_proxy):
        with pytest.raises(SoapFault):
            session_proxy.artifacts(session="nope")

    def test_unknown_artifacts(self, session_proxy, breast_cancer):
        sid = session_proxy.createSession()
        session_proxy.putDataset(session=sid, name="d",
                                 dataset=arff.dumps(breast_cancer))
        with pytest.raises(SoapFault):
            session_proxy.train(session=sid, model="m",
                                classifier="J48", dataset="ghost",
                                attribute="Class")
        with pytest.raises(SoapFault):
            session_proxy.classify(session=sid, model="ghost",
                                   dataset="d")
        session_proxy.closeSession(session=sid)

    def test_closed_session_is_gone(self, session_proxy):
        sid = session_proxy.createSession()
        session_proxy.closeSession(session=sid)
        with pytest.raises(SoapFault):
            session_proxy.closeSession(session=sid)

    def test_sessions_are_isolated(self, session_proxy, weather):
        a = session_proxy.createSession()
        b = session_proxy.createSession()
        session_proxy.putDataset(session=a, name="w",
                                 dataset=arff.dumps(weather))
        assert session_proxy.artifacts(session=b)["datasets"] == []
        session_proxy.closeSession(session=a)
        session_proxy.closeSession(session=b)

    def test_dataset_shipped_once_then_reused(self, session_proxy,
                                              breast_cancer):
        """The point of sessions: N cheap calls after one upload."""
        sid = session_proxy.createSession()
        session_proxy.putDataset(session=sid, name="d",
                                 dataset=arff.dumps(breast_cancer))
        for i, clf in enumerate(("J48", "NaiveBayes", "OneR")):
            out = session_proxy.train(session=sid, model=f"m{i}",
                                      classifier=clf, dataset="d",
                                      attribute="Class")
            assert out["training_accuracy"] > 0.6
        art = session_proxy.artifacts(session=sid)
        assert len(art["models"]) == 3
        session_proxy.closeSession(session=sid)
