"""Scatter-gathered bulk scoring: :func:`repro.services.grid
.scatter_score` and the workflow-layer :class:`BulkScoreTool`."""

import pytest

from repro.data import arff
from repro.errors import WorkflowError
from repro.ml.classifiers import NaiveBayes
from repro.services import ClassifierService
from repro.services.grid import scatter_score
from repro.ws import (InProcessTransport, ServiceContainer, ServiceProxy,
                      wsdl)
from repro.ws.service import ServiceDefinition
from repro.ws.transport import FailingTransport
from repro.workflow import BulkScoreTool, TaskGraph, WorkflowEngine
from repro.workflow.model import FunctionTool


def make_endpoints(n: int, dead: int = 0):
    """In-process Classifier replicas; the first *dead* never answer."""
    definition = ServiceDefinition.from_class(ClassifierService,
                                              "Classifier")
    document = wsdl.generate(definition, "inproc://Classifier")
    proxies = []
    for i in range(n):
        container = ServiceContainer()
        container.deploy(ClassifierService, "Classifier")
        transport = InProcessTransport(container)
        if i < dead:
            transport = FailingTransport(transport, failures=10 ** 9)
        proxies.append(ServiceProxy.from_wsdl_text(document, transport))
    return proxies


class TestScatterScore:
    def test_labels_match_a_local_model(self, breast_cancer):
        train, test = breast_cancer.split(0.7, 2)
        report = scatter_score(make_endpoints(2), train, test,
                               classifier="NaiveBayes", chunk=16)
        local = NaiveBayes().fit(train)
        assert report.labels == [local.predict_label(inst)
                                 for inst in test]
        assert report.rebalances == 0
        loads = report.report.endpoint_loads()
        assert sum(loads.values()) == len(test)

    def test_dead_replica_chunks_migrate(self, breast_cancer):
        train, test = breast_cancer.split(0.7, 2)
        report = scatter_score(make_endpoints(3, dead=1), train, test,
                               classifier="ZeroR", chunk=8)
        assert len(report.labels) == len(test)
        assert None not in report.labels
        assert report.rebalances >= 1
        assert 0 not in report.report.endpoint_loads()

    def test_all_replicas_dead(self, breast_cancer):
        train, test = breast_cancer.split(0.7, 2)
        with pytest.raises(WorkflowError):
            scatter_score(make_endpoints(2, dead=2), train, test,
                          classifier="ZeroR")

    def test_accepts_arff_text(self, weather):
        doc = arff.dumps(weather)
        report = scatter_score(make_endpoints(1), doc, doc,
                               classifier="ZeroR", attribute="play")
        assert len(report.labels) == weather.num_instances

    def test_no_endpoints(self, weather):
        with pytest.raises(WorkflowError):
            scatter_score([], weather, weather)


class TestBulkScoreTool:
    def test_runs_in_a_workflow(self, breast_cancer):
        train, test = breast_cancer.split(0.7, 2)
        tool = BulkScoreTool("BulkScore", make_endpoints(2),
                             classifier="NaiveBayes", chunk=32)
        graph = TaskGraph("bulk")
        src_train = graph.add(FunctionTool(
            "Train", lambda: arff.dumps(train), [], ["arff"]))
        src_test = graph.add(FunctionTool(
            "Test", lambda: arff.dumps(test), [], ["arff"]))
        score = graph.add(tool)
        graph.connect(src_train, score, target_index=0)
        graph.connect(src_test, score, target_index=1)
        result = WorkflowEngine().run(graph)
        labels = result.output(score)
        local = NaiveBayes().fit(train)
        assert labels == [local.predict_label(inst) for inst in test]
        assert tool.last_report is not None
        assert tool.last_report.rebalances == 0

    def test_tool_shape(self):
        tool = BulkScoreTool("BulkScore", make_endpoints(1))
        assert tool.inputs == ["train", "test"]
        assert tool.outputs == ["labels"]
        assert tool.parameters["classifier"] == "J48"
