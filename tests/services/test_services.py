"""Service-layer tests over real HTTP (one hosted toolbox per session)."""

import pytest

from repro.data import arff, csvio, synthetic
from repro.ws import ServiceProxy, SoapFault


@pytest.fixture(scope="module")
def proxies(hosted_toolbox):
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = ServiceProxy.from_wsdl_url(
                hosted_toolbox.wsdl_url(name))
        return cache[name]

    yield get
    for proxy in cache.values():
        proxy.close()


@pytest.fixture(scope="module")
def bc_arff(breast_cancer):
    return arff.dumps(breast_cancer)


class TestClassifierService:
    def test_get_classifiers_families(self, proxies):
        classifiers = proxies("Classifier").getClassifiers()
        names = {c["name"] for c in classifiers}
        assert {"J48", "NaiveBayes", "IB1"} <= names
        families = {c["family"] for c in classifiers}
        assert {"trees", "rules", "bayes", "lazy", "functions",
                "meta"} <= families

    def test_get_options_j48(self, proxies):
        options = proxies("Classifier").getOptions(classifier="J48")
        names = {o["name"] for o in options}
        assert {"confidence", "min_obj", "unpruned"} <= names

    def test_get_options_preset_default(self, proxies):
        options = proxies("Classifier").getOptions(classifier="IB5")
        k = next(o for o in options if o["name"] == "k")
        assert k["default"] == 5

    def test_get_options_unknown(self, proxies):
        with pytest.raises(SoapFault):
            proxies("Classifier").getOptions(classifier="Zorp")

    def test_classify_instance(self, proxies, bc_arff):
        out = proxies("Classifier").classifyInstance(
            classifier="J48", dataset=bc_arff, attribute="Class")
        assert out["num_instances"] == 286
        assert "node-caps" in out["model_text"]
        assert out["training_accuracy"] > 0.7

    def test_classify_with_options(self, proxies, bc_arff):
        out = proxies("Classifier").classifyInstance(
            classifier="J48", dataset=bc_arff, attribute="Class",
            options={"unpruned": True})
        assert "unpruned tree" in out["model_text"]

    def test_classify_bad_attribute(self, proxies, bc_arff):
        with pytest.raises(SoapFault):
            proxies("Classifier").classifyInstance(
                classifier="J48", dataset=bc_arff, attribute="nope")

    def test_cross_validate(self, proxies, bc_arff):
        out = proxies("Classifier").crossValidate(
            classifier="NaiveBayes", dataset=bc_arff, attribute="Class",
            folds=5)
        assert 0.6 < out["accuracy"] < 1.0
        assert len(out["confusion"]) == 2

    def test_predict_labels(self, proxies, breast_cancer):
        train, test = breast_cancer.split(0.7, 4)
        out = proxies("Classifier").predict(
            classifier="J48", train=arff.dumps(train),
            test=arff.dumps(test), attribute="Class")
        assert len(out["labels"]) == len(test)
        assert set(out["labels"]) <= {"no-recurrence-events",
                                      "recurrence-events"}
        assert out["accuracy"] > 0.6

    def test_classify_graph(self, proxies, bc_arff):
        out = proxies("Classifier").classifyGraph(
            classifier="J48", dataset=bc_arff, attribute="Class")
        assert out["graph"]["nodes"][0]["label"] == "node-caps"

    def test_graph_unsupported_classifier(self, proxies, bc_arff):
        with pytest.raises(SoapFault):
            proxies("Classifier").classifyGraph(
                classifier="NaiveBayes", dataset=bc_arff,
                attribute="Class")


class TestStreamingOperations:
    def test_stream_training_roundtrip(self, proxies, breast_cancer,
                                       bc_arff):
        data = proxies("Data")
        clf = proxies("Classifier")
        opened = data.openStream(dataset=bc_arff, chunk_size=64)
        session = clf.beginStream(classifier="NaiveBayesUpdateable",
                                  header=opened["header"],
                                  attribute="Class")
        total = 0
        for i in range(opened["chunks"]):
            chunk = data.readChunk(stream_id=opened["stream"], index=i)
            total += clf.updateStream(session=session, chunk=chunk)
        result = clf.finishStream(session=session)
        data.closeStream(stream_id=opened["stream"])
        assert total == 286
        assert result["instances"] == 286
        assert "Naive Bayes" in result["model_text"]

    def test_streaming_matches_batch(self, proxies, breast_cancer,
                                     bc_arff):
        """Streamed NB must equal batch NB (same sufficient statistics)."""
        from repro.ml.classifiers import NaiveBayes
        batch = NaiveBayes().fit(breast_cancer)
        data = proxies("Data")
        clf = proxies("Classifier")
        opened = data.openStream(dataset=bc_arff, chunk_size=50)
        session = clf.beginStream(classifier="NaiveBayesUpdateable",
                                  header=opened["header"],
                                  attribute="Class")
        for i in range(opened["chunks"]):
            clf.updateStream(session=session, chunk=data.readChunk(
                stream_id=opened["stream"], index=i))
        result = clf.finishStream(session=session)
        data.closeStream(stream_id=opened["stream"])
        assert result["model_text"].split("\n", 2)[-1] == \
            batch.to_text().split("\n", 2)[-1]

    def test_non_incremental_rejected(self, proxies, bc_arff, breast_cancer):
        header = arff.header_of(breast_cancer)
        with pytest.raises(SoapFault):
            proxies("Classifier").beginStream(
                classifier="J48", header=header, attribute="Class")

    def test_unknown_session(self, proxies):
        with pytest.raises(SoapFault):
            proxies("Classifier").updateStream(session="nope", chunk="")


class TestJ48Service:
    def test_classify_text(self, proxies, bc_arff):
        text = proxies("J48").classify(dataset=bc_arff, attribute="Class")
        assert "node-caps" in text and "Number of Leaves" in text

    def test_classify_graph_root(self, proxies, bc_arff):
        out = proxies("J48").classifyGraph(dataset=bc_arff,
                                           attribute="Class")
        assert out["root_attribute"] == "node-caps"

    def test_classify_dot(self, proxies, bc_arff):
        dot = proxies("J48").classifyDot(dataset=bc_arff,
                                         attribute="Class")
        assert dot.startswith("digraph")


class TestClustererServices:
    def test_cobweb_cluster(self, proxies, blobs):
        text = proxies("Cobweb").cluster(dataset=arff.dumps(blobs))
        assert "Cobweb tree" in text

    def test_cobweb_graph(self, proxies, blobs):
        out = proxies("Cobweb").getCobwebGraph(dataset=arff.dumps(blobs))
        assert out["n_clusters"] >= 2
        assert len(out["graph"]["nodes"]) >= 3

    def test_general_clusterer(self, proxies, blobs):
        out = proxies("Clusterer").cluster(
            clusterer="SimpleKMeans", dataset=arff.dumps(blobs),
            options={"k": 3})
        assert out["n_clusters"] == 3
        assert len(out["assignments"]) == len(blobs)

    def test_get_clusterers(self, proxies):
        names = {c["name"] for c in proxies("Clusterer").getClusterers()}
        assert {"SimpleKMeans", "Cobweb", "EM", "DBSCAN"} <= names


class TestAssociationService:
    def test_associate(self, proxies, baskets):
        out = proxies("Association").associate(
            associator="Apriori", dataset=arff.dumps(baskets),
            options={"min_support": 0.1, "min_confidence": 0.7})
        assert out["num_rules"] > 0
        first = out["rules"][0]
        assert first["confidence"] >= 0.7
        assert "==>" in out["rules_text"]

    def test_get_associators(self, proxies):
        names = {a["name"] for a in
                 proxies("Association").getAssociators()}
        assert {"Apriori", "FPGrowth"} <= names


class TestAttributeSelectionService:
    def test_approaches(self, proxies):
        approaches = proxies("AttributeSelection").getApproaches()
        assert len(approaches) >= 20
        assert any("GeneticSearch" in a["name"] for a in approaches)

    def test_genetic_select(self, proxies, bc_arff):
        out = proxies("AttributeSelection").select(
            dataset=bc_arff, attribute="Class",
            approach="GeneticSearch+CfsSubset")
        assert "node-caps" in out["selected"]
        projected = arff.loads(out["dataset"])
        assert projected.num_instances == 286

    def test_rank(self, proxies, bc_arff):
        ranking = proxies("AttributeSelection").rank(
            dataset=bc_arff, attribute="Class")
        assert ranking[0][0] == "node-caps"


class TestDataService:
    def test_convert_and_validate(self, proxies, bc_arff):
        data = proxies("Data")
        csv = data.convert(document=bc_arff, source="arff", target="csv")
        back = data.convert(document=csv, source="csv", target="arff")
        info = data.validate(dataset=back)
        assert info["num_instances"] == 286

    def test_summarise_figure3(self, proxies, bc_arff):
        out = proxies("Data").summarise(dataset=bc_arff)
        assert out["num_instances"] == 286
        assert out["missing_values"] == 9
        assert "Num Instances:  286" in out["text"]

    def test_repository_roundtrip(self, proxies, bc_arff):
        data = proxies("Data")
        url = data.publishDataset(name="bc-test", dataset=bc_arff)
        fetched = data.readURL(url=url)
        assert arff.loads(fetched).num_instances == 286

    def test_read_url_over_http(self, proxies, hosted_toolbox):
        # the services index itself is a fetchable URL
        data = proxies("Data")
        with pytest.raises(SoapFault):
            data.readURL(url="repo:never-published")

    def test_list_conversions(self, proxies):
        pairs = proxies("Data").listConversions()
        assert ["csv", "arff"] in pairs


class TestVisualisationServices:
    def test_plot3d_returns_ppm(self, proxies):
        surf = synthetic.surface3d(n=12)
        img = proxies("Math").plot3D(points=csvio.dumps(surf))
        assert isinstance(img, bytes)
        assert img.startswith(b"P6")

    def test_math_statistics(self, proxies):
        stats = proxies("Math").statistics(points="a,b\n1,2\n3,4\n")
        assert stats["a"]["mean"] == pytest.approx(2.0)

    def test_math_tabulate(self, proxies):
        table = proxies("Math").tabulate(expression="square", lo=0,
                                         hi=2, steps=3)
        assert table == [[0.0, 0.0], [1.0, 1.0], [2.0, 4.0]]

    def test_math_tabulate_unknown(self, proxies):
        with pytest.raises(SoapFault):
            proxies("Math").tabulate(expression="bessel")

    def test_plot_scatter_dumb(self, proxies):
        csv = "x,y\n" + "\n".join(f"{i},{i * i}" for i in range(10))
        out = proxies("Plot").plotScatter(points=csv, title="sq")
        assert "*" in out

    def test_plot_scatter_svg(self, proxies):
        csv = "x,y\n1,1\n2,4\n3,9\n"
        out = proxies("Plot").plotScatter(points=csv, terminal="svg")
        assert out.startswith("<svg")

    def test_plot_histogram(self, proxies):
        out = proxies("Plot").plotHistogram(labels=["a", "b"],
                                            counts=[3, 7])
        assert "#" in out

    def test_tree_visualizer(self, proxies, bc_arff):
        graph = proxies("J48").classifyGraph(
            dataset=bc_arff, attribute="Class")["graph"]
        svg = proxies("TreeVisualizer").plotTree(graph=graph,
                                                 format="svg")
        assert svg.startswith("<svg") and "node-caps" in svg
        text = proxies("TreeVisualizer").plotTree(graph=graph,
                                                  format="text")
        assert "node-caps" in text


class TestRegistryIntegration:
    def test_all_toolbox_services_published(self, proxies, hosted_toolbox):
        entries = proxies("Registry").inquire(pattern="*")
        names = {e["name"] for e in entries}
        assert {"Classifier", "J48", "Cobweb", "Data", "Math",
                "Plot"} <= names

    def test_discover_then_invoke(self, proxies, hosted_toolbox, bc_arff):
        """Full UDDI flow: inquire -> WSDL -> invoke."""
        entry = proxies("Registry").lookup(name="J48")
        proxy = ServiceProxy.from_wsdl_url(entry["wsdl_url"])
        text = proxy.classify(dataset=bc_arff, attribute="Class")
        assert "node-caps" in text
        proxy.close()
