"""Collaborative workspace service + CLI tests."""

import pytest

from repro.data import arff, synthetic
from repro.ws import ServiceProxy, SoapFault


@pytest.fixture(scope="module")
def workspace(hosted_toolbox):
    proxy = ServiceProxy.from_wsdl_url(
        hosted_toolbox.wsdl_url("Workspace"))
    yield proxy
    proxy.close()


def simple_workflow_xml() -> str:
    from repro.workflow import TaskGraph, default_toolbox, xmlio
    box = default_toolbox()
    g = TaskGraph("shared-demo")
    src = g.add(box.get("StringInput"), value="shared hello")
    view = g.add(box.get("StringViewer"))
    g.connect(src, view)
    return xmlio.dumps(g)


class TestWorkspace:
    def test_publish_fetch_run(self, workspace):
        doc = simple_workflow_xml()
        out = workspace.publish(name="demo", document=doc, author="alice",
                                comment="first cut")
        assert out["version"] == 1
        listing = workspace.list()
        assert any(w["name"] == "demo" for w in listing)
        fetched = workspace.fetch(name="demo")
        # the second participant rebinds and enacts the shared workflow
        from repro.workflow import WorkflowEngine, default_toolbox, xmlio
        graph = xmlio.loads(fetched["document"], default_toolbox())
        result = WorkflowEngine().run(graph)
        assert result.output("StringViewer") == "shared hello"

    def test_versioning(self, workspace):
        doc = simple_workflow_xml()
        workspace.publish(name="versioned", document=doc, author="alice")
        out = workspace.publish(name="versioned", document=doc,
                                author="bob", comment="tweak")
        assert out["version"] == 2
        history = workspace.history(name="versioned")
        assert [h["author"] for h in history] == ["alice", "bob"]
        v1 = workspace.fetch(name="versioned", version=1)
        assert v1["author"] == "alice"
        with pytest.raises(SoapFault):
            workspace.fetch(name="versioned", version=9)

    def test_annotations(self, workspace):
        workspace.publish(name="noted", document=simple_workflow_xml(),
                          author="alice")
        n = workspace.annotate(name="noted", author="bob",
                               text="swap J48 for NaiveBayes?")
        assert n == 1
        notes = workspace.annotations(name="noted")
        assert notes[0]["author"] == "bob"

    def test_rejects_garbage_document(self, workspace):
        with pytest.raises(SoapFault):
            workspace.publish(name="bad", document="not xml",
                              author="eve")
        with pytest.raises(SoapFault):
            workspace.publish(name="bad", document="<html/>",
                              author="eve")

    def test_unknown_workflow(self, workspace):
        with pytest.raises(SoapFault):
            workspace.fetch(name="ghost")


class TestCli:
    @pytest.fixture(scope="class")
    def dataset_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "bc.arff"
        path.write_text(arff.dumps(synthetic.breast_cancer()))
        return str(path)

    def run_cli(self, capsys, *argv):
        from repro.cli import main
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_summarise(self, capsys, dataset_file):
        code, out = self.run_cli(capsys, "summarise", dataset_file)
        assert code == 0
        assert "Num Instances:  286" in out

    def test_classify_train(self, capsys, dataset_file):
        code, out = self.run_cli(capsys, "classify", dataset_file,
                                 "--attribute", "Class")
        assert code == 0
        assert "node-caps" in out

    def test_classify_cv(self, capsys, dataset_file):
        code, out = self.run_cli(capsys, "classify", dataset_file,
                                 "--attribute", "Class",
                                 "--classifier", "OneR", "--cv", "3")
        assert code == 0
        assert "Correctly Classified" in out

    def test_cluster(self, capsys, tmp_path):
        path = tmp_path / "blobs.arff"
        path.write_text(arff.dumps(synthetic.gaussians(2, 20, 2)))
        code, out = self.run_cli(capsys, "cluster", str(path), "--k", "2")
        assert code == 0
        assert "Cluster 0" in out

    def test_associate(self, capsys, tmp_path):
        path = tmp_path / "baskets.arff"
        path.write_text(arff.dumps(synthetic.baskets(150)))
        code, out = self.run_cli(capsys, "associate", str(path),
                                 "--min-support", "0.1",
                                 "--min-confidence", "0.6")
        assert code == 0
        assert "==>" in out

    def test_convert_roundtrip(self, capsys, dataset_file, tmp_path):
        csv = tmp_path / "bc.csv"
        back = tmp_path / "bc2.arff"
        assert self.run_cli(capsys, "convert", dataset_file,
                            str(csv))[0] == 0
        assert self.run_cli(capsys, "convert", str(csv),
                            str(back))[0] == 0
        assert arff.loads(back.read_text()).num_instances == 286

    def test_recommend(self, capsys, dataset_file):
        code, out = self.run_cli(capsys, "recommend", dataset_file,
                                 "--attribute", "Class")
        assert code == 0
        assert "Recommendations" in out

    def test_algorithms_listing(self, capsys):
        code, out = self.run_cli(capsys, "algorithms", "--kind",
                                 "clusterer")
        assert code == 0
        assert "Cobweb" in out and "J48" not in out

    def test_run_workflow(self, capsys, tmp_path):
        path = tmp_path / "wf.xml"
        path.write_text(simple_workflow_xml())
        code, out = self.run_cli(capsys, "run", str(path))
        assert code == 0
        assert "shared hello" in out

    def test_error_path(self, capsys):
        from repro.cli import main
        code = main(["summarise", "/nonexistent/file.arff"])
        assert code == 2

    def test_bad_classifier_errors_cleanly(self, capsys, dataset_file):
        from repro.cli import main
        code = main(["classify", dataset_file, "--attribute", "Class",
                     "--classifier", "Zorp"])
        assert code == 2
