"""CLI `serve` command test (short-lived host)."""

from repro.cli import main
from repro.ws.client import fetch_url


def test_cli_serve_hosts_toolbox(capsys):
    # port 0 -> ephemeral; duration short so the test returns quickly
    code = main(["serve", "--port", "0", "--duration", "0.3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "toolkit hosted at http://127.0.0.1:" in out
    assert "Classifier?wsdl" in out


def test_cli_serve_is_reachable_while_up(capsys):
    import threading

    result = {}

    def probe():
        # wait for the banner, then hit the service index
        import time
        for _ in range(50):
            captured = capsys.readouterr()
            result.setdefault("out", "")
            result["out"] += captured.out
            if "toolkit hosted at" in result["out"]:
                base = [line for line in result["out"].splitlines()
                        if "toolkit hosted at" in line][0].split()[-1]
                try:
                    result["index"] = fetch_url(base + "/services")
                    return
                except Exception:
                    pass
            time.sleep(0.05)

    t = threading.Thread(target=probe)
    t.start()
    main(["serve", "--port", "0", "--duration", "1.5"])
    t.join(timeout=5)
    assert "J48" in result.get("index", "")
