"""Remaining service edge paths: graphical clustering, plot validation,
math-service guards and data-service faults."""

import pytest

from repro.data import arff
from repro.ws import ServiceProxy, SoapFault


@pytest.fixture(scope="module")
def get_proxy(hosted_toolbox):
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = ServiceProxy.from_wsdl_url(
                hosted_toolbox.wsdl_url(name))
        return cache[name]

    yield get
    for proxy in cache.values():
        proxy.close()


class TestClustererGraphs:
    def test_cluster_graph_hierarchy(self, get_proxy, blobs):
        out = get_proxy("Clusterer").clusterGraph(
            clusterer="Cobweb", dataset=arff.dumps(blobs))
        assert out["n_clusters"] >= 1
        assert out["graph"]["nodes"]

    def test_cluster_graph_unsupported(self, get_proxy, blobs):
        with pytest.raises(SoapFault):
            get_proxy("Clusterer").clusterGraph(
                clusterer="SimpleKMeans", dataset=arff.dumps(blobs))

    def test_clusterer_options_endpoint(self, get_proxy):
        options = get_proxy("Clusterer").getOptions(
            clusterer="SimpleKMeans-k3")
        k = next(o for o in options if o["name"] == "k")
        assert k["default"] == 3


class TestPlotServiceEdges:
    def test_unknown_terminal(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Plot").plotScatter(points="x,y\n1,2\n",
                                          terminal="postscript")

    def test_non_numeric_csv_rejected(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Plot").plotScatter(points="a,b\nx,y\n")

    def test_empty_series(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Plot").plotSeries(values=[])

    def test_histogram_length_mismatch(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Plot").plotHistogram(labels=["a"], counts=[1, 2])

    def test_tree_visualizer_unknown_format(self, get_proxy):
        graph = {"nodes": [{"id": 0, "label": "x", "leaf": True}],
                 "edges": []}
        with pytest.raises(SoapFault):
            get_proxy("TreeVisualizer").plotTree(graph=graph,
                                                 format="jpeg")


class TestMathServiceEdges:
    def test_plot3d_needs_three_columns(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Math").plot3D(points="x,y\n1,2\n3,4\n")

    def test_plot3d_all_missing_rows(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Math").plot3D(points="x,y,z\n?,?,?\n")

    def test_statistics_ignores_nominal_columns(self, get_proxy):
        stats = get_proxy("Math").statistics(
            points="x,label\n1,a\n2,b\n")
        assert "x" in stats and "label" not in stats

    def test_tabulate_step_validation(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Math").tabulate(expression="sin", steps=1)


class TestDataServiceEdges:
    def test_invalid_arff_fails_publish(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Data").publishDataset(name="bad",
                                             dataset="not arff")

    def test_chunk_out_of_range(self, get_proxy, weather):
        data = get_proxy("Data")
        opened = data.openStream(dataset=arff.dumps(weather),
                                 chunk_size=5)
        with pytest.raises(SoapFault):
            data.readChunk(stream_id=opened["stream"], index=99)
        data.closeStream(stream_id=opened["stream"])

    def test_close_unknown_stream(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Data").closeStream(stream_id="never-opened")

    def test_validate_bad_document(self, get_proxy):
        with pytest.raises(SoapFault):
            get_proxy("Data").validate(dataset="@relation only-header")
