#!/usr/bin/env python
"""Layering lint: the byte movers must stay free of cross-cutting imports.

The handler-chain refactor moved every cross-cutting concern (tracing,
metrics, circuit breaking, chaos injection) out of the transports and
into :mod:`repro.ws.pipeline` chain steps.  This script keeps it that
way: it parses the named modules with :mod:`ast` and fails if any of
them imports a forbidden layer — at module level, inside a function, or
via ``from x import y``.

Run from the repo root (CI does)::

    python tools/layering_lint.py

Exit status 0 = clean, 1 = violations (listed on stderr).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: module path → import prefixes it must not touch.  The movers
#: (`transport`, `httpd`) may not observe, break circuits, or inject
#: chaos — those concerns live in chain steps only; the client keeps a
#: narrow obs exception for its WSDL-fetch cache counters.
RULES: dict[str, tuple[str, ...]] = {
    "src/repro/ws/transport.py": ("repro.obs", "repro.ws.breaker",
                                  "repro.chaos", "repro.ws.scatter",
                                  "repro.ws.admission", "repro.ws.mesh"),
    "src/repro/ws/httpd.py": ("repro.ws.breaker", "repro.chaos",
                              "repro.ws.scatter", "repro.ws.admission",
                              "repro.ws.mesh"),
    "src/repro/ws/client.py": ("repro.ws.breaker", "repro.chaos"),
    # the shared-memory segment store is a pure same-host byte pool:
    # it maps and verifies segments, nothing else.  Counters for its
    # hits/misses are emitted by the payload layer above it, and it
    # may never dial a transport or reach into the mesh.
    "src/repro/ws/shm.py": ("repro.obs", "repro.chaos",
                            "repro.ws.breaker", "repro.ws.mesh",
                            "repro.ws.transport",
                            "repro.ws.admission"),
    "src/repro/ws/container.py": ("repro.ws.breaker", "repro.chaos"),
    # scatter-gather is batching *policy*: it may meter itself via obs
    # but never injects faults (chaos lives in the transport chains)
    "src/repro/ws/scatter.py": ("repro.chaos",),
    # admission is pure traffic policy: buckets, queue, tickets.  It
    # decides, it never moves bytes — no transports, no servers, no
    # clients, no chaos.  That keeps it attachable to every serving
    # plane (threaded httpd, asyncio aserve, in-process) unchanged.
    "src/repro/ws/admission.py": ("repro.ws.transport",
                                  "repro.ws.httpd", "repro.ws.aserve",
                                  "repro.ws.client", "repro.chaos"),
    # the async front door sheds *before* decoding and below any
    # client-side resilience: breakers and chaos stay out of it
    "src/repro/ws/aserve.py": ("repro.chaos", "repro.ws.breaker"),
    # the binary codec is a pure data-plane leaf: bytes in, typed
    # column blocks out.  It may not observe, inject faults, break
    # circuits, shed load — or talk to the wire at all.
    "src/repro/data/codec.py": ("repro.obs", "repro.chaos",
                                "repro.ws.breaker",
                                "repro.ws.admission", "repro.ws"),
    "src/repro/data/dataio.py": ("repro.obs", "repro.chaos",
                                 "repro.ws.breaker",
                                 "repro.ws.admission", "repro.ws"),
    # the mesh is routing/fleet *control* plane: it weighs replicas,
    # forks workers, fronts the fleet.  Faults are injected by the
    # chaos chain steps inside each worker, never by the mesh itself,
    # and model mathematics never leaks up into routing decisions.
    "src/repro/ws/mesh/ring.py": ("repro.chaos", "repro.ml"),
    "src/repro/ws/mesh/profile.py": ("repro.chaos", "repro.ml"),
    "src/repro/ws/mesh/endpoints.py": ("repro.chaos", "repro.ml"),
    "src/repro/ws/mesh/router.py": ("repro.chaos", "repro.ml"),
    "src/repro/ws/mesh/worker.py": ("repro.chaos", "repro.ml"),
    "src/repro/ws/mesh/supervisor.py": ("repro.chaos", "repro.ml"),
    "src/repro/ws/mesh/gateway.py": ("repro.chaos", "repro.ml"),
    "src/repro/ws/mesh/host.py": ("repro.chaos", "repro.ml"),
    # the vectorised model kernels score matrices; shipping those
    # matrices is the services/ws layers' business, never theirs
    "src/repro/ml/base.py": ("repro.ws", "repro.services"),
    "src/repro/ml/evaluation.py": ("repro.ws",),
    "src/repro/ml/classifiers/j48.py": ("repro.ws", "repro.services"),
    "src/repro/ml/classifiers/ibk.py": ("repro.ws", "repro.services"),
    "src/repro/ml/clusterers/kmeans.py": ("repro.ws", "repro.services"),
}


def imported_names(tree: ast.AST):
    """Yield ``(lineno, module_name)`` for every import in *tree*."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.level == 0:
                yield node.lineno, node.module


def check(path: str, forbidden: tuple[str, ...]) -> list[str]:
    """Violation messages for one module."""
    source = (REPO / path).read_text(encoding="utf-8")
    tree = ast.parse(source, filename=path)
    problems = []
    for lineno, name in imported_names(tree):
        for banned in forbidden:
            if name == banned or name.startswith(banned + "."):
                problems.append(
                    f"{path}:{lineno}: imports {name!r} "
                    f"(layer {banned!r} is forbidden here)")
    return problems


def main() -> int:
    failures: list[str] = []
    for path, forbidden in sorted(RULES.items()):
        if not (REPO / path).exists():
            failures.append(f"{path}: module missing (lint rules stale?)")
            continue
        failures.extend(check(path, forbidden))
    if failures:
        print("layering violations:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    count = len(RULES)
    print(f"layering lint: {count} modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
