"""Algorithm-advice scenario (§3: "support in algorithm choice based on
the characteristics of the problem" + "make use of previous experience"):
characterise a dataset, get ranked recommendations with reasons, run the
top suggestions through the Classifier service, and record the outcomes so
the next user's recommendations improve.

Run:  python examples/algorithm_advisor.py
"""

from repro.data import arff, synthetic
from repro.services import serve_toolbox
from repro.ws import ServiceProxy


def main() -> None:
    dataset = synthetic.breast_cancer()
    payload = arff.dumps(dataset)
    with serve_toolbox() as host:
        advisor = ServiceProxy.from_wsdl_url(host.wsdl_url("Advisor"))
        classifier = ServiceProxy.from_wsdl_url(
            host.wsdl_url("Classifier"))

        print(advisor.adviseText(dataset=payload, attribute="Class"))

        print("\n=== trying the top 3 recommendations ===")
        recommendations = advisor.recommend(dataset=payload,
                                            attribute="Class", top=3)
        for rec in recommendations:
            out = classifier.crossValidate(
                classifier=rec["algorithm"], dataset=payload,
                attribute="Class", folds=5)
            print(f"  {rec['algorithm']:<24} 5-fold accuracy "
                  f"{out['accuracy']:.3f}")
            advisor.recordExperience(dataset=payload, attribute="Class",
                                     algorithm=rec["algorithm"],
                                     score=out["accuracy"])

        print("\n=== recommendations after recording experience ===")
        for rec in advisor.recommend(dataset=payload, attribute="Class",
                                     top=3):
            experience = [r for r in rec["reasons"]
                          if "past experience" in r]
            marker = f"  [{experience[0]}]" if experience else ""
            print(f"  {rec['algorithm']:<24} score {rec['score']}"
                  f"{marker}")
        advisor.close()
        classifier.close()


if __name__ == "__main__":
    main()
