"""Grid-WEKA-style distributed cross-validation (§2 related work): fan the
folds of a 10-fold CV across several Classifier-service hosts, survive a
dead host by migrating its folds, and compare wall time against one host.

Run:  python examples/grid_cross_validation.py
"""

import time

from repro.data import synthetic
from repro.services import ClassifierService
from repro.services.grid import distributed_cross_validate
from repro.ws import (InProcessTransport, NetworkModel, ServiceContainer,
                      ServiceProxy, SimulatedTransport, wsdl)
from repro.ws.service import ServiceDefinition
from repro.ws.transport import FailingTransport

LINK = NetworkModel(latency_s=0.030, bandwidth_bps=50e6 / 8)


def make_endpoints(n, dead=0):
    definition = ServiceDefinition.from_class(ClassifierService,
                                              "Classifier")
    document = wsdl.generate(definition, "inproc://Classifier")
    proxies = []
    for i in range(n):
        container = ServiceContainer()
        container.deploy(ClassifierService, "Classifier")
        transport = SimulatedTransport(InProcessTransport(container),
                                       LINK, real_sleep=True)
        if i < dead:
            transport = FailingTransport(transport, failures=10 ** 9)
        proxies.append(ServiceProxy.from_wsdl_text(document, transport))
    return proxies


def main() -> None:
    dataset = synthetic.breast_cancer()
    print("=== distributed 10-fold cross-validation (J48) ===")
    for n in (1, 4):
        t0 = time.perf_counter()
        report = distributed_cross_validate(
            make_endpoints(n), dataset, classifier="J48", k=10)
        elapsed = time.perf_counter() - t0
        print(f"  {n} endpoint(s): accuracy "
              f"{report.result.accuracy:.3f}, wall {elapsed:.2f}s, "
              f"folds per worker {report.worker_loads()}")

    print("\n=== one of four endpoints is dead ===")
    report = distributed_cross_validate(
        make_endpoints(4, dead=1), dataset, classifier="J48", k=10)
    print(f"  completed with {report.migrations} fold migration(s); "
          f"accuracy {report.result.accuracy:.3f}")
    print(f"  folds per worker: {report.worker_loads()} "
          "(worker 0 is the dead one)")
    print()
    print(report.result.summary())


if __name__ == "__main__":
    main()
