"""Distributed clustering scenario: the Cobweb Web Service (the paper's
second service family) applied to sensor-style numeric data, with the
cluster visualiser, plus fault-tolerant migration across two hosts.

Run:  python examples/distributed_clustering.py
"""

from repro.data import arff, synthetic
from repro.services import CobwebService, serve_toolbox
from repro.viz import clusterviz
from repro.ws import (ServiceContainer, ServiceProxy, SoapHttpServer)
from repro.workflow import ReplicatedServiceTool


def clustering_over_soap() -> None:
    print("=" * 64)
    print("1. Cobweb + k-means via the clustering Web Services")
    print("=" * 64)
    readings = synthetic.gaussians(n_clusters=3, n_per_cluster=60,
                                  n_features=2, spread=0.5, seed=21)
    payload = arff.dumps(readings)
    with serve_toolbox() as host:
        cobweb = ServiceProxy.from_wsdl_url(host.wsdl_url("Cobweb"))
        graph = cobweb.getCobwebGraph(dataset=payload)
        print(f"Cobweb found {graph['n_clusters']} leaf concepts; "
              f"concept tree has {len(graph['graph']['nodes'])} nodes")

        clusterer = ServiceProxy.from_wsdl_url(
            host.wsdl_url("Clusterer"))
        out = clusterer.cluster(clusterer="SimpleKMeans",
                                dataset=payload, options={"k": 3})
        print(out["model_text"])
        print(clusterviz.cluster_scatter_ascii(
            readings, out["assignments"], width=56, height=16))
        cobweb.close()
        clusterer.close()


def migration_across_hosts() -> None:
    print()
    print("=" * 64)
    print("2. Job migration: first clustering host dies mid-campaign")
    print("=" * 64)
    readings = arff.dumps(synthetic.gaussians(3, 40, 2, seed=5))
    servers, proxies = [], []
    for i in range(2):
        container = ServiceContainer()
        container.deploy(CobwebService, "Cobweb")
        server = SoapHttpServer(container).start()
        servers.append(server)
        proxies.append(ServiceProxy.from_wsdl_url(
            server.wsdl_url("Cobweb")))
        print(f"replica {i} at {server.base_url}")
    servers[0].stop()
    print("replica 0 host stopped (simulated resource failure)")
    tool = ReplicatedServiceTool("Cobweb.cluster", proxies, "cluster",
                                 ["dataset"])
    [text] = tool.run([readings], {})
    print(f"job migrated {len(tool.migrations)} time(s); "
          "clustering completed:")
    print("\n".join(text.splitlines()[:4]))
    servers[1].stop()
    for proxy in proxies:
        proxy.close()


if __name__ == "__main__":
    clustering_over_soap()
    migration_across_hosts()
