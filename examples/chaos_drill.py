"""Chaos drill: seeded fault injection against the resilience machinery.

Four drills, all deterministic (fixed chaos seeds, no real network):

1. a flaky transport erroring twice, ridden out by the retry policy;
2. a blackholed replica tripping its circuit breaker, with the call
   migrating to a healthy replica — and the *next* call skipping the
   dead replica without paying the timeout again;
3. a spent deadline failing fast instead of hanging;
4. a whole workflow run as a chaos drill via the globally armed
   controller (the programmatic form of
   ``repro run --chaos 'drop=0.3,delay=50ms' --seed 7 <workflow.xml>``).

Run:  python examples/chaos_drill.py
"""

from repro import chaos
from repro.chaos import ChaosController, ChaosTransport
from repro.data import arff, synthetic
from repro.errors import DeadlineExceeded
from repro.obs import get_metrics
from repro.services import J48Service
from repro.workflow import (EventBus, ReplicatedServiceTool, RetryPolicy,
                            TaskGraph, WorkflowEngine)
from repro.workflow.model import FunctionTool
from repro.ws import (InProcessTransport, ServiceContainer, ServiceProxy,
                      deadline_scope, wsdl)
from repro.ws.breaker import CircuitBreaker

DATASET = arff.dumps(synthetic.breast_cancer())


def j48_proxy(endpoint: str, controller=None, breaker=None):
    """A J48 service on an in-process container, optionally chaos-wrapped."""
    container = ServiceContainer()
    definition = container.deploy(J48Service, "J48")
    transport = InProcessTransport(container)
    if controller is not None:
        transport = ChaosTransport(transport, controller,
                                   endpoint=endpoint)
    return ServiceProxy.from_wsdl_text(
        wsdl.generate(definition, endpoint), transport, breaker=breaker)


def banner(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def drill_flaky_transport() -> None:
    banner("1. error=2 on the wire; RetryPolicy rides it out")
    controller = ChaosController("error=2", seed=11)
    bus = EventBus()
    bus.subscribe(lambda e: e.status == "retried" and
                  print(f"   retry event: {e.detail}"))
    proxy = j48_proxy("inproc://j48", controller)
    tool = FunctionTool(
        "Classify",
        lambda: proxy.call("classify", dataset=DATASET,
                           attribute="Class"),
        [], ["out"])
    g = TaskGraph("flaky-drill")
    task = g.add(tool)
    engine = WorkflowEngine(retry_policy=RetryPolicy(max_retries=3,
                                                     events=bus))
    result = engine.run(g)
    tree = result.output(task)
    print(f"   injected: {controller.summary()}")
    print(f"   classified anyway; tree root: "
          f"{tree.strip().splitlines()[0]}")


def drill_breaker_migration() -> None:
    banner("2. blackholed replica -> breaker trips -> job migrates")
    controller = ChaosController("inproc://j48-a:blackhole=50ms", seed=5)
    breakers = [CircuitBreaker(f"inproc://j48-{x}", failure_threshold=1,
                               cooldown_s=60.0) for x in "ab"]
    tool = ReplicatedServiceTool(
        "classify",
        [j48_proxy("inproc://j48-a", controller),
         j48_proxy("inproc://j48-b", controller)],
        "classify", ["dataset", "attribute"], breakers=breakers)
    for attempt in (1, 2):
        out = tool.run([DATASET, "Class"], {})[0]
        print(f"   call {attempt}: got a "
              f"{len(out.strip().splitlines())}-line model; replica-a "
              f"breaker is {breakers[0].state}")
    for replica, why in tool.migrations:
        print(f"   migration off replica {replica}: {why[:60]}")
    print("   (call 2 skipped the dead replica without paying the "
          "blackhole timeout)")


def drill_deadline() -> None:
    banner("3. a spent budget fails fast with DeadlineExceeded")
    proxy = j48_proxy("inproc://j48")
    with deadline_scope(30.0):
        out = proxy.call("classify", dataset=DATASET, attribute="Class")
        print(f"   30s budget: fine "
          f"({len(out.strip().splitlines())}-line model)")
    try:
        with deadline_scope(1e-6):
            proxy.call("classify", dataset=DATASET, attribute="Class")
    except DeadlineExceeded as exc:
        print(f"   1µs budget: {exc}")


def drill_whole_workflow() -> None:
    banner("4. any workflow as a seeded drill (repro run --chaos ...)")
    controller = chaos.install("task:*:drop=0.25,delay=2ms", seed=7)
    g = TaskGraph("csv-summary-drill")
    csv_task = g.add(FunctionTool(
        "MakeCsv", lambda: "a,b\n1,x\n2,y\n", [], ["out"]), name="csv")
    to_arff = g.add(FunctionTool(
        "ToArff", lambda text: text.upper(), ["csv"], ["out"]),
        name="to_arff")
    g.connect(csv_task, to_arff)
    engine = WorkflowEngine(
        retry_policy=RetryPolicy(max_retries=5),
        allow_partial=True)
    result = engine.run(g)
    print(f"   injected: {controller.summary()}")
    print(f"   degraded: {'yes' if result.degraded else 'no'} "
          f"({len(result.durations)} ok, {len(result.failed)} failed, "
          f"{len(result.skipped)} skipped)")
    chaos.uninstall()


def show_resilience_metrics() -> None:
    banner("What the metrics registry saw")
    snapshot = get_metrics().snapshot()
    for series, value in sorted(snapshot["counters"].items()):
        if series.split("{")[0] in ("chaos.injected",
                                    "workflow.retries",
                                    "workflow.migrations",
                                    "ws.breaker.transitions",
                                    "ws.breaker.fast_failures"):
            print(f"   {series} = {value:g}")


if __name__ == "__main__":
    drill_flaky_transport()
    drill_breaker_migration()
    drill_deadline()
    drill_whole_workflow()
    show_resilience_metrics()
