"""Bulk scoring over the batched invocation plane: train J48 once, then
label a large test set by scattering chunked ``classifyBatch`` calls
across two replica Classifier containers (Grid WEKA's "labelling of
test data using a previously built classifier").  A third run kills one
replica mid-workload to show chunk migration, and the script closes by
printing the ``ws.batch.*`` metrics the plane files.

Run:  python examples/bulk_scoring.py
"""

import time

from repro.obs import get_metrics
from repro.data import synthetic
from repro.services import ClassifierService
from repro.services.grid import scatter_score
from repro.ws import (InProcessTransport, NetworkModel, ServiceContainer,
                      ServiceProxy, SimulatedTransport, wsdl)
from repro.ws.service import ServiceDefinition
from repro.ws.transport import FailingTransport

LINK = NetworkModel(latency_s=0.005, bandwidth_bps=100e6 / 8)


def make_replicas(n, dead=0):
    """*n* Classifier replicas behind a simulated LAN link."""
    definition = ServiceDefinition.from_class(ClassifierService,
                                              "Classifier")
    document = wsdl.generate(definition, "inproc://Classifier")
    proxies = []
    for i in range(n):
        container = ServiceContainer()
        container.deploy(ClassifierService, "Classifier")
        transport = SimulatedTransport(InProcessTransport(container),
                                       LINK, real_sleep=True)
        if i < dead:
            transport = FailingTransport(transport, failures=10 ** 9)
        proxies.append(ServiceProxy.from_wsdl_text(document, transport))
    return proxies


def main() -> None:
    train = synthetic.numeric_two_class(n=300, seed=1)
    test = synthetic.numeric_two_class(n=1200, seed=2)
    print(f"train {train.num_instances} rows, "
          f"score {test.num_instances} rows with J48\n")

    print("=== scatter-gather across two replicas ===")
    t0 = time.perf_counter()
    report = scatter_score(make_replicas(2), train, test,
                           classifier="J48", chunk=64)
    elapsed = time.perf_counter() - t0
    loads = report.report.endpoint_loads()
    print(f"  {len(report.labels)} labels in {elapsed:.2f}s; "
          f"rows per replica: {loads}")
    print(f"  chunk dispatches: {len(report.report.dispatches)}, "
          f"migrations: {report.rebalances}")

    print("\n=== one of three replicas is dead ===")
    report = scatter_score(make_replicas(3, dead=1), train, test,
                           classifier="J48", chunk=64)
    print(f"  completed with {report.rebalances} chunk migration(s); "
          f"rows per replica: {report.report.endpoint_loads()} "
          "(replica 0 is the dead one)")

    print("\n=== ws.batch.* metrics ===")
    snapshot = get_metrics().snapshot()
    for name, value in sorted(snapshot["counters"].items()):
        if "ws.batch" in name or "ws.scatter" in name:
            print(f"  {name} = {value:g}")
    for name, summary in sorted(snapshot["histograms"].items()):
        if "ws.batch" in name:
            print(f"  {name}: n={summary['count']}, "
                  f"mean batch size {summary['mean']:.1f}")


if __name__ == "__main__":
    main()
