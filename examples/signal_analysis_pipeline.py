"""Triana-heritage scenario (§2): the signal-processing toolbox (FFT,
spectral analysis) composed with the Mathematica-substitute plot3D service —
an astrophysics-style pipeline: generate a noisy signal, find its dominant
frequency, sweep a parameter, and render the resulting surface.

Run:  python examples/signal_analysis_pipeline.py
Writes spectrum_surface.ppm next to this script.
"""

from pathlib import Path


from repro.data import csvio, synthetic
from repro.services import serve_toolbox
from repro.workflow import TaskGraph, WorkflowEngine, default_toolbox
from repro.ws import ServiceProxy

OUT_DIR = Path(__file__).parent


def spectral_workflow() -> float:
    """Generate → window → power spectrum inside the workflow engine."""
    box = default_toolbox()
    g = TaskGraph("spectral")
    gen = g.add(box.get("SineGenerator"), samples=512, frequency=20.0,
                rate=256.0, noise=0.3, seed=3)
    win = g.add(box.get("Window"), kind="hann")
    spec = g.add(box.get("PowerSpectrum"), rate=256.0)
    g.connect(gen, win)
    g.connect(win, spec)
    result = WorkflowEngine().run(g)
    out = result.output(spec)
    print(f"dominant frequency: {out['dominant_frequency']:.2f} Hz "
          "(true: 20 Hz, recovered from noisy samples)")
    return out["dominant_frequency"]


def surface_via_math_service() -> None:
    """Render the sinc sombrero through the plot3D operation."""
    surface = synthetic.surface3d(n=30)
    with serve_toolbox() as host:
        math_ws = ServiceProxy.from_wsdl_url(host.wsdl_url("Math"))
        image = math_ws.plot3D(points=csvio.dumps(surface),
                               width=480, height=360)
        out = OUT_DIR / "spectrum_surface.ppm"
        out.write_bytes(image)
        print(f"plot3D image written to {out.name} "
              f"({len(image)} bytes, binary PPM)")
        stats = math_ws.statistics(points=csvio.dumps(surface))
        print(f"surface z range: [{stats['z']['min']:.3f}, "
              f"{stats['z']['max']:.3f}]")
        math_ws.close()


if __name__ == "__main__":
    freq = spectral_workflow()
    assert abs(freq - 20.0) < 1.0
    surface_via_math_service()
