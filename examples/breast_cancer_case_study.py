"""The paper's §5 case study, end to end: four Web Services composed in a
workflow — (1) read the dataset from a URL, (2) classify with C4.5,
(3) analyse the decision-tree output, (4) visualise it — plus the §4.4
selector-tool flow and the genetic attribute-selection follow-up the case
study mentions.

Run:  python examples/breast_cancer_case_study.py
Writes figure4.svg and figure4.txt next to this script.
"""

from pathlib import Path

from repro.data import arff, summary, synthetic
from repro.services import serve_toolbox
from repro.workflow import (TaskGraph, ToolBox, WorkflowEngine,
                            import_wsdl_url)
from repro.workflow.model import FunctionTool
from repro.ws import ServiceProxy

OUT_DIR = Path(__file__).parent


def main() -> None:
    dataset = synthetic.breast_cancer()
    print("=== Figure 3: dataset statistics ===")
    print(summary.summary_text(dataset))

    with serve_toolbox() as host:
        # stage 0: publish the dataset so it is reachable by URL
        data_proxy = ServiceProxy.from_wsdl_url(host.wsdl_url("Data"))
        url = data_proxy.publishDataset(name="uci-breast-cancer",
                                        dataset=arff.dumps(dataset))
        print(f"\ndataset published as {url}")

        # stages 1-4: the four-service composition of §5.3
        box = ToolBox()
        data_tools = {t.name: t for t in import_wsdl_url(
            host.wsdl_url("Data"), box)}
        j48_tools = {t.name: t for t in import_wsdl_url(
            host.wsdl_url("J48"), box)}
        viz_tools = {t.name: t for t in import_wsdl_url(
            host.wsdl_url("TreeVisualizer"), box)}

        graph = TaskGraph("case-study")
        read = graph.add(data_tools["Data.readURL"], url=url)
        classify = graph.add(j48_tools["J48.classifyGraph"],
                             attribute="Class")
        analyse = graph.add(FunctionTool(
            "ExtractGraph", lambda result: result["graph"],
            ["result"], ["graph"]))
        plot = graph.add(viz_tools["TreeVisualizer.plotTree"],
                         format="svg", title="Figure 4: C4.5 tree")
        graph.connect(read, classify, target_index=0)
        graph.connect(classify, analyse)
        graph.connect(analyse, plot, target_index=0)

        result = WorkflowEngine().run(graph)
        svg = result.output(plot)
        (OUT_DIR / "figure4.svg").write_text(svg)
        print(f"\n=== Figure 4 written to figure4.svg "
              f"({len(svg)} bytes) ===")
        root = result.output(classify)["root_attribute"]
        print(f"root attribute of the tree: {root} "
              "(paper: node-caps)")

        # textual version via the dedicated J48 service
        j48_proxy = ServiceProxy.from_wsdl_url(host.wsdl_url("J48"))
        text = j48_proxy.classify(dataset=arff.dumps(dataset),
                                  attribute="Class")
        (OUT_DIR / "figure4.txt").write_text(text)
        print("\n=== textual tree (figure4.txt) ===")
        print(text)

        # §5.3 follow-up: "The attribute selection process can also be
        # automated through the use of a genetic search service"
        sel_proxy = ServiceProxy.from_wsdl_url(
            host.wsdl_url("AttributeSelection"))
        selected = sel_proxy.select(dataset=arff.dumps(dataset),
                                    attribute="Class",
                                    approach="GeneticSearch+CfsSubset")
        print("=== genetic attribute selection ===")
        print(f"selected attributes: {selected['selected']}")

        for proxy in (data_proxy, j48_proxy, sel_proxy):
            proxy.close()


if __name__ == "__main__":
    main()
