"""Quickstart: train and inspect a C4.5 tree, then do the same thing
through the general Classifier Web Service over real HTTP.

Run:  python examples/quickstart.py
"""

from repro.data import arff, synthetic
from repro.ml import evaluation
from repro.ml.classifiers import J48
from repro.services import serve_toolbox
from repro.ws import ServiceProxy


def local_library() -> None:
    print("=" * 64)
    print("1. Local library: J48 on the breast-cancer dataset")
    print("=" * 64)
    dataset = synthetic.breast_cancer()
    model = J48()
    model.fit(dataset)
    print(model.to_text())
    result = evaluation.cross_validate(lambda: J48(), dataset, k=10)
    print(result.summary())


def via_web_service() -> None:
    print()
    print("=" * 64)
    print("2. The same thing through the Classifier Web Service")
    print("=" * 64)
    dataset_arff = arff.dumps(synthetic.breast_cancer())
    with serve_toolbox() as host:
        print(f"toolkit hosted at {host.server.base_url}")
        proxy = ServiceProxy.from_wsdl_url(host.wsdl_url("Classifier"))
        classifiers = proxy.getClassifiers()
        print(f"getClassifiers -> {len(classifiers)} algorithms, e.g. "
              + ", ".join(c["name"] for c in classifiers[:6]) + ", ...")
        options = proxy.getOptions(classifier="J48")
        print(f"getOptions('J48') -> "
              + ", ".join(f"{o['name']}={o['default']}" for o in options))
        out = proxy.classifyInstance(classifier="J48",
                                     dataset=dataset_arff,
                                     attribute="Class")
        print(f"classifyInstance -> training accuracy "
              f"{out['training_accuracy']:.3f}")
        print(out["model_text"])
        proxy.close()


if __name__ == "__main__":
    local_library()
    via_web_service()
