"""Observability demo: one trace across a service-backed workflow.

Hosts the toolbox over HTTP, imports the J48 service's WSDL into the
workspace, enacts a two-task workflow (summarise + classify, both remote
SOAP calls), then prints the span-tree timeline and the metrics table.
The client-side ``soap:`` spans and the server-side ``http:``/``dispatch:``
spans share one trace id — the end-to-end §3 monitoring picture.

Run:  python examples/traced_pipeline.py

The run writes ``.faehim-trace.json``; inspect it afterwards with
``repro trace`` and ``repro metrics --json``.
"""

from repro import obs
from repro.data import arff, synthetic
from repro.services import serve_toolbox
from repro.workflow import (TaskGraph, WorkflowEngine, import_wsdl_url)
from repro.workflow.model import FunctionTool


def main() -> None:
    obs.enable_tracing()
    dataset_arff = arff.dumps(synthetic.breast_cancer())
    with serve_toolbox() as host:
        print(f"toolkit hosted at {host.server.base_url}")
        j48_tools = import_wsdl_url(host.wsdl_url("J48"))
        data_tools = import_wsdl_url(host.wsdl_url("Data"))
        classify = next(t for t in j48_tools
                        if t.name.endswith(".classify"))
        summarise = next(t for t in data_tools
                         if t.name.endswith(".summarise"))

        g = TaskGraph("traced-pipeline")
        src = g.add(FunctionTool("Dataset", lambda: dataset_arff,
                                 [], ["arff"]))
        stats = g.add(summarise, name="summarise")
        tree = g.add(classify, name="classify")
        g.connect(src, stats, target_index=0)
        g.connect(src, tree, target_index=0)
        tree.parameters["attribute"] = "Class"

        result = WorkflowEngine().run(g)
        print(f"\nworkflow trace id: {result.trace_id}")
        print(f"summary head: {str(result.output(stats))[:72]!r}")

    print("\n=== span tree " + "=" * 50)
    print(obs.render_span_tree(obs.get_tracer().collector.spans()))
    print("\n=== metrics " + "=" * 52)
    print(obs.render_metrics())
    path = obs.write_snapshot(".faehim-trace.json")
    print(f"\nsnapshot written to {path} — try: repro trace, "
          f"repro metrics --json")


if __name__ == "__main__":
    main()
