"""Columnar data plane demo: binary frames + zero-copy views + kernels.

Walks the three layers of the columnar plane on a 3,000-row numeric
dataset:

1. **wire** — the same dataset as ARFF text and as a binary columnar
   frame (``repro.data.codec``), with the frame's preamble and header
   decoded by hand to show there is no magic;
2. **memory** — ``to_matrix()`` and fold slicing are views, not copies,
   proven with ``np.shares_memory``;
3. **compute** — scalar per-row J48 descent vs the vectorised
   ``distribution_many`` kernel over the same block, timed, with the
   answers asserted identical.

Run:  python examples/columnar_plane.py
"""

import json
import struct
import time

import numpy as np

from repro.data import arff, codec, dataio, synthetic
from repro.ml.classifiers import J48

N_ROWS, N_FEATURES = 3000, 8


def show_wire(ds) -> None:
    text = arff.dumps(ds)
    frame = codec.encode(ds)
    print(f"{'ARFF text':>18}  {len(text.encode('utf-8')):>9,} bytes")
    print(f"{'columnar frame':>18}  {len(frame):>9,} bytes  "
          f"({len(text.encode('utf-8')) / len(frame):.2f}x smaller)\n")

    magic, version, flags, header_len = struct.unpack_from("<4sBBI", frame)
    header = json.loads(frame[10:10 + header_len])
    print(f"frame preamble: magic={magic!r} version={version} "
          f"flags={flags:#04x} header={header_len} bytes")
    col = header["columns"][0]
    print(f"first column:   {col['name']!r} kind={col['kind']} "
          f"dtype={col['dtype']}")
    print(f"row count:      {header['n_rows']:,}\n")

    # every parse entry point sniffs the magic, so both encodings land
    # on the same Dataset
    assert dataio.parse_dataset(frame).num_instances == \
        dataio.parse_dataset(text).num_instances


def show_views(ds) -> None:
    matrix = ds.to_matrix()
    print(f"to_matrix() zero-copy:      "
          f"{np.shares_memory(matrix, ds._store._values)}")
    fold = ds.view(slice(1000, 2000))
    print(f"contiguous fold is a view:  "
          f"{np.shares_memory(fold.to_matrix(), matrix)}")
    gather = ds.view([7, 2900, 41])
    print(f"gather view tracks base:    "
          f"{gather.to_matrix()[0, 0] == matrix[7, 0]}\n")


def show_kernels(ds) -> None:
    clf = J48().fit(ds)

    start = time.perf_counter()
    scalar = np.vstack([clf.distribution(inst) for inst in ds])
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batch = clf.distribution_many(ds)
    batch_s = time.perf_counter() - start

    assert np.allclose(scalar, batch)
    print(f"{'scalar J48 descent':>22}  {scalar_s * 1000:>8.1f} ms")
    print(f"{'vectorised descent':>22}  {batch_s * 1000:>8.2f} ms  "
          f"({scalar_s / batch_s:.1f}x faster, same answers)")


def main() -> None:
    ds = synthetic.numeric_two_class(N_ROWS, N_FEATURES, seed=7)
    print(f"dataset: {ds.num_instances:,} rows x "
          f"{ds.num_attributes} attributes\n")
    show_wire(ds)
    show_views(ds)
    show_kernels(ds)


if __name__ == "__main__":
    main()
