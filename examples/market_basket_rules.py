"""Association-rule mining scenario (the third service family): market
baskets mined over SOAP with Apriori, cross-checked against FP-Growth, and
plotted with the GNUPlot-substitute service.

Run:  python examples/market_basket_rules.py
"""

from repro.data import arff, synthetic
from repro.services import serve_toolbox
from repro.ws import ServiceProxy


def main() -> None:
    baskets = synthetic.baskets(n=500, seed=11)
    payload = arff.dumps(baskets)
    with serve_toolbox() as host:
        assoc = ServiceProxy.from_wsdl_url(host.wsdl_url("Association"))
        print("available associators:",
              [a["name"] for a in assoc.getAssociators()])
        results = {}
        for miner in ("Apriori", "FPGrowth"):
            out = assoc.associate(
                associator=miner, dataset=payload,
                options={"min_support": 0.08, "min_confidence": 0.7,
                         "max_rules": 10})
            results[miner] = out
            print(f"\n=== {miner}: {out['num_itemsets']} frequent "
                  f"itemsets, top rules ===")
            for line in out["rules_text"].splitlines()[3:10]:
                print(line)
        a_first = results["Apriori"]["rules"][0]
        f_first = results["FPGrowth"]["rules"][0]
        assert a_first == f_first, "both miners agree on the top rule"
        print("\nboth engines agree on the top rule ✓")

        # plot the rule-confidence profile via the plotting service
        plot = ServiceProxy.from_wsdl_url(host.wsdl_url("Plot"))
        confidences = [r["confidence"]
                       for r in results["Apriori"]["rules"]]
        print("\n=== rule confidences (GNUPlot-substitute) ===")
        print(plot.plotSeries(values=confidences,
                              title="top-10 rule confidence"))
        assoc.close()
        plot.close()


if __name__ == "__main__":
    main()
