"""Data-plane fast path demo: by-reference payloads + wire compression.

Ships the same breast-cancer ARFF document to three services over a
simulated 10 Mb/s WAN, twice: once with the fast path disabled (every
call carries the full document, as the 2005 stack did) and once enabled
(the document travels inline once, then as a 64-hex
``<repro:PayloadRef>``; large envelopes are gzip-billed).  Prints the
bytes-on-wire, the modelled transfer time, and the ``ws.payload.*`` /
``ws.cache.*`` counters behind the numbers.

Run:  python examples/payload_fastpath.py
"""

from repro import obs
from repro.data import arff, cache, synthetic
from repro.services import deploy_toolbox
from repro.ws import (InProcessTransport, SimulatedTransport, SoapRequest,
                      WAN, payload)

CALLS = (("Data", "validate", "dataset"),
         ("Data", "summarise", "dataset"),
         ("Data", "validate", "dataset"))


def run_workload(document: str) -> SimulatedTransport:
    """Three SOAP calls, all carrying the same document."""
    transport = SimulatedTransport(
        InProcessTransport(deploy_toolbox()), WAN)
    for service, op, key in CALLS:
        transport.send(SoapRequest(service, op, {key: document}))
    return transport


def set_fastpath(on: bool) -> None:
    payload.set_enabled(on)
    cache.set_enabled(on)
    payload.reset_payload_store()
    cache.reset_parse_cache()


def main() -> None:
    document = arff.dumps(synthetic.breast_cancer())
    print(f"dataset: {len(document)} bytes of ARFF, "
          f"sent in {len(CALLS)} service calls\n")

    set_fastpath(False)
    slow = run_workload(document)
    set_fastpath(True)
    fast = run_workload(document)

    print(f"{'':>24}  {'bytes on wire':>14}  {'modelled time':>14}")
    print(f"{'fast path off':>24}  {slow.bytes_on_wire:>14,}  "
          f"{slow.virtual_seconds:>13.3f}s")
    print(f"{'fast path on':>24}  {fast.bytes_on_wire:>14,}  "
          f"{fast.virtual_seconds:>13.3f}s")
    print(f"{'reduction':>24}  "
          f"{slow.bytes_on_wire / fast.bytes_on_wire:>13.1f}x  "
          f"{slow.virtual_seconds / fast.virtual_seconds:>13.1f}x\n")

    print("the counters behind it:")
    counters = obs.get_metrics().snapshot()["counters"]
    for name, value in sorted(counters.items()):
        if name.startswith(("ws.payload.", "ws.compress.", "ws.cache.")):
            print(f"  {name:<50} {value:>12,.0f}")


if __name__ == "__main__":
    main()
