"""Remote data streaming scenario (§1: "data sets may be ... streamed from a
remote location provided the algorithm being used has support for
streaming"): a data host streams chunks to a classifier host that trains an
incremental naive Bayes, and the result matches batch training exactly.

Run:  python examples/streaming_classification.py
"""

from repro.data import arff, synthetic
from repro.ml.classifiers import NaiveBayes
from repro.services import serve_toolbox
from repro.ws import ServiceProxy


def main() -> None:
    dataset = synthetic.breast_cancer()
    payload = arff.dumps(dataset)
    with serve_toolbox() as host:
        data = ServiceProxy.from_wsdl_url(host.wsdl_url("Data"))
        clf = ServiceProxy.from_wsdl_url(host.wsdl_url("Classifier"))

        opened = data.openStream(dataset=payload, chunk_size=48)
        print(f"data host exposes stream {opened['stream']} "
              f"({opened['chunks']} chunks of <=48 rows)")

        session = clf.beginStream(classifier="NaiveBayesUpdateable",
                                  header=opened["header"],
                                  attribute="Class")
        print(f"classifier host opened training session {session}")
        for index in range(opened["chunks"]):
            chunk = data.readChunk(stream_id=opened["stream"],
                                   index=index)
            absorbed = clf.updateStream(session=session, chunk=chunk)
            print(f"  chunk {index}: {absorbed} instances absorbed")
        finished = clf.finishStream(session=session)
        data.closeStream(stream_id=opened["stream"])
        print(f"streamed training complete: "
              f"{finished['instances']} instances")

        batch = NaiveBayes().fit(dataset)
        streamed_body = finished["model_text"].split("\n", 2)[-1]
        batch_body = batch.to_text().split("\n", 2)[-1]
        assert streamed_body == batch_body
        print("streamed model identical to batch model ✓")
        print()
        print("\n".join(finished["model_text"].splitlines()[:14]))
        data.close()
        clf.close()


if __name__ == "__main__":
    main()
