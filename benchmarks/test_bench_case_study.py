"""CASE-5 — the §5 case study end-to-end: four composed Web Services
(URL reader → C4.5 classifier → output analyser → visualiser) over HTTP."""

from repro.data import arff
from repro.workflow import TaskGraph, ToolBox, WorkflowEngine, \
    import_wsdl_url
from repro.workflow.model import FunctionTool
from repro.ws import ServiceProxy


def test_bench_case_study_pipeline(benchmark, hosted_toolbox,
                                   breast_cancer):
    data_proxy = ServiceProxy.from_wsdl_url(
        hosted_toolbox.wsdl_url("Data"))
    url = data_proxy.publishDataset(name="bench-breast-cancer",
                                    dataset=arff.dumps(breast_cancer))

    box = ToolBox()
    data_tools = {t.name: t for t in import_wsdl_url(
        hosted_toolbox.wsdl_url("Data"), box)}
    j48_tools = {t.name: t for t in import_wsdl_url(
        hosted_toolbox.wsdl_url("J48"), box)}
    viz_tools = {t.name: t for t in import_wsdl_url(
        hosted_toolbox.wsdl_url("TreeVisualizer"), box)}

    g = TaskGraph("case-study")
    read = g.add(data_tools["Data.readURL"], url=url)
    classify = g.add(j48_tools["J48.classifyGraph"], attribute="Class")
    analyse = g.add(FunctionTool(
        "ExtractGraph", lambda result: result["graph"], ["result"],
        ["graph"]))
    plot = g.add(viz_tools["TreeVisualizer.plotTree"], format="svg",
                 title="Figure 4")
    g.connect(read, classify, target_index=0)
    g.connect(classify, analyse)
    g.connect(analyse, plot, target_index=0)

    engine = WorkflowEngine()
    result = benchmark(engine.run, g)

    svg = result.output(plot)
    assert svg.startswith("<svg") and "node-caps" in svg
    per_task = {name: f"{sec * 1000:.1f} ms"
                for name, sec in sorted(result.durations.items())}
    print("\n=== CASE-5: four-service composition ===")
    print(f"services invoked : Data.readURL -> J48.classifyGraph -> "
          f"ExtractGraph -> TreeVisualizer.plotTree")
    print(f"per-task timings : {per_task}")
    print(f"SVG artefact     : {len(svg)} bytes")
    benchmark.extra_info["svg_bytes"] = len(svg)
    data_proxy.close()
