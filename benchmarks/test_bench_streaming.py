"""ABL-STREAM — data-movement ablation: migrate the whole dataset in one
message vs stream it in chunks, across dataset sizes and network models.

§1: "Data streaming is particularly important when large volumes of data
cannot be easily migrated to a remote location."  The measurable trade-off:
streaming pays per-chunk latency but bounds the receiver's working set and
starts producing results immediately; migration pays a single latency but
ships one monolithic payload.  The series below prints virtual transfer
times for both strategies on the simulated LAN and WAN."""


from repro.data import arff, stream, synthetic
from repro.ws.transport import LAN, WAN, NetworkModel


def _sizes():
    return [250, 1000, 4000]


def _dataset(n):
    return synthetic.numeric_two_class(n=n, seed=1)


def _migrate_time(model: NetworkModel, payload_bytes: int) -> float:
    return model.transfer_time(payload_bytes)


def _stream_time(model: NetworkModel, header_bytes: int,
                 chunk_bytes: list[int]) -> float:
    total = model.transfer_time(header_bytes)
    for nbytes in chunk_bytes:
        total += model.transfer_time(nbytes)
    return total


def test_bench_streaming_vs_migration(benchmark):
    def sweep():
        rows = []
        for n in _sizes():
            ds = _dataset(n)
            payload = arff.dumps(ds).encode()
            for chunk_size in (25, 100, 400):
                header, chunks = stream.replay(ds, chunk_size=chunk_size)
                chunk_bytes = [len(c.encode()) for c in chunks]
                for name, model in (("LAN", LAN), ("WAN", WAN)):
                    rows.append({
                        "n": n,
                        "chunk_size": chunk_size,
                        "net": name,
                        "migrate_ms": _migrate_time(model, len(payload))
                        * 1000,
                        "stream_ms": _stream_time(
                            model, len(header.encode()), chunk_bytes)
                        * 1000,
                        "chunks": len(chunks),
                    })
        return rows

    rows = benchmark(sweep)

    print("\n=== ABL-STREAM: migrate vs stream (virtual transfer time) ===")
    print(f"{'n':>6} {'chunk':>6} {'net':<4} {'migrate':>12} "
          f"{'stream':>12} {'chunks':>7} {'overhead':>9}")
    for row in rows:
        ratio = row["stream_ms"] / row["migrate_ms"]
        print(f"{row['n']:>6} {row['chunk_size']:>6} {row['net']:<4} "
              f"{row['migrate_ms']:>10.2f}ms {row['stream_ms']:>10.2f}ms "
              f"{row['chunks']:>7} {ratio:>8.2f}x")
    # migration is always cheaper in raw transfer time (fewer latencies);
    # streaming's win is bounded memory + incremental processing, which the
    # integration tests demonstrate functionally.
    for row in rows:
        assert row["stream_ms"] >= row["migrate_ms"]
    # the streaming overhead is pure per-chunk latency: growing the chunk
    # size must shrink the stream/migrate ratio towards 1
    for n in _sizes():
        for net in ("LAN", "WAN"):
            ratios = [r["stream_ms"] / r["migrate_ms"] for r in rows
                      if r["n"] == n and r["net"] == net]
            assert ratios == sorted(ratios, reverse=True)
    wan_large = [r for r in rows
                 if r["net"] == "WAN" and r["chunk_size"] == 400]
    benchmark.extra_info["wan_overhead_chunk400"] = round(
        wan_large[-1]["stream_ms"] / wan_large[-1]["migrate_ms"], 2)


def test_bench_streaming_incremental_learning(benchmark, breast_cancer):
    """Wall-time of training NaiveBayesUpdateable over a chunked stream."""
    from repro.ml.classifiers import NaiveBayesUpdateable

    header, chunks = stream.replay(breast_cancer, chunk_size=50)

    def train_streamed():
        reader = stream.ChunkedStreamReader(header)
        clf = NaiveBayesUpdateable()
        head = reader.header.copy_header()
        head.set_class("Class")
        clf.begin(head)
        seen = 0
        for chunk in chunks:
            reader.feed(chunk)
            ds = reader.dataset()
            for inst in ds.instances[seen:]:
                clf.update(inst)
            seen = len(ds)
        return clf, seen

    clf, seen = benchmark(train_streamed)
    assert seen == 286
    benchmark.extra_info["instances"] = seen
