"""ABL-REMOTE — invocation-path ablation: the same J48 classification
through (a) a direct library call, (b) SOAP in-process, (c) SOAP over real
localhost HTTP, (d) SOAP over a simulated 1 Gb/s LAN (the paper's §5.1
testbed model) and a simulated 10 Mb/s WAN.

The paper's context: remote execution is the point of the toolkit, and §4.5
shows invocation overheads matter for interactive use."""

import pytest

from repro.ml.classifiers import J48
from repro.services import J48Service
from repro.ws import (InProcessTransport, LAN, ServiceContainer,
                      SimulatedTransport, SoapRequest, WAN)


@pytest.fixture(scope="module")
def local_container():
    c = ServiceContainer()
    c.deploy(J48Service, "J48")
    return c


def test_bench_remote_direct_library(benchmark, breast_cancer):
    def run():
        return J48().fit(breast_cancer)

    model = benchmark(run)
    assert model.root_attribute == "node-caps"
    benchmark.extra_info["path"] = "direct"


def test_bench_remote_soap_inprocess(benchmark, local_container,
                                     breast_cancer_arff):
    transport = InProcessTransport(local_container)
    request = SoapRequest("J48", "classify",
                          {"dataset": breast_cancer_arff,
                           "attribute": "Class"})

    response = benchmark(transport.send, request)
    assert "node-caps" in response.result
    benchmark.extra_info["path"] = "soap-inprocess"


def test_bench_remote_soap_http(benchmark, hosted_toolbox,
                                breast_cancer_arff):
    from repro.ws import HttpTransport
    transport = HttpTransport(hosted_toolbox.endpoint("J48"))
    request = SoapRequest("J48", "classify",
                          {"dataset": breast_cancer_arff,
                           "attribute": "Class"})

    response = benchmark(transport.send, request)
    assert "node-caps" in response.result
    transport.close()
    benchmark.extra_info["path"] = "soap-http-localhost"


@pytest.mark.parametrize("model_name,model", [("LAN-1Gbps", LAN),
                                              ("WAN-10Mbps", WAN)])
def test_bench_remote_simulated_network(benchmark, local_container,
                                        breast_cancer_arff, model_name,
                                        model):
    request = SoapRequest("J48", "classify",
                          {"dataset": breast_cancer_arff,
                           "attribute": "Class"})

    def run():
        transport = SimulatedTransport(
            InProcessTransport(local_container), model, real_sleep=True)
        response = transport.send(request)
        return transport, response

    transport, response = benchmark(run)
    assert "node-caps" in response.result
    print(f"\n[{model_name}] simulated transfer cost: "
          f"{transport.virtual_seconds * 1000:.2f} ms over "
          f"{transport.bytes_on_wire} wire bytes")
    benchmark.extra_info["path"] = model_name
    benchmark.extra_info["wire_bytes"] = transport.bytes_on_wire
