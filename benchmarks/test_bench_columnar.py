"""PERF-COLUMNAR — the columnar zero-copy data plane, measured.

A/B of the two wire + scoring shapes on a realistically sized numeric
dataset:

* **old plane** — ARFF text on the wire, row-objects materialised on
  parse, one scalar tree descent per instance;
* **new plane** — binary columnar frame on the wire, typed column
  blocks on decode, one vectorised descent over the whole matrix.

The plain CI gates assert the headline claims: the columnar plane must
cut end-to-end parse+score time by at least 5x and wire bytes by at
least 2x.  (Wire bytes only win once real data amortises the frame
header — tiny toy relations are header-dominated, which is why this
bench uses thousands of rows.)

Run: PYTHONPATH=src python -m pytest benchmarks/test_bench_columnar.py
     --benchmark-json=BENCH_columnar.json
"""

import time

import numpy as np
import pytest

from repro.data import arff, codec, synthetic
from repro.ml.classifiers import J48

N_ROWS = 3000
N_FEATURES = 8


@pytest.fixture(scope="module")
def plane():
    """Dataset, both wire encodings, and a fitted model shared by all
    benchmarks in this module."""
    ds = synthetic.numeric_two_class(N_ROWS, N_FEATURES, seed=7)
    return {
        "dataset": ds,
        "arff": arff.dumps(ds),
        "frame": codec.encode(ds),
        "model": J48().fit(ds),
    }


def old_plane(document: str, model: J48) -> np.ndarray:
    """ARFF text -> row objects -> scalar per-instance descent."""
    ds = arff.loads(document)
    return np.vstack([model.distribution(inst) for inst in ds])


def new_plane(frame: bytes, model: J48) -> np.ndarray:
    """Columnar frame -> typed blocks -> one vectorised descent."""
    ds = codec.decode(frame)
    return model.distribution_many(ds)


def _seconds(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def test_columnar_gate(plane):
    """CI gate: >= 5x end-to-end and >= 2x wire bytes, same answers."""
    arff_bytes = len(plane["arff"].encode("utf-8"))
    frame_bytes = len(plane["frame"])
    assert arff_bytes >= 2 * frame_bytes, (
        f"columnar frame saved too few wire bytes: "
        f"{arff_bytes} ARFF vs {frame_bytes} columnar")

    old = _seconds(old_plane, plane["arff"], plane["model"])
    new = _seconds(new_plane, plane["frame"], plane["model"])
    assert old >= 5 * new, (
        f"columnar plane saved too little end-to-end time: "
        f"{old:.4f}s old vs {new:.4f}s new ({old / new:.1f}x)")

    assert np.allclose(old_plane(plane["arff"], plane["model"]),
                       new_plane(plane["frame"], plane["model"]))


def test_bench_old_plane(benchmark, plane):
    out = benchmark.pedantic(
        old_plane, args=(plane["arff"], plane["model"]),
        rounds=1, iterations=1)
    assert out.shape[0] == N_ROWS
    benchmark.extra_info["path"] = "arff+scalar"
    benchmark.extra_info["wire_bytes"] = len(plane["arff"].encode("utf-8"))


def test_bench_new_plane(benchmark, plane):
    out = benchmark.pedantic(
        new_plane, args=(plane["frame"], plane["model"]),
        rounds=3, iterations=1)
    assert out.shape[0] == N_ROWS
    benchmark.extra_info["path"] = "columnar+vectorised"
    benchmark.extra_info["wire_bytes"] = len(plane["frame"])


def test_bench_codec_decode(benchmark, plane):
    """Decode alone: the mmap-friendly frame against the ARFF parser."""
    ds = benchmark.pedantic(
        codec.decode, args=(plane["frame"],), rounds=5, iterations=1)
    assert ds.num_instances == N_ROWS
    benchmark.extra_info["path"] = "decode-only"
