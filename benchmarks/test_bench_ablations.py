"""Design-choice ablations flagged in DESIGN.md §5:

* J48 options (pruning confidence, min_obj) — model size vs CV accuracy;
* algorithm shoot-out on the case-study dataset — "who wins" among the
  service catalogue's main families (a series the paper's toolbox makes
  one-call easy);
* Apriori vs FPGrowth mining wall time (same itemsets, different engines).
"""

import pytest

from repro.data import synthetic
from repro.ml import catalogue, evaluation
from repro.ml.associations import Apriori, FPGrowth
from repro.ml.classifiers import J48


def test_bench_ablation_j48_pruning(benchmark, breast_cancer):
    from repro.ml.classifiers import REPTree

    def sweep():
        rows = []
        for label, factory in (
                ("unpruned", lambda: J48(unpruned=True)),
                ("cf=0.50", lambda: J48(confidence=0.50)),
                ("cf=0.25 (default)", lambda: J48()),
                ("cf=0.10", lambda: J48(confidence=0.10)),
                ("min_obj=10", lambda: J48(min_obj=10)),
                ("REPTree (hold-out)", lambda: REPTree()),
        ):
            model = factory().fit(breast_cancer)
            cv = evaluation.cross_validate(factory, breast_cancer, k=5)
            rows.append((label, model.root.size(),
                         model.root.num_leaves(), cv.accuracy))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== ablation: tree pruning strategies ===")
    print(f"{'setting':<20}{'size':>6}{'leaves':>8}{'5-fold acc':>12}")
    for label, size, leaves, acc in rows:
        print(f"{label:<20}{size:>6}{leaves:>8}{acc:>12.3f}")
    sizes = {label: size for label, size, _, _ in rows}
    assert sizes["unpruned"] >= sizes["cf=0.25 (default)"] \
        >= sizes["cf=0.10"]
    accs = {label: acc for label, _, _, acc in rows}
    # both pruning styles beat the unpruned tree out of sample here
    assert accs["cf=0.25 (default)"] >= accs["unpruned"]


FAMILY_CHAMPIONS = ["J48", "NaiveBayes", "IB3", "Logistic", "OneR",
                    "RandomForest", "ZeroR"]


def test_bench_ablation_classifier_shootout(benchmark, breast_cancer):
    def shootout():
        scores = {}
        for name in FAMILY_CHAMPIONS:
            result = evaluation.cross_validate(
                lambda n=name: catalogue.create(n), breast_cancer, k=5)
            scores[name] = result.accuracy
        return scores

    scores = benchmark.pedantic(shootout, rounds=1, iterations=1)
    print("\n=== ablation: classifier shoot-out (breast-cancer, 5-fold) ===")
    for name, acc in sorted(scores.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<16} {acc:.3f}")
    # the planted structure rewards trees/bayes over the trivial baseline
    assert scores["J48"] > scores["ZeroR"]
    assert scores["NaiveBayes"] > scores["ZeroR"]
    assert max(scores.values()) == max(scores["J48"],
                                       scores["RandomForest"],
                                       scores["NaiveBayes"],
                                       scores["Logistic"],
                                       scores["IB3"],
                                       scores["OneR"])
    benchmark.extra_info["scores"] = {k: round(v, 4)
                                      for k, v in scores.items()}


@pytest.mark.parametrize("miner_name,miner_cls", [("Apriori", Apriori),
                                                  ("FPGrowth", FPGrowth)])
def test_bench_ablation_miner_engines(benchmark, miner_name, miner_cls):
    baskets = synthetic.baskets(n=600, seed=8)

    def mine():
        return miner_cls(min_support=0.05, min_confidence=0.6,
                         max_size=4).fit(baskets)

    learner = benchmark(mine)
    assert len(learner.itemsets) > 10
    benchmark.extra_info["miner"] = miner_name
    benchmark.extra_info["itemsets"] = len(learner.itemsets)
