"""Benchmark fixtures: canonical datasets and a hosted toolbox."""

import pytest

from repro.data import arff, synthetic


@pytest.fixture(scope="session")
def breast_cancer():
    return synthetic.breast_cancer()


@pytest.fixture(scope="session")
def breast_cancer_arff(breast_cancer):
    return arff.dumps(breast_cancer)


@pytest.fixture(scope="session")
def hosted_toolbox():
    from repro.services import serve_toolbox
    host = serve_toolbox()
    yield host
    host.stop()
