"""FIG-2 — the toolbox component inventory of Figure 2.

Figure 2 shows the architecture: the Triana engine surrounded by the
data-management library, visualisation tools, WEKA-derived algorithms and
third-party services.  The executable equivalent enumerates every component:
toolbox folders + tools, deployed services, registry entries and the
algorithm catalogue.
"""

from repro.ml import catalogue
from repro.services import TOOLBOX
from repro.workflow import default_toolbox


def test_bench_fig2_toolbox_inventory(benchmark, hosted_toolbox):
    def build():
        return default_toolbox()

    box = benchmark(build)

    folders = box.tree()
    assert {"Common", "Data", "Processing", "Visualization",
            "SignalProc"} <= set(folders)
    assert len(box) >= 15

    services = hosted_toolbox.container.services()
    assert set(TOOLBOX) <= set(services)
    entries = hosted_toolbox.registry.inquire("*")
    assert len(entries) == len(TOOLBOX) + 1  # + the registry itself

    inventory = catalogue.summary()
    print("\n=== FIG-2: toolbox component inventory ===")
    print(box.render_tree())
    print(f"\nDeployed services ({len(services)}): "
          + ", ".join(services))
    print(f"Registry entries: {len(entries)}")
    print("Algorithm catalogue: "
          f"{inventory['catalogue_entries']} entries "
          f"({inventory['classifier_entries']} classifiers, "
          f"{inventory['clusterer_entries']} clusterers, "
          f"{inventory['associator_entries']} associators); "
          f"{inventory['selection_approaches']} attribute-selection "
          "approaches")
    benchmark.extra_info.update(inventory)
