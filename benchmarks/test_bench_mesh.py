"""PERF-MESH — adaptive routing vs the static baseline, measured.

The skewed-replica scenario from the issue: a 3-worker mesh where one
worker delays every dispatch by a fixed ``SLOW_MS`` (a cold or distant
site — the worker degrades *itself*, no chaos harness involved).  The
same call stream is driven through the gateway twice:

* **static** — round-robin sends every third call into the slow
  replica, so the delay IS the p99;
* **adaptive** — the trace-mined policy pays for one probe of the slow
  replica (unobserved endpoints rank first, exactly once per
  ``reprobe_after_s``), then routes around it on EWMA cost, so the
  p99 collapses to the fast replicas' latency.

The CI gate requires adaptive to beat static p99 by ``MIN_SPEEDUP``x;
the report lands in ``BENCH_mesh.json`` (written directly — no
pytest-benchmark dependency), which the ``mesh-drill`` CI job uploads.

Run: PYTHONPATH=src python -m pytest benchmarks/test_bench_mesh.py -s
"""

import json
import math
import statistics
import time
from pathlib import Path

import pytest

from repro.ws.client import ServiceProxy
from repro.ws.mesh import ProfileBook, make_policy, start_mesh

WORKERS = 3
SLOW_WORKER = "w2"
SLOW_MS = 60.0
WARMUP_CALLS = 9
MEASURED_CALLS = 150

#: CI gate: the issue demands >= 1.5x on p99; the measured margin is
#: ~8-10x (one probe in 150 calls vs every third call delayed), so
#: runner jitter cannot flake this while a real regression trips it.
MIN_SPEEDUP = 1.5

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_mesh.json"


def percentile(samples_ms: list[float], q: float) -> float:
    """Nearest-rank percentile (the loadgen plane's convention)."""
    ordered = sorted(samples_ms)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


@pytest.fixture(scope="module")
def skewed_mesh():
    host = start_mesh(workers=WORKERS, services=["Math"],
                      policy="static", lease_ttl_s=30.0,
                      slow_ms={SLOW_WORKER: SLOW_MS})
    try:
        yield host
    finally:
        host.stop()


def drive(host, policy_name: str) -> dict:
    """Measure one policy over the same gateway call stream."""
    # fresh policy AND fresh profiles: each contender starts blind, so
    # adaptive's edge is earned by its probe discipline, not inherited
    host.router.policy = make_policy(policy_name)
    host.router.book = ProfileBook(clock=host.router._clock)
    proxy = ServiceProxy.from_wsdl_url(host.wsdl_url("Math"))
    for _ in range(WARMUP_CALLS):
        proxy.call("tabulate", expression="square", lo=0.0, hi=1.0)
    samples_ms = []
    for _ in range(MEASURED_CALLS):
        start = time.perf_counter()
        proxy.call("tabulate", expression="square", lo=0.0, hi=1.0)
        samples_ms.append((time.perf_counter() - start) * 1000.0)
    return {
        "policy": policy_name,
        "calls": len(samples_ms),
        "mean_ms": round(statistics.fmean(samples_ms), 3),
        "p50_ms": round(percentile(samples_ms, 50), 3),
        "p99_ms": round(percentile(samples_ms, 99), 3),
        "max_ms": round(max(samples_ms), 3),
    }


def test_adaptive_beats_static_p99(skewed_mesh):
    static = drive(skewed_mesh, "static")
    adaptive = drive(skewed_mesh, "adaptive")
    speedup = static["p99_ms"] / adaptive["p99_ms"]

    report = {
        "scenario": {
            "workers": WORKERS,
            "slow_worker": SLOW_WORKER,
            "slow_ms": SLOW_MS,
            "service": "Math",
            "operation": "tabulate",
            "measured_calls": MEASURED_CALLS,
        },
        "static": static,
        "adaptive": adaptive,
        "p99_speedup": round(speedup, 2),
        "gate_min_speedup": MIN_SPEEDUP,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nPERF-MESH: static p99 {static['p99_ms']:.1f}ms vs "
          f"adaptive p99 {adaptive['p99_ms']:.1f}ms "
          f"({speedup:.1f}x; gate {MIN_SPEEDUP}x)")

    # sanity: the skew is real — round-robin pays the slow replica's
    # delay at p99
    assert static["p99_ms"] >= SLOW_MS
    assert speedup >= MIN_SPEEDUP, (
        f"adaptive routing beat static by only {speedup:.2f}x p99 "
        f"(static {static['p99_ms']:.1f}ms, adaptive "
        f"{adaptive['p99_ms']:.1f}ms); gate is {MIN_SPEEDUP}x")
