"""FIG-1 — enact the Figure-1 workflow: getClassifiers → ClassifierSelector
→ getOptions → OptionSelector → classifyInstance ← LocalDataset +
AttributeSelector → TreeViewer, over real HTTP."""

from repro.workflow import (TaskGraph, WorkflowEngine, default_toolbox,
                            import_wsdl_url)


def build_figure1(hosted_toolbox, breast_cancer):
    box = default_toolbox()
    ws = {t.name.split(".")[1]: t for t in import_wsdl_url(
        hosted_toolbox.wsdl_url("Classifier"), box)}
    g = TaskGraph("figure-1")
    get_cls = g.add(ws["getClassifiers"])
    selector = g.add(box.get("ClassifierSelector"), choice="J48")
    get_opts = g.add(ws["getOptions"])
    opt_sel = g.add(box.get("OptionSelector"))
    local = g.add(box.get("LocalDataset"), dataset=breast_cancer)
    attr_sel = g.add(box.get("AttributeSelector"), attribute="Class")
    classify = g.add(ws["classifyInstance"])
    viewer = g.add(box.get("TreeViewer"), mode="text")
    g.connect(get_cls, selector)
    g.connect(selector, get_opts)
    g.connect(get_opts, opt_sel)
    g.connect(selector, classify, target_index=0)
    g.connect(local, classify, target_index=1)
    g.connect(attr_sel, classify, target_index=2)
    g.connect(opt_sel, classify, target_index=3)
    g.connect(local, attr_sel)
    g.connect(classify, viewer)
    return g, viewer


def test_bench_fig1_workflow_enactment(benchmark, hosted_toolbox,
                                       breast_cancer):
    graph, viewer = build_figure1(hosted_toolbox, breast_cancer)
    engine = WorkflowEngine()

    result = benchmark(engine.run, graph)

    view = result.output(viewer)
    assert "node-caps" in view
    print("\n=== FIG-1: composed workflow output (TreeViewer) ===")
    print(view)
    print(f"tasks: {len(graph)}   cables: {len(graph.cables)}   "
          f"wall: {result.wall_seconds * 1000:.1f} ms")
    benchmark.extra_info["tasks"] = len(graph)
    benchmark.extra_info["cables"] = len(graph.cables)


def test_bench_fig1_composition_only(benchmark, hosted_toolbox,
                                     breast_cancer):
    """Graph construction + WSDL import cost, without enactment."""
    def compose():
        graph, _ = build_figure1(hosted_toolbox, breast_cancer)
        return graph

    graph = benchmark(compose)
    assert len(graph) == 8
