"""ABL-CURVE — learning curve of the case-study problem: how much
breast-cancer data does each family need before accuracy saturates?

Context for the paper's data-movement discussion (§1/§3): if accuracy
saturates early, streaming a prefix beats migrating everything."""

from repro.ml import catalogue
from repro.ml.evaluation import learning_curve

FRACTIONS = (0.1, 0.25, 0.5, 1.0)
CLASSIFIERS = ["J48", "NaiveBayes", "OneR"]


def test_bench_learning_curves(benchmark, breast_cancer):
    def run():
        curves = {}
        for name in CLASSIFIERS:
            curves[name] = learning_curve(
                lambda n=name: catalogue.create(n), breast_cancer,
                fractions=FRACTIONS, seed=5)
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== ABL-CURVE: breast-cancer learning curves ===")
    header = f"{'classifier':<14}" + "".join(
        f"{f:>10.0%}" for f in FRACTIONS)
    print(header)
    for name, curve in curves.items():
        accs = {f: acc for f, _, acc in curve}
        print(f"{name:<14}" + "".join(
            f"{accs[f]:>10.3f}" for f in FRACTIONS))
    # saturating shape: full-data accuracy within a whisker of the best
    for name, curve in curves.items():
        accs = [acc for _, _, acc in curve]
        assert accs[-1] >= max(accs) - 0.08, name
    benchmark.extra_info["curves"] = {
        name: [round(acc, 3) for _, _, acc in curve]
        for name, curve in curves.items()}
