"""FIG-4 — regenerate the paper's Figure 4: the C4.5 decision tree for the
breast-cancer dataset with ``node-caps`` at the root.

The paper's figure is qualitative (a tree drawing); the reproduction
contract is (a) the root split is node-caps, (b) deg-malig appears directly
beneath it, (c) the tree renders textually and graphically.  The bench times
a full J48 fit.
"""

from repro.ml.classifiers import J48
from repro.ml import evaluation
from repro.viz import treeviz


def test_bench_fig4_j48_tree(benchmark, breast_cancer):
    model = benchmark(lambda: J48().fit(breast_cancer))

    assert model.root_attribute == "node-caps"
    below = breast_cancer.attribute(
        model.root.children[0].attribute).name
    assert below == "deg-malig"

    cv = evaluation.cross_validate(lambda: J48(), breast_cancer, k=10)
    print("\n=== FIG-4: regenerated decision tree ===")
    print(model.model_text())
    print(f"10-fold CV accuracy: {cv.accuracy:.3f}  kappa: {cv.kappa:.3f}")
    print("\n--- tree graph (text layout) ---")
    print(treeviz.tree_text(model.to_graph()))
    benchmark.extra_info["root"] = model.root_attribute
    benchmark.extra_info["leaves"] = model.root.num_leaves()
    benchmark.extra_info["cv_accuracy"] = round(cv.accuracy, 4)
