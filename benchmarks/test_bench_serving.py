"""PERF-SERVING — the async serving plane under saturation, measured.

Phase 1 measures the *unloaded* p50 of one operation through the full
asyncio stack (a handful of closed-loop clients, no queueing).  Phase 2
then drives 1 000+ concurrent closed-loop clients at a server whose
admission controller can only run ``MAX_CONCURRENT`` calls at once —
far past saturation — and gates the claims that matter:

* the server keeps *serving* under overload (sustained req/s floor);
* served latency stays bounded (p99 ceiling — the queue is bounded, so
  admitted calls never sit behind an unbounded backlog);
* the overflow is *shed*, not timed out (shed-rate window), and each
  shed costs under 10% of the unloaded p50 (the front door rejects on
  an HTTP header scan, before any XML is parsed).

The report lands in ``BENCH_serving.json`` (written directly — no
pytest-benchmark dependency), which the ``serving-load`` CI job uploads
as an artifact.

Run: PYTHONPATH=src python -m pytest benchmarks/test_bench_serving.py -s
"""

import json
import time
from pathlib import Path

import pytest

from repro.ws import (AdmissionController, AsyncSoapHttpServer,
                      ServiceContainer, loadgen)
from repro.ws.service import operation

#: Sizing: capacity is deliberately *work-bound*, not CPU-bound — each
#: call holds a worker for WORK_S of sleep, so even one busy core can
#: demonstrate saturation honestly.  The ceiling is MAX_CONCURRENT /
#: WORK_S = 160 req/s; 1 000 closed-loop clients oversubscribe the
#: 80 run+queue slots 12x, so the bulk of the fleet must live on the
#: shed/back-off path.  RETRY_HINT_S is the server's crowd-control
#: lever: it tells the ~900 surplus clients to stay away for ~a
#: second per rejection, which keeps the event loop answering the
#: calls it admitted instead of drowning in re-offers.
WORK_S = 0.1
MAX_CONCURRENT = 16
MAX_QUEUE = 64
QUEUE_TIMEOUT_S = 2.0
RETRY_HINT_S = 1.0

CONCURRENCY = 1000
DURATION_S = 5.0
WARMUP_S = 2.0

#: CI gates, set ~2-3x below / above the numbers measured on a single
#: busy core (see EXPERIMENTS.md PERF-SERVING) so runner jitter cannot
#: flake them while a real regression still trips.
MIN_SERVED_RPS = 60.0
MAX_P99_MS = 2000.0
MAX_SHED_RATE = 0.95
SHED_COST_FRACTION = 0.10

REPORT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_serving.json"


class Worker:
    """Holds a dispatch slot for a fixed slice of wall time."""

    @operation
    def work(self, ms: float = 100.0) -> str:
        """Simulate one bounded unit of mining work."""
        time.sleep(float(ms) / 1000.0)
        return "done"


def _raise_fd_limit() -> None:
    """1k clients + 1k server sockets need headroom; best effort."""
    try:
        import resource
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < 8192:
            resource.setrlimit(resource.RLIMIT_NOFILE,
                               (min(8192, hard), hard))
    except (ImportError, ValueError, OSError):
        pass


@pytest.fixture(scope="module")
def server():
    _raise_fd_limit()
    container = ServiceContainer()
    container.deploy(Worker, "Worker")
    controller = AdmissionController(max_concurrent=MAX_CONCURRENT,
                                     max_queue=MAX_QUEUE,
                                     queue_timeout_s=QUEUE_TIMEOUT_S,
                                     retry_hint_s=RETRY_HINT_S)
    with AsyncSoapHttpServer(container, compress=False,
                             admission=controller) as srv:
        yield srv


def test_bench_serving_under_saturation(server):
    endpoint = server.endpoint("Worker")
    params = {"ms": WORK_S * 1000.0}

    # phase 1: unloaded baseline — enough clients to amortise the
    # event loop, far too few to queue
    baseline = loadgen.run(endpoint, "work", params, concurrency=4,
                           duration_s=2.0, warmup_s=0.5, seed=1)
    assert baseline.errors == 0
    assert baseline.shed == 0
    unloaded_p50_ms = baseline.served_percentile_ms(50)
    assert unloaded_p50_ms >= WORK_S * 1000.0   # it did the work

    # phase 2: saturation — 1k closed-loop clients against 64 slots
    loaded = loadgen.run(endpoint, "work", params,
                         concurrency=CONCURRENCY, duration_s=DURATION_S,
                         warmup_s=WARMUP_S, priority_levels=4, seed=2)

    report = {
        "work_ms": WORK_S * 1000.0,
        "max_concurrent": MAX_CONCURRENT,
        "max_queue": MAX_QUEUE,
        "retry_hint_s": RETRY_HINT_S,
        "unloaded": baseline.as_dict(),
        "loaded": loaded.as_dict(),
        "gates": {
            "min_served_rps": MIN_SERVED_RPS,
            "max_p99_ms": MAX_P99_MS,
            "max_shed_rate": MAX_SHED_RATE,
            "max_shed_p50_ms": round(
                SHED_COST_FRACTION * unloaded_p50_ms, 3),
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nPERF-SERVING: {json.dumps(report, indent=2)}")

    # the server must keep answering under 12x oversubscription ...
    assert loaded.served_rps >= MIN_SERVED_RPS, loaded.as_dict()
    # ... with served latency bounded by the bounded queue ...
    assert loaded.served_percentile_ms(99) <= MAX_P99_MS, \
        loaded.as_dict()
    # ... shedding the overflow (but never everything) ...
    assert 0 < loaded.shed_rate <= MAX_SHED_RATE, loaded.as_dict()
    # ... and each shed costs a fraction of a served call
    assert loaded.shed_percentile_ms(50) < \
        SHED_COST_FRACTION * unloaded_p50_ms, \
        (loaded.shed_percentile_ms(50), unloaded_p50_ms)
    # closed-loop accounting sanity: nothing vanished
    assert loaded.offered == loaded.served + loaded.shed + loaded.errors
