"""ABL-FAULT — fault-tolerance ablation (§3 category 2): completion and
overhead of job migration when a fraction of service replicas is dead.

Measures enactment of a J48 classification task against a replica pool of
three in-process services with 0, 1 and 2 dead replicas; the task must
complete in every case, paying one failed-attempt overhead per dead replica
it visits."""

import pytest

from repro.services import J48Service
from repro.ws import (InProcessTransport, ServiceContainer, ServiceProxy,
                      wsdl)
from repro.ws.service import ServiceDefinition
from repro.ws.transport import FailingTransport
from repro.workflow import ReplicatedServiceTool


def make_pool(n_dead: int, n_total: int = 3):
    """Replica proxies; the first *n_dead* have permanently failing
    transports (dead hosts)."""
    proxies = []
    definition = ServiceDefinition.from_class(J48Service, "J48")
    document = wsdl.generate(definition, "inproc://J48")
    for i in range(n_total):
        container = ServiceContainer()
        container.deploy(J48Service, "J48")
        transport = InProcessTransport(container)
        if i < n_dead:
            transport = FailingTransport(transport, failures=10 ** 9)
        proxies.append(ServiceProxy.from_wsdl_text(document, transport))
    return proxies


@pytest.mark.parametrize("n_dead", [0, 1, 2])
def test_bench_fault_migration(benchmark, breast_cancer_arff, n_dead):
    proxies = make_pool(n_dead)
    tool = ReplicatedServiceTool("J48.classify", proxies, "classify",
                                 ["dataset", "attribute"])

    def run():
        tool.migrations.clear()
        return tool.run([breast_cancer_arff, "Class"], {})

    [out] = benchmark(run)
    assert "node-caps" in out
    assert len(tool.migrations) == n_dead
    print(f"\n[{n_dead} dead replica(s)] migrations: "
          f"{len(tool.migrations)}; task completed")
    benchmark.extra_info["dead_replicas"] = n_dead
    benchmark.extra_info["migrations"] = len(tool.migrations)
