"""ABL-SUITE — the classic toolkit-paper accuracy matrix: CV accuracy of
the main classifier families across a suite of UCI-style relations.

This is the table every second/third-generation toolkit paper shows; it
doubles as an end-to-end sanity sweep of the algorithm library.  Shape
assertions encode domain folklore: trees/rules dominate the rule-structured
MONK's-1; naive Bayes is at home on the noisy LED display; everyone beats
ZeroR everywhere (except degenerate ties)."""

from repro.data import synthetic
from repro.ml import catalogue, evaluation

CLASSIFIERS = ["ZeroR", "OneR", "J48", "REPTree", "NaiveBayes", "IB3",
               "Logistic"]


def _suite():
    return {
        "breast-cancer": synthetic.breast_cancer(),
        "led7": synthetic.led7(n=400, noise=0.1, seed=1),
        "monks1": synthetic.monks1(n=300, seed=1),
        "weather": synthetic.weather_nominal(),
        "two-gaussians": synthetic.numeric_two_class(n=200, seed=1),
    }


def test_bench_uci_suite_matrix(benchmark):
    def run():
        table = {}
        for ds_name, ds in _suite().items():
            row = {}
            for clf_name in CLASSIFIERS:
                k = min(5, ds.num_instances)
                result = evaluation.cross_validate(
                    lambda c=clf_name: catalogue.create(c), ds, k=k)
                row[clf_name] = result.accuracy
            table[ds_name] = row
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== ABL-SUITE: 5-fold CV accuracy matrix ===")
    header = f"{'dataset':<16}" + "".join(f"{c:>12}" for c in CLASSIFIERS)
    print(header)
    for ds_name, row in table.items():
        print(f"{ds_name:<16}"
              + "".join(f"{row[c]:>12.3f}" for c in CLASSIFIERS))

    # folklore shape checks
    for ds_name, row in table.items():
        best = max(row.values())
        assert best >= row["ZeroR"], ds_name
    # MONK's-1 is rule-structured: J48 crushes the linear model
    assert table["monks1"]["J48"] > table["monks1"]["Logistic"] + 0.05
    # LED-7 with 10% noise: NaiveBayes lands near the ~74% Bayes-optimal
    assert 0.55 < table["led7"]["NaiveBayes"] <= 0.85
    # the separable Gaussians reward the linear model
    assert table["two-gaussians"]["Logistic"] > 0.9
    benchmark.extra_info["matrix"] = {
        ds: {c: round(a, 3) for c, a in row.items()}
        for ds, row in table.items()}
