"""ABL-ADVISOR — quality of the §3 algorithm-choice support.

The paper asks for "some support in algorithm choice based on the
characteristics of the problem" without evaluating it.  This bench measures
the advice empirically: over a family of datasets with different
characteristics, how often does the advisor's top-3 contain the classifier
that actually wins a cross-validation shoot-out?"""

from repro.data import synthetic
from repro.ml import catalogue, evaluation
from repro.ml.advisor import recommend

CANDIDATES = ["J48", "NaiveBayes", "IB3", "Logistic", "OneR",
              "RandomForest", "SMO"]


def _workloads():
    return {
        "breast-cancer": synthetic.breast_cancer(),
        "numeric-wide-margin": synthetic.numeric_two_class(
            n=150, separation=3.0, seed=41),
        "numeric-narrow-margin": synthetic.numeric_two_class(
            n=150, separation=0.8, seed=42),
        "three-blobs": synthetic.gaussians(3, 40, 2, labelled=True,
                                           seed=43),
        "xor": synthetic.xor_problem(n=160, seed=44),
        "weather": synthetic.weather_nominal(),
    }


def test_bench_advisor_quality(benchmark):
    def run():
        rows = []
        for name, ds in _workloads().items():
            advice = [r.algorithm for r in recommend(ds, top=3)]
            scores = {}
            for cand in CANDIDATES:
                k = min(5, ds.num_instances)
                result = evaluation.cross_validate(
                    lambda c=cand: catalogue.create(c), ds, k=k)
                scores[cand] = result.accuracy
            winner = max(scores, key=scores.get)
            # hit if the empirical winner (or a scheme within 1% of it)
            # appears in the advised top-3
            near_best = {c for c, s in scores.items()
                         if s >= scores[winner] - 0.01}
            rows.append((name, advice, winner, scores[winner],
                         bool(near_best & set(advice))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    hits = sum(1 for *_, hit in rows if hit)
    print("\n=== ABL-ADVISOR: advice vs empirical CV winner ===")
    print(f"{'dataset':<24}{'advised top-3':<38}{'winner':<14}"
          f"{'acc':>6}  hit")
    for name, advice, winner, acc, hit in rows:
        print(f"{name:<24}{', '.join(advice):<38}{winner:<14}"
              f"{acc:>6.3f}  {'Y' if hit else 'n'}")
    print(f"hit rate: {hits}/{len(rows)}")
    # the advice must beat random top-3 selection (3/7 ≈ 0.43) clearly
    assert hits / len(rows) >= 0.5
    benchmark.extra_info["hit_rate"] = f"{hits}/{len(rows)}"
