"""FIG-3 — regenerate the paper's Figure 3: breast-cancer dataset
statistics.

Paper values: 286 instances, 10 attributes (all discrete), 9 missing cells
(0.3%), per-attribute distinct counts 6/3/11/7/2/3/2/5/2/2, with 8 missing on
node-caps and 1 on breast-quad.  The bench times the summary computation and
prints the regenerated table so it can be eyeballed against the paper.
"""

from repro.data import summary


EXPECTED_ROWS = {
    "age": (0, 6), "menopause": (0, 3), "tumor-size": (0, 11),
    "inv-nodes": (0, 7), "node-caps": (8, 2), "deg-malig": (0, 3),
    "breast": (0, 2), "breast-quad": (1, 5), "irradiat": (0, 2),
    "Class": (0, 2),
}


def test_bench_fig3_summary(benchmark, breast_cancer):
    stats = benchmark(summary.summarise, breast_cancer)

    assert stats.num_instances == 286
    assert stats.num_attributes == 10
    assert stats.num_discrete == 10
    assert stats.num_continuous == 0
    assert stats.missing_values == 9
    assert round(stats.missing_percent, 1) == 0.3
    for row in stats.attributes:
        missing, distinct = EXPECTED_ROWS[row.name]
        assert (row.missing, row.distinct) == (missing, distinct), row.name

    table = summary.format_figure3(stats)
    print("\n=== FIG-3: regenerated Figure 3 ===")
    print(table)
    benchmark.extra_info["missing_values"] = stats.missing_values
    benchmark.extra_info["instances"] = stats.num_instances
