"""PERF-IPC — same-host zero-copy IPC vs the classic TCP data plane.

The same batched scoring stream is driven through the mesh gateway
into one Classifier worker twice — the PR-9 deployment shape, so both
the client→gateway and gateway→worker hops pay the data plane under
test:

* **tcp+inline** — a ``transport="tcp"`` mesh with the shared-memory
  tier disabled; every call ships a *distinct* ~1.3 MB columnar frame
  inline (base64 in the SOAP body) over both hops, so the classic
  by-reference cache can never kick in — this is the honest
  first-contact cost.
* **uds+shm** — a ``transport="uds"`` mesh: the gateway dials the
  worker over its Unix socket, and on both hops the frame travels as
  a named shared-memory segment the consumer maps in place; no socket
  ever sees the payload bytes.

The CI gate requires uds+shm to halve the p50 (``MIN_SPEEDUP = 2``);
the report lands in ``BENCH_ipc.json`` (written directly — no
pytest-benchmark dependency), which the ``ipc-bench`` CI job uploads.

Run: PYTHONPATH=src python -m pytest benchmarks/test_bench_ipc.py -s
"""

import json
import math
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import codec
from repro.data.attribute import Attribute
from repro.data.dataset import Dataset
from repro.ws import payload, shm
from repro.ws.client import ServiceProxy
from repro.ws.mesh import start_mesh

pytestmark = pytest.mark.skipif(not shm.supported(),
                                reason="no POSIX shared memory here")

ROWS = 20_000
FEATURES = 8
SCORED_ROWS = 256
WARMUP_CALLS = 3
MEASURED_CALLS = 25

#: CI gate: the issue demands >= 2x on p50 with >= 1 MB frames; the
#: measured margin is far wider (the TCP arm pays base64 + XML parse +
#: two socket copies of ~1.7 MB per call, the shm arm maps pages), so
#: runner jitter cannot flake this while a real regression trips it.
MIN_SPEEDUP = 2.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_ipc.json"

_ATTRS = [Attribute.numeric(f"f{j}") for j in range(FEATURES)]
_ATTRS.append(Attribute.nominal("class", ("neg", "pos")))


def frame_for(index: int) -> bytes:
    """A distinct ~1.3 MB columnar frame per call: fresh random content
    defeats every content-addressed cache, so both arms pay full
    first-contact transfer cost on every single call."""
    rng = np.random.default_rng(1000 + index)
    ds = Dataset(f"ipc-bench-{index}", _ATTRS)
    matrix = np.column_stack([
        rng.normal(size=(ROWS, FEATURES)),
        rng.integers(0, 2, size=ROWS).astype(float)])
    ds._bulk_extend(matrix)
    ds.set_class("class")
    return codec.encode(ds)


def percentile(samples_ms: list[float], q: float) -> float:
    """Nearest-rank percentile (the loadgen plane's convention)."""
    ordered = sorted(samples_ms)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def drive(wsdl_url: str, arm: str, frames: list[bytes]) -> dict:
    # score a fixed slice of each frame: the response stays small, so
    # the timed quantity is the *request* data plane — exactly the
    # tier this PR moved into shared memory
    rows = list(range(SCORED_ROWS))
    proxy = ServiceProxy.from_wsdl_url(wsdl_url)
    try:
        for i in range(WARMUP_CALLS):
            proxy.call("classifyBatch", classifier="ZeroR",
                       dataset=frames[i], attribute="class", rows=rows)
        samples_ms = []
        for frame in frames[WARMUP_CALLS:]:
            start = time.perf_counter()
            out = proxy.call("classifyBatch", classifier="ZeroR",
                             dataset=frame, attribute="class",
                             rows=rows)
            samples_ms.append((time.perf_counter() - start) * 1000.0)
            assert len(out["labels"]) == SCORED_ROWS
            assert out["errors"] == []
    finally:
        proxy.close()
    return {
        "arm": arm,
        "calls": len(samples_ms),
        "frame_bytes": len(frames[WARMUP_CALLS]),
        "mean_ms": round(statistics.fmean(samples_ms), 3),
        "p50_ms": round(percentile(samples_ms, 50), 3),
        "p99_ms": round(percentile(samples_ms, 99), 3),
        "max_ms": round(max(samples_ms), 3),
    }


def test_uds_shm_halves_p50_over_tcp_inline():
    frames = [frame_for(i) for i in range(WARMUP_CALLS + MEASURED_CALLS)]
    assert all(len(f) >= 1024 * 1024 for f in frames)

    # arm 1: a tcp mesh with the shm tier off — the classic inline
    # data plane on both hops (the gateway runs in this process, so
    # disabling here covers the client AND gateway chains; the worker
    # only ever receives inline bytes)
    payload.set_shm_enabled(False)
    try:
        with start_mesh(workers=1, services=["Classifier"],
                        transport="tcp") as host:
            tcp = drive(host.wsdl_url("Classifier"), "tcp+inline",
                        frames)
    finally:
        payload.set_shm_enabled(True)

    # arm 2: a uds mesh — gateway dials the worker over its socket,
    # frames travel by shared-memory segment on both hops
    with start_mesh(workers=1, services=["Classifier"],
                    transport="uds") as host:
        uds = drive(host.wsdl_url("Classifier"), "uds+shm", frames)
        schemes = host.router.transport_schemes()
        assert schemes and set(schemes.values()) == {"uds"}, schemes
    counters = payload.shm_counters()
    assert counters.get("ws.shm.publishes", 0) >= MEASURED_CALLS, \
        "the uds arm did not actually publish segments"
    assert counters.get("ws.shm.publish_failures", 0) == 0

    speedup = tcp["p50_ms"] / uds["p50_ms"]
    report = {
        "scenario": {
            "service": "Classifier",
            "operation": "classifyBatch",
            "rows": ROWS,
            "features": FEATURES,
            "frame_bytes": tcp["frame_bytes"],
            "measured_calls": MEASURED_CALLS,
        },
        "tcp_inline": tcp,
        "uds_shm": uds,
        "p50_speedup": round(speedup, 2),
        "gate_min_speedup": MIN_SPEEDUP,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nPERF-IPC: tcp+inline p50 {tcp['p50_ms']:.1f}ms vs "
          f"uds+shm p50 {uds['p50_ms']:.1f}ms "
          f"({speedup:.1f}x; gate {MIN_SPEEDUP}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"uds+shm beat tcp+inline by only {speedup:.2f}x p50 "
        f"(tcp {tcp['p50_ms']:.1f}ms, uds {uds['p50_ms']:.1f}ms); "
        f"gate is {MIN_SPEEDUP}x")
