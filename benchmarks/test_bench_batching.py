"""PERF-BATCH — the batched invocation plane, measured.

Scores 1 000 instances against a J48 service over a simulated LAN two
ways: sequentially (one wire exchange per row, the pre-batching shape)
and batched (one ``classifyBatch`` exchange for the lot).  The plain
CI gate asserts the headline claims: batching must cut wire exchanges
by at least 5x and the modelled network time by at least 2x.

Run: PYTHONPATH=src python -m pytest benchmarks/test_bench_batching.py
     --benchmark-json=BENCH_batching.json
"""

import pytest

from repro.data import arff, synthetic
from repro.services import J48Service
from repro.ws import (InProcessTransport, LAN, ServiceContainer,
                      ServiceProxy, SimulatedTransport, wsdl)

N_INSTANCES = 1000


@pytest.fixture(scope="module")
def dataset_arff():
    return arff.dumps(synthetic.numeric_two_class(n=N_INSTANCES, seed=3))


def make_stack():
    """A J48 replica behind a simulated LAN; returns (proxy, transport)."""
    container = ServiceContainer()
    definition = container.deploy(J48Service, "J48")
    transport = SimulatedTransport(InProcessTransport(container), LAN)
    proxy = ServiceProxy.from_wsdl_text(
        wsdl.generate(definition, "sim://J48"), transport)
    return proxy, transport


def score_sequential(proxy, document: str, n: int) -> list:
    """One wire exchange per row — the pre-batching invocation shape.
    The service's last-model cache keeps the compute constant, so the
    cost measured here is the invocation plane itself."""
    labels = []
    for row in range(n):
        out = proxy.call("classifyBatch", dataset=document,
                         attribute="class", rows=[row])
        labels.append(out["labels"][0])
    return labels


def score_batched(proxy, document: str) -> list:
    """The whole dataset in one ``classifyBatch`` exchange."""
    return proxy.call("classifyBatch", dataset=document,
                      attribute="class")["labels"]


def test_batching_wire_gate(dataset_arff):
    """CI gate (plain assertions, no timing): batching must cut wire
    exchanges by >= 5x and modelled network time by >= 2x."""
    seq_proxy, seq_transport = make_stack()
    seq_labels = score_sequential(seq_proxy, dataset_arff, N_INSTANCES)

    batch_proxy, batch_transport = make_stack()
    batch_labels = score_batched(batch_proxy, dataset_arff)

    assert batch_labels == seq_labels
    assert seq_transport.messages >= 5 * batch_transport.messages, (
        f"batching saved too few wire exchanges: "
        f"{seq_transport.messages} sequential vs "
        f"{batch_transport.messages} batched")
    assert seq_transport.virtual_seconds >= \
        2 * batch_transport.virtual_seconds, (
            f"batching saved too little modelled time: "
            f"{seq_transport.virtual_seconds:.4f}s sequential vs "
            f"{batch_transport.virtual_seconds:.4f}s batched")


def test_bench_score_sequential(benchmark, dataset_arff):
    proxy, transport = make_stack()
    # one timed round: 1 000 wire exchanges is the point, not noise
    labels = benchmark.pedantic(
        score_sequential, args=(proxy, dataset_arff, N_INSTANCES),
        rounds=1, iterations=1)
    assert len(labels) == N_INSTANCES
    benchmark.extra_info["path"] = "sequential"
    benchmark.extra_info["wire_messages"] = transport.messages
    benchmark.extra_info["modelled_seconds"] = round(
        transport.virtual_seconds, 6)


def test_bench_score_batched(benchmark, dataset_arff):
    proxy, transport = make_stack()
    labels = benchmark.pedantic(
        score_batched, args=(proxy, dataset_arff),
        rounds=3, iterations=1)
    assert len(labels) == N_INSTANCES
    benchmark.extra_info["path"] = "batched"
    benchmark.extra_info["wire_messages"] = transport.messages
    benchmark.extra_info["modelled_seconds"] = round(
        transport.virtual_seconds, 6)
