"""ABL-GRID — Grid-WEKA-style distributed cross-validation scaling.

The related-work section's Grid WEKA distributes cross-validation "across
several computers contained within an ad-hoc Grid".  The resource being
parallelised is the *remote machine + its network path*, so each endpoint
here sits behind a simulated WAN link (real sleeps): folds dispatched to
more endpoints overlap their network/remote time and the wall-clock drops,
saturating at the fold count.  (In a single Python process, CPU-bound
training cannot speed up across threads — the GIL — which is exactly why
the 2005 toolkit shipped work to other machines.)"""

import pytest

from repro.services import ClassifierService
from repro.services.grid import distributed_cross_validate
from repro.ws import (InProcessTransport, NetworkModel, ServiceContainer,
                      ServiceProxy, SimulatedTransport, wsdl)
from repro.ws.service import ServiceDefinition

#: a slow-ish grid link so network time dominates the cheap training
GRID_LINK = NetworkModel(latency_s=0.040, bandwidth_bps=20e6 / 8)


def make_endpoints(n: int):
    definition = ServiceDefinition.from_class(ClassifierService,
                                              "Classifier")
    document = wsdl.generate(definition, "inproc://Classifier")
    proxies = []
    for _ in range(n):
        container = ServiceContainer()
        container.deploy(ClassifierService, "Classifier")
        transport = SimulatedTransport(InProcessTransport(container),
                                       GRID_LINK, real_sleep=True)
        proxies.append(ServiceProxy.from_wsdl_text(document, transport))
    return proxies


_TIMINGS: dict[int, float] = {}


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_bench_grid_cross_validation(benchmark, breast_cancer,
                                     n_workers):
    proxies = make_endpoints(n_workers)

    def run():
        return distributed_cross_validate(
            proxies, breast_cancer, classifier="OneR", k=8)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.result.total == 286
    assert report.migrations == 0
    loads = report.worker_loads()
    _TIMINGS[n_workers] = benchmark.stats["mean"]
    print(f"\n[{n_workers} worker(s)] folds per worker: {loads}  "
          f"accuracy: {report.result.accuracy:.3f}")
    if n_workers == 4 and 1 in _TIMINGS:
        speedup = _TIMINGS[1] / _TIMINGS[4]
        print(f"speedup 1 -> 4 workers: {speedup:.2f}x "
              "(network-bound folds overlap)")
        assert speedup > 1.5
    benchmark.extra_info["workers"] = n_workers
    benchmark.extra_info["accuracy"] = round(report.result.accuracy, 4)
