"""PERF-FASTPATH — the data-plane fast path, measured.

Micro-benchmarks for the content-addressed payload store, by-reference
ARFF transfer and the memoised parse path, plus a plain (non-timed)
gate asserting the headline claim CI enforces: a repeated-dataset
workload moves at least 2x fewer bytes over the simulated network with
the fast path on than off.

Run: PYTHONPATH=src python -m pytest benchmarks/test_bench_payload_fastpath.py
     --benchmark-json=BENCH_payload_fastpath.json
"""

import pytest

from repro.data import arff
from repro.data import cache as datacache
from repro.services import deploy_toolbox
from repro.ws import (InProcessTransport, ServiceContainer,
                      SimulatedTransport, SoapRequest, WAN, payload)
from repro.ws.service import operation


class Sink:
    """Minimal service: accept a document, report its size."""

    @operation
    def measure(self, document: str) -> int:
        """Length of *document*."""
        return len(document)


def reset_fastpath(on: bool = True) -> None:
    payload.set_enabled(on)
    datacache.set_enabled(on)
    payload.reset_payload_store()
    datacache.reset_parse_cache()


@pytest.fixture()
def sink_transport():
    container = ServiceContainer()
    container.deploy(Sink, "Sink")
    return InProcessTransport(container)


def test_bench_parse_uncached(benchmark, breast_cancer_arff):
    reset_fastpath(on=False)
    dataset = benchmark(arff.loads, breast_cancer_arff)
    assert len(dataset) > 0
    benchmark.extra_info["path"] = "parse-uncached"
    reset_fastpath()


def test_bench_parse_memo_hit(benchmark, breast_cancer_arff):
    reset_fastpath()
    arff.loads(breast_cancer_arff)  # warm the memo
    dataset = benchmark(arff.loads, breast_cancer_arff)
    assert len(dataset) > 0
    benchmark.extra_info["path"] = "parse-memo-hit"


def test_bench_send_inline(benchmark, sink_transport, breast_cancer_arff):
    request = SoapRequest("Sink", "measure",
                          {"document": breast_cancer_arff})

    def run():
        reset_fastpath(on=False)
        return sink_transport.send(request)

    response = benchmark(run)
    assert response.result == len(breast_cancer_arff)
    benchmark.extra_info["path"] = "send-inline"
    reset_fastpath()


def test_bench_send_by_reference(benchmark, sink_transport,
                                 breast_cancer_arff):
    reset_fastpath()
    request = SoapRequest("Sink", "measure",
                          {"document": breast_cancer_arff})
    sink_transport.send(request)  # peer absorbs the document

    response = benchmark(sink_transport.send, request)
    assert response.result == len(breast_cancer_arff)
    benchmark.extra_info["path"] = "send-by-reference"


def _repeated_workload(document: str) -> SimulatedTransport:
    container = deploy_toolbox()
    transport = SimulatedTransport(InProcessTransport(container), WAN)
    for op, key in (("validate", "dataset"), ("summarise", "dataset"),
                    ("validate", "dataset")):
        transport.send(SoapRequest("Data", op, {key: document}))
    return transport


def test_payload_fastpath_bytes_gate(breast_cancer_arff):
    """CI gate (plain assertion, no timing): the fast path must move at
    least 2x fewer bytes on a repeated-dataset workload."""
    reset_fastpath(on=False)
    baseline = _repeated_workload(breast_cancer_arff)
    reset_fastpath(on=True)
    fast = _repeated_workload(breast_cancer_arff)
    assert baseline.bytes_on_wire >= 2 * fast.bytes_on_wire, (
        f"fast path moved {fast.bytes_on_wire} bytes vs "
        f"{baseline.bytes_on_wire} baseline — less than the required "
        f"2x reduction")
    assert fast.virtual_seconds < baseline.virtual_seconds
