"""PERF-4.5 — the paper's only performance result: per-invocation
serialisation vs the in-memory harness.

    "repeated invocations of a particular Web Service often resulted in a
    significant performance penalty ... To overcome this performance penalty
    a harness was implemented that maintained an algorithm instance object
    in memory."

The paper reports no absolute numbers — only the direction (harness much
faster for interactive sessions).  These benches measure both lifecycles on
repeated J48 invocations and print the measured penalty factor.  The second
call under the harness hits the service's in-memory model cache, which is
exactly the interactive-session speedup the harness was built for; under the
serialize lifecycle every call pays a pickle round trip through disk.
"""

import time

import pytest

from repro.services import J48Service
from repro.ws import ServiceContainer

N_CALLS = 10


def _run_calls(container, dataset, n=N_CALLS):
    for _ in range(n):
        container.call("J48", "classify", dataset=dataset,
                       attribute="Class")


@pytest.fixture()
def harness_container(tmp_path):
    c = ServiceContainer(state_dir=tmp_path / "h")
    c.deploy(J48Service, "J48", lifecycle="harness")
    return c


@pytest.fixture()
def serialize_container(tmp_path):
    c = ServiceContainer(state_dir=tmp_path / "s")
    c.deploy(J48Service, "J48", lifecycle="serialize")
    return c


def test_bench_sec45_harness_lifecycle(benchmark, harness_container,
                                       breast_cancer_arff):
    benchmark(_run_calls, harness_container, breast_cancer_arff)
    stats = harness_container.stats("J48")
    assert stats.serialize_seconds == 0.0
    benchmark.extra_info["lifecycle"] = "harness"


def test_bench_sec45_serialize_lifecycle(benchmark, serialize_container,
                                         breast_cancer_arff):
    benchmark(_run_calls, serialize_container, breast_cancer_arff)
    stats = serialize_container.stats("J48")
    assert stats.serialize_seconds > 0.0
    benchmark.extra_info["lifecycle"] = "serialize"
    benchmark.extra_info["serialized_bytes"] = stats.serialized_bytes


def test_bench_sec45_penalty_factor(benchmark, tmp_path,
                                    breast_cancer_arff):
    """Direct head-to-head measurement printing the penalty factor."""

    totals = {"harness": 0.0, "serialize": 0.0}

    def measure():
        fast = ServiceContainer(state_dir=tmp_path / "f2")
        slow = ServiceContainer(state_dir=tmp_path / "s2")
        fast.deploy(J48Service, "J48", lifecycle="harness")
        slow.deploy(J48Service, "J48", lifecycle="serialize")
        # the first invocation builds the model under both lifecycles;
        # the *interactive session* is the repeated calls that follow
        _run_calls(fast, breast_cancer_arff, 1)
        _run_calls(slow, breast_cancer_arff, 1)
        t0 = time.perf_counter()
        _run_calls(fast, breast_cancer_arff)
        harness_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        _run_calls(slow, breast_cancer_arff)
        serialize_s = time.perf_counter() - t0
        fast.undeploy("J48")
        slow.undeploy("J48")
        totals["harness"] += harness_s
        totals["serialize"] += serialize_s
        return harness_s, serialize_s

    benchmark.pedantic(measure, rounds=5, iterations=1)
    harness_s, serialize_s = totals["harness"], totals["serialize"]
    factor = serialize_s / harness_s
    n_total = 5 * N_CALLS
    print(f"\n=== PERF-4.5: {n_total} repeated J48 invocations ===")
    print(f"harness lifecycle   : {harness_s * 1000:8.1f} ms total "
          f"({harness_s / n_total * 1000:6.2f} ms/call)")
    print(f"serialize lifecycle : {serialize_s * 1000:8.1f} ms total "
          f"({serialize_s / n_total * 1000:6.2f} ms/call)")
    print(f"penalty factor      : {factor:6.1f}x  "
          "(paper: 'significant performance penalty', no number given)")
    # the direction is the paper's claim; the factor is machine-dependent
    assert serialize_s > harness_s
    benchmark.extra_info["penalty_factor"] = round(factor, 2)
