"""CAT-75 — the paper's inventory claims: "approximately 75 different
algorithms, primarily classifiers, clustering algorithms and association
rules" and "20 different approaches" to attribute search/selection.

The catalogue counts *named configurations* (as WEKA's 2004 scheme census
did); distinct implementation counts are reported alongside (see
EXPERIMENTS.md for the counting rule)."""

from repro.ml import catalogue
from repro.ml.attrsel import approaches


def test_bench_catalogue_inventory(benchmark):
    inventory = benchmark(catalogue.summary)

    assert inventory["catalogue_entries"] >= 75
    assert inventory["selection_approaches"] >= 20
    assert inventory["classifier_entries"] > \
        inventory["clusterer_entries"] > 0
    assert inventory["associator_entries"] >= 2

    print("\n=== CAT-75: algorithm inventory ===")
    print(f"catalogue entries        : "
          f"{inventory['catalogue_entries']} (paper: ~75)")
    print(f"  classifiers            : {inventory['classifier_entries']}")
    print(f"  clusterers             : {inventory['clusterer_entries']}")
    print(f"  associators            : {inventory['associator_entries']}")
    print(f"distinct implementations : "
          f"{inventory['classifier_implementations']} classifiers, "
          f"{inventory['clusterer_implementations']} clusterers, "
          f"{inventory['associator_implementations']} associators")
    print(f"selection approaches     : "
          f"{inventory['selection_approaches']} (paper: 20)")
    benchmark.extra_info.update(inventory)


def test_bench_every_catalogue_entry_instantiates(benchmark):
    def instantiate_all():
        return [catalogue.create(e.name) for e in catalogue.entries()]

    objects = benchmark(instantiate_all)
    assert len(objects) >= 75


def test_bench_selection_approach_enumeration(benchmark):
    out = benchmark(approaches)
    assert len(out) >= 20
    names = [a.name for a in out]
    assert len(names) == len(set(names))
    print("\n=== attribute search/selection approaches ===")
    for a in out:
        print(f"  {a.name:<40} {a.description}")
